//! Defining a custom structuredness function with the rule language.
//!
//! The paper's framework is open-ended: any rule `ϕ₁ ↦ ϕ₂` of the language
//! defines a structuredness function. This example writes a rule in the
//! textual syntax, checks it against the built-in functions, and uses it to
//! drive a sort refinement.
//!
//! Run with `cargo run --example custom_rule`.

use strudel_core::prelude::*;
use strudel_rdf::signature::SignatureView;
use strudel_rules::parser::parse_rule;

fn main() {
    // A product-catalogue-like sort: every product has a title and a price,
    // many have a brand, few have warranty or energy-label information.
    let view = SignatureView::from_counts(
        vec![
            "http://shop.example/title".into(),
            "http://shop.example/price".into(),
            "http://shop.example/brand".into(),
            "http://shop.example/warranty".into(),
            "http://shop.example/energyLabel".into(),
        ],
        vec![
            (vec![0, 1], 400),
            (vec![0, 1, 2], 300),
            (vec![0, 1, 2, 3], 120),
            (vec![0, 1, 2, 3, 4], 60),
            (vec![0, 1, 4], 20),
        ],
    )
    .unwrap();

    println!("== catalogue dataset ==");
    println!("{}", render_view(&view, &RenderOptions::default()));

    // A custom measure: "coverage, but ignore the energyLabel column" — we do
    // not want a rarely-populated regulatory field to drag the score down.
    let rule_text = "\
        c = c and prop(c) != <http://shop.example/energyLabel> -> val(c) = 1";
    let rule = parse_rule(rule_text).expect("the rule is well-formed");
    println!("custom rule: {rule}");

    let custom = SigmaSpec::Custom(rule);
    let cov = SigmaSpec::Coverage.evaluate(&view).unwrap();
    let custom_value = custom.evaluate(&view).unwrap();
    println!("σ_Cov          = {}", format_sigma(cov));
    println!("σ_custom       = {}", format_sigma(custom_value));
    assert!(
        custom_value > cov,
        "ignoring the sparse column raises the score"
    );

    // A dependency question phrased as a rule: "if a product lists a
    // warranty, does it also list a brand?"
    let warranty_implies_brand = SigmaSpec::Dependency {
        p1: "http://shop.example/warranty".into(),
        p2: "http://shop.example/brand".into(),
    };
    println!(
        "σ_Dep[warranty → brand] = {}",
        format_sigma(warranty_implies_brand.evaluate(&view).unwrap())
    );

    // Use the custom measure to split the catalogue into two implicit sorts.
    let engine = IlpEngine::new();
    let result = highest_theta(&view, &custom, 2, &engine, &HighestThetaOptions::default())
        .expect("search completes");
    let refinement = result
        .refinement
        .expect("always feasible at the starting threshold");
    println!("\n== best 2-sort refinement under the custom rule ==");
    println!("highest feasible threshold: {}", format_sigma(result.theta));
    println!(
        "{}",
        render_refinement(&view, &refinement, &RenderOptions::default())
    );
}
