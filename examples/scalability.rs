//! A miniature version of the YAGO scalability study (Section 7.3 /
//! Figure 8): solve a highest-θ, k = 2 refinement for a sample of synthetic
//! explicit sorts and report how the runtime grows with the number of
//! signatures and properties.
//!
//! Run with `cargo run --release --example scalability`.

use std::time::{Duration, Instant};

use strudel_core::prelude::*;
use strudel_datagen::yago::{yago_sample, YagoSampleConfig};

fn main() {
    let config = YagoSampleConfig {
        num_sorts: 24,
        min_subjects: 100,
        max_subjects: 20_000,
        max_signatures: 48,
        min_properties: 8,
        max_properties: 24,
    };
    let sample = yago_sample(&config, 2014);
    let engine = IlpEngine::with_time_limit(Duration::from_secs(5));
    let options = HighestThetaOptions {
        step: Ratio::new(1, 20),
        start: None,
    };

    println!(
        "{:>5} {:>9} {:>11} {:>11} {:>9} {:>10}",
        "sort", "subjects", "signatures", "properties", "runtime", "best θ"
    );
    let mut rows: Vec<(usize, usize, Duration)> = Vec::new();
    for (idx, sort) in sample.iter().enumerate() {
        let begin = Instant::now();
        let result = highest_theta(&sort.view, &SigmaSpec::Coverage, 2, &engine, &options)
            .expect("search completes");
        let elapsed = begin.elapsed();
        println!(
            "{:>5} {:>9} {:>11} {:>11} {:>8.2}s {:>10.3}",
            idx,
            sort.view.subject_count(),
            sort.view.signature_count(),
            sort.view.property_count(),
            elapsed.as_secs_f64(),
            result.theta.to_f64(),
        );
        rows.push((
            sort.view.signature_count(),
            sort.view.property_count(),
            elapsed,
        ));
    }

    // The paper's headline observation: runtime depends on the number of
    // signatures and properties, not on the number of subjects.
    let (small, large): (Vec<_>, Vec<_>) = rows.iter().partition(|(sigs, _, _)| *sigs <= 16);
    let mean = |rows: &[&(usize, usize, Duration)]| -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|(_, _, d)| d.as_secs_f64()).sum::<f64>() / rows.len() as f64
    };
    println!(
        "\nmean runtime, ≤16 signatures: {:.3}s   >16 signatures: {:.3}s",
        mean(&small.iter().collect::<Vec<_>>()),
        mean(&large.iter().collect::<Vec<_>>()),
    );
    println!("(the full sweep behind Figure 8 lives in `cargo run -p strudel-bench --bin experiments -- fig8`)");
}
