//! The DBpedia Persons study (Section 7.1 of the paper) on the calibrated
//! synthetic stand-in dataset.
//!
//! Reproduces, at example scale: the dataset statistics of Figure 2, the
//! highest-θ two-sort refinements of Figure 4, and the dependency analysis of
//! Tables 1 and 2.
//!
//! Run with `cargo run --release --example dbpedia_persons`.

use std::time::Duration;

use strudel_core::prelude::*;
use strudel_datagen::dbpedia::{dbpedia_persons, person_columns, properties};

fn main() {
    let view = dbpedia_persons();
    let cols = person_columns(&view);

    println!("== DBpedia Persons (synthetic, calibrated to the published statistics) ==");
    println!(
        "{} subjects, {} properties, {} signatures",
        view.subject_count(),
        view.property_count(),
        view.signature_count()
    );
    println!(
        "σ_Cov = {}",
        format_sigma(SigmaSpec::Coverage.evaluate(&view).unwrap())
    );
    println!(
        "σ_Sim = {}",
        format_sigma(SigmaSpec::Similarity.evaluate(&view).unwrap())
    );
    println!(
        "σ_SymDep[deathPlace, deathDate] = {}",
        format_sigma(
            SigmaSpec::SymDependency {
                p1: properties::DEATH_PLACE.into(),
                p2: properties::DEATH_DATE.into(),
            }
            .evaluate(&view)
            .unwrap()
        )
    );

    // Table 1: the σ_Dep matrix over the four birth/death properties.
    println!("\n== Table 1: σ_Dep matrix ==");
    let table_columns = [
        cols.death_place,
        cols.birth_place,
        cols.death_date,
        cols.birth_date,
    ];
    let names = ["deathPlace", "birthPlace", "deathDate", "birthDate"];
    let matrix = dependency_matrix(&view, &table_columns);
    println!("{:>12} {:>6} {:>6} {:>6} {:>6}", "", "dP", "bP", "dD", "bD");
    for (row_idx, row) in matrix.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{:>6.2}", v.to_f64())).collect();
        println!("{:>12} {}", names[row_idx], cells.join(" "));
    }

    // Table 2: the σ_SymDep ranking (top and bottom entries).
    println!("\n== Table 2: σ_SymDep ranking (top 3 / bottom 3) ==");
    let ranking = sym_dependency_ranking(&view);
    for entry in ranking
        .iter()
        .take(3)
        .chain(ranking.iter().rev().take(3).rev())
    {
        println!(
            "  {:<12} {:<12} {:.2}",
            shorten(&entry.property_a),
            shorten(&entry.property_b),
            entry.value.to_f64()
        );
    }

    // Figure 4a/4b: highest-θ refinement with k = 2 under Cov and Sim. The
    // hybrid engine answers the clearly-feasible probes with the greedy
    // heuristic and only calls the exact ILP solver (with a time limit, to
    // keep the example snappy) near the feasibility boundary; the full
    // experiment harness is `cargo run -p strudel-bench --bin experiments`.
    let engine = HybridEngine::with_engines(
        GreedyEngine::new(),
        IlpEngine::with_time_limit(Duration::from_secs(20)),
    );
    for spec in [SigmaSpec::Coverage, SigmaSpec::Similarity] {
        println!(
            "\n== Figure 4: highest-θ refinement, k = 2, {} ==",
            spec.name()
        );
        let result = highest_theta(&view, &spec, 2, &engine, &HighestThetaOptions::default())
            .expect("search completes");
        if result.hit_budget {
            println!("(time limit reached; reporting the best refinement found so far)");
        }
        let refinement = result
            .refinement
            .expect("the starting threshold is always feasible");
        println!("highest feasible threshold: {}", format_sigma(result.theta));
        for (idx, sort) in refinement.sorts.iter().enumerate() {
            let sub = view.subset(&sort.signatures);
            let death_free = sub.property_subject_count(cols.death_date) == 0
                && sub.property_subject_count(cols.death_place) == 0;
            println!(
                "  sort {idx}: {:>7} subjects, {:>2} signatures, σ = {:.3}{}",
                sort.subjects,
                sort.signatures.len(),
                sort.sigma.to_f64(),
                if death_free {
                    "  (no death data: the 'alive' sort)"
                } else {
                    ""
                }
            );
        }
    }
}

fn shorten(iri: &str) -> &str {
    iri.rsplit(['/', '#']).next().unwrap_or(iri)
}
