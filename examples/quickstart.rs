//! Quickstart: parse RDF, measure structuredness, and discover a sort
//! refinement.
//!
//! Run with `cargo run --example quickstart`.

use strudel_core::prelude::*;
use strudel_rdf::prelude::*;

fn main() {
    // 1. Parse a small Turtle document describing people. Some of them have
    //    death information, most do not — the classic "the data does not fit
    //    the sort" situation the paper opens with.
    let turtle = r#"
        @prefix ex:   <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .

        ex:ada      a foaf:Person ; foaf:name "Ada Lovelace" ;
                    ex:birthDate "1815-12-10" ; ex:deathDate "1852-11-27" ; ex:deathPlace ex:London .
        ex:grace    a foaf:Person ; foaf:name "Grace Hopper" ;
                    ex:birthDate "1906-12-09" ; ex:deathDate "1992-01-01" ; ex:deathPlace ex:Arlington .
        ex:alan     a foaf:Person ; foaf:name "Alan Turing" ;
                    ex:birthDate "1912-06-23" ; ex:deathDate "1954-06-07" .
        ex:barbara  a foaf:Person ; foaf:name "Barbara Liskov" ; ex:birthDate "1939-11-07" .
        ex:donald   a foaf:Person ; foaf:name "Donald Knuth"   ; ex:birthDate "1938-01-10" .
        ex:leslie   a foaf:Person ; foaf:name "Leslie Lamport" ; ex:birthDate "1941-02-07" .
        ex:margaret a foaf:Person ; foaf:name "Margaret Hamilton" .
        ex:tim      a foaf:Person ; foaf:name "Tim Berners-Lee" .
    "#;
    let graph = parse_turtle(turtle).expect("the example document is valid Turtle");

    // 2. Build the property-structure view of the Person sort and collapse it
    //    into its signature view.
    let matrix = PropertyStructureView::from_sort(&graph, "http://xmlns.com/foaf/0.1/Person", true)
        .expect("the document declares Person subjects");
    let view = SignatureView::from_matrix(&matrix);
    println!("== the dataset ==");
    println!("{}", render_view(&view, &RenderOptions::default()));

    // 3. Measure structuredness with two of the paper's functions.
    let cov = SigmaSpec::Coverage.evaluate(&view).unwrap();
    let sim = SigmaSpec::Similarity.evaluate(&view).unwrap();
    println!("σ_Cov = {}", format_sigma(cov));
    println!("σ_Sim = {}", format_sigma(sim));

    // 4. Ask for the best split into two implicit sorts under Cov: the solver
    //    finds the "alive vs. dead" structure without being told about it.
    let engine = IlpEngine::new();
    let result = highest_theta(
        &view,
        &SigmaSpec::Coverage,
        2,
        &engine,
        &HighestThetaOptions::default(),
    )
    .expect("the search runs to completion");
    let refinement = result.refinement.expect("a refinement always exists");

    println!("\n== best 2-sort refinement under Cov ==");
    println!("highest feasible threshold: {}", format_sigma(result.theta));
    println!(
        "{}",
        render_refinement(&view, &refinement, &RenderOptions::default())
    );
    for (idx, sort) in refinement.sorts.iter().enumerate() {
        let sub = view.subset(&sort.signatures);
        let has_death = sub
            .property_index("http://example.org/deathDate")
            .map(|col| sub.property_subject_count(col) > 0)
            .unwrap_or(false);
        println!(
            "sort {idx}: {} subjects — {}",
            sort.subjects,
            if has_death {
                "people with death records"
            } else {
                "people without death records"
            }
        );
    }
}
