//! Schema-guided storage layouts: what a sort refinement buys on disk and at
//! query time.
//!
//! The paper opens by noting that storage layouts and query processing "use
//! schemas to guide the decision making". This example makes the claim
//! concrete: the same DBpedia-Persons-like dataset is stored as a triple
//! store, as one wide horizontal table, and as property tables derived from a
//! discovered sort refinement, and the same query workload is costed against
//! each. It also shows the identity that links the two worlds: the fill
//! factor of the horizontal table *is* σ_Cov.
//!
//! Run with `cargo run --example storage_layouts`.

use strudel_core::engine::HybridEngine;
use strudel_core::prelude::{format_sigma, SigmaSpec};
use strudel_datagen::{dbpedia_persons_scaled, erosion_sweep, materialize_graph};
use strudel_rules::builtin::sigma_cov;
use strudel_storage::prelude::*;

const SORT_IRI: &str = "http://xmlns.com/foaf/0.1/Person";

fn main() {
    // 1. A scaled-down DBpedia Persons, materialised into actual triples.
    let view = dbpedia_persons_scaled(500);
    let graph = materialize_graph(&view, SORT_IRI, "http://ex/person/", 2014);
    println!(
        "dataset: {} subjects, {} signatures, {} triples, σ_Cov = {}",
        view.subject_count(),
        view.signature_count(),
        graph.len(),
        format_sigma(sigma_cov(&view))
    );

    // 2. Ask the advisor to compare the three layouts using a 2-sort
    //    refinement under σ_Cov (the alive/dead split).
    let report = advise(
        &graph,
        Some(SORT_IRI),
        &AdvisorConfig::coverage_with_k(2),
        &HybridEngine::new(),
    )
    .expect("the dataset is non-empty");
    println!("\n{report}\n");

    // 3. The structuredness ⇄ physical-design identity: the horizontal
    //    table's fill factor equals σ_Cov of the dataset.
    let horizontal = report
        .summary("horizontal")
        .expect("the advisor always builds the horizontal layout");
    println!(
        "identity check: horizontal fill factor = {:.3}, σ_Cov = {:.3}",
        horizontal.storage.fill_factor().unwrap_or(1.0),
        report.dataset_sigma.to_f64()
    );

    // 4. Erode the dataset's structuredness and watch the horizontal table's
    //    footprint degrade while the per-signature property tables stay
    //    dense — the structuredness ⇄ performance link of Section 9.
    println!("\nstructuredness erosion (drop probability → fill factor, wasted null bytes):");
    for (drop, degraded) in erosion_sweep(&view, &[0.0, 0.2, 0.4, 0.6], 7) {
        let graph = materialize_graph(&degraded, SORT_IRI, "http://ex/eroded/", 7);
        let config = LayoutConfig::excluding_rdf_type();
        let horizontal = HorizontalLayout::build(&graph, &config);
        let stats = horizontal.storage_stats();
        println!(
            "  drop {:>3.0}%  σ_Cov = {:.3}  fill = {:.3}  nulls = {:>7}",
            drop * 100.0,
            SigmaSpec::Coverage
                .evaluate(&degraded)
                .map(|v| v.to_f64())
                .unwrap_or(f64::NAN),
            stats.fill_factor().unwrap_or(1.0),
            stats.null_cells
        );
    }
}
