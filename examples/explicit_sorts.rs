//! Surveying the explicit sorts of a knowledge base, refining the messiest
//! one, and writing the discovered sub-sorts back as `rdf:type` triples.
//!
//! This is the workflow a database administrator would follow on a real dump:
//! find out *which* sorts do not fit their schema, refine those, and
//! materialise the refinement so every downstream tool can use it.
//!
//! Run with `cargo run --example explicit_sorts`.

use strudel_core::prelude::*;
use strudel_datagen::{
    benchmark_sorts, dbpedia_persons_scaled, materialize_graph, BenchmarkProfile,
};
use strudel_rdf::prelude::*;

fn main() {
    // 1. Assemble a small knowledge base with four explicit sorts: three
    //    benchmark-shaped (clean) sorts and a DBpedia-Persons-like (ragged)
    //    sort. Everything is materialised into actual triples.
    let mut graph = Graph::new();
    for (idx, sort) in benchmark_sorts(BenchmarkProfile::Lubm, 300, 42)
        .into_iter()
        .enumerate()
    {
        merge(
            &mut graph,
            &materialize_graph(&sort.view, &sort.sort, &format!("http://ex/lubm{idx}/"), 42),
        );
    }
    let persons = dbpedia_persons_scaled(2_000);
    merge(
        &mut graph,
        &materialize_graph(
            &persons,
            "http://xmlns.com/foaf/0.1/Person",
            "http://ex/person/",
            42,
        ),
    );
    println!("knowledge base: {} triples\n", graph.len());

    // 2. Survey every explicit sort: how big, how structured?
    let survey = survey_sorts(&graph, &SurveyOptions::default()).expect("rules evaluate");
    println!("== explicit sorts ==\n{}", render_survey(&survey));

    // 3. Pick the sort with the lowest coverage — the one whose data least
    //    fits its schema — and refine it into two implicit sorts.
    let worst = survey
        .iter()
        .min_by(|a, b| a.sigma("Cov").unwrap().cmp(&b.sigma("Cov").unwrap()))
        .expect("the survey is non-empty");
    println!(
        "refining <{}> (σ_Cov = {})\n",
        worst.sort,
        format_sigma(worst.sigma("Cov").unwrap())
    );

    let engine = HybridEngine::new();
    let result = highest_theta(
        &worst.view,
        &SigmaSpec::Coverage,
        2,
        &engine,
        &HighestThetaOptions::default(),
    )
    .expect("the search completes");
    let refinement = result.refinement.expect("a refinement always exists");
    println!(
        "best 2-sort refinement reaches θ = {}:",
        format_sigma(result.theta)
    );
    for (idx, sort) in refinement.sorts.iter().enumerate() {
        println!(
            "  implicit sort {idx}: {} subjects, {} signatures, σ_Cov = {}",
            sort.subjects,
            sort.signatures.len(),
            format_sigma(sort.sigma)
        );
    }

    // 4. Write the refinement back into the graph as new rdf:type triples and
    //    re-survey: the two implicit sorts now show up as first-class sorts
    //    with much higher structuredness than their parent.
    let matrix = PropertyStructureView::from_sort(&graph, &worst.sort, true)
        .expect("the surveyed sort exists");
    let summary = annotate_refinement(
        &mut graph,
        &matrix,
        &worst.view,
        &refinement,
        &format!("{}/refined", worst.sort),
    )
    .expect("the refinement matches the graph");
    println!(
        "\nadded {} rdf:type triples declaring {} new sorts",
        summary.triples_added,
        summary.sort_iris.len()
    );

    let options = SurveyOptions {
        min_subjects: 1,
        ..SurveyOptions::default()
    };
    let after = survey_sorts(&graph, &options).expect("rules evaluate");
    let refined: Vec<_> = after
        .iter()
        .filter(|report| report.sort.starts_with(&format!("{}/refined", worst.sort)))
        .collect();
    println!("\n== the discovered sub-sorts ==");
    for report in refined {
        println!(
            "  {:<50} {:>8} subjects   σ_Cov = {}",
            report.sort,
            report.subjects,
            format_sigma(report.sigma("Cov").unwrap())
        );
    }
}

/// Copies every triple of `source` into `target`.
fn merge(target: &mut Graph, source: &Graph) {
    for triple in source.triples() {
        let subject = source.iri(triple.subject).to_owned();
        let predicate = source.iri(triple.predicate).to_owned();
        match triple.object {
            Object::Iri(id) => {
                target.insert_iri_triple(&subject, &predicate, source.iri(id));
            }
            Object::Literal(id) => {
                target.insert_literal_triple(
                    &subject,
                    &predicate,
                    source.dictionary().literal(id).clone(),
                );
            }
        }
    }
}
