//! The property–structure view `M(D)` of an RDF graph (Section 2.1).
//!
//! `M(D)` is an `|S(D)| × |P(D)|` 0/1 matrix: `M[s][p] = 1` iff subject `s`
//! has property `p` in `D`. It deliberately discards object values — the
//! structuredness framework only looks at which properties are *set*.

use std::collections::BTreeMap;

use crate::bitset::BitSet;
use crate::error::ModelError;
use crate::graph::Graph;
use crate::vocab::RDF_TYPE;

/// The property–structure view of an RDF graph: a dense 0/1 matrix with
/// labelled rows (subjects) and columns (properties).
///
/// Rows are stored as [`BitSet`]s over the property columns, so a 790 703 ×
/// 8 matrix (DBpedia Persons) occupies roughly one machine word per subject.
#[derive(Clone, Debug)]
pub struct PropertyStructureView {
    properties: Vec<String>,
    property_index: BTreeMap<String, usize>,
    subjects: Vec<String>,
    rows: Vec<BitSet>,
}

impl PropertyStructureView {
    /// Builds the view from a graph.
    ///
    /// When `exclude_rdf_type` is true the `rdf:type` property is dropped
    /// from the columns, matching the paper's dataset descriptions
    /// ("8 properties, excluding the type property").
    pub fn from_graph(graph: &Graph, exclude_rdf_type: bool) -> Self {
        let mut property_labels: Vec<String> = graph
            .properties()
            .into_iter()
            .map(|p| graph.iri(p).to_owned())
            .filter(|p| !(exclude_rdf_type && p == RDF_TYPE))
            .collect();
        property_labels.sort();
        let property_index: BTreeMap<String, usize> = property_labels
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();

        let subject_ids = graph.subjects();
        let mut subjects = Vec::with_capacity(subject_ids.len());
        let mut rows = Vec::with_capacity(subject_ids.len());
        for subject in subject_ids {
            let mut row = BitSet::new(property_labels.len());
            for triple in graph.entity(subject) {
                let prop = graph.iri(triple.predicate);
                if let Some(&col) = property_index.get(prop) {
                    row.insert(col);
                }
            }
            // Subjects that only appear with excluded properties (e.g. only an
            // rdf:type triple) still count as subjects of the graph; their row
            // is all-zero, as in the paper's matrix definition restricted to
            // the retained columns.
            subjects.push(graph.iri(subject).to_owned());
            rows.push(row);
        }
        PropertyStructureView {
            properties: property_labels,
            property_index,
            subjects,
            rows,
        }
    }

    /// Builds the view of the typed subgraph `D_t` for the given sort IRI.
    pub fn from_sort(
        graph: &Graph,
        sort: &str,
        exclude_rdf_type: bool,
    ) -> Result<Self, ModelError> {
        let subgraph = graph.typed_subgraph(sort);
        if subgraph.is_empty() {
            return Err(ModelError::EmptySort(sort.to_owned()));
        }
        Ok(Self::from_graph(&subgraph, exclude_rdf_type))
    }

    /// Builds a view directly from labelled rows. Intended for synthetic data
    /// and tests. All rows must have capacity equal to `properties.len()`.
    pub fn from_rows(
        properties: Vec<String>,
        subjects: Vec<String>,
        rows: Vec<BitSet>,
    ) -> Result<Self, ModelError> {
        if subjects.len() != rows.len() {
            return Err(ModelError::DimensionMismatch {
                context: "property-structure view rows",
                expected: subjects.len(),
                actual: rows.len(),
            });
        }
        for row in &rows {
            if row.capacity() != properties.len() {
                return Err(ModelError::DimensionMismatch {
                    context: "property-structure view row capacity",
                    expected: properties.len(),
                    actual: row.capacity(),
                });
            }
        }
        let property_index = properties
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Ok(PropertyStructureView {
            properties,
            property_index,
            subjects,
            rows,
        })
    }

    /// Number of subjects (rows), `|S(D)|`.
    pub fn subject_count(&self) -> usize {
        self.subjects.len()
    }

    /// Number of properties (columns), `|P(D)|`.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// The property labels in column order.
    pub fn properties(&self) -> &[String] {
        &self.properties
    }

    /// The subject labels in row order.
    pub fn subjects(&self) -> &[String] {
        &self.subjects
    }

    /// The column index of a property label, if present.
    pub fn property_index(&self, property: &str) -> Option<usize> {
        self.property_index.get(property).copied()
    }

    /// The matrix cell `M[row][col]`.
    pub fn value(&self, row: usize, col: usize) -> bool {
        self.rows[row].contains(col)
    }

    /// The row bit set of a subject.
    pub fn row(&self, row: usize) -> &BitSet {
        &self.rows[row]
    }

    /// Total number of 1-cells in the matrix (`Σ_{s,p} M[s][p]`).
    pub fn ones(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// Number of subjects that have the property in column `col`.
    pub fn column_count(&self, col: usize) -> usize {
        self.rows.iter().filter(|row| row.contains(col)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn example_graph() -> Graph {
        let mut g = Graph::new();
        for (subject, props) in [
            ("http://ex/s1", vec!["name", "birthDate", "deathDate"]),
            ("http://ex/s2", vec!["name", "birthDate"]),
            ("http://ex/s3", vec!["name"]),
        ] {
            g.insert_type(subject, "http://ex/Person");
            for p in props {
                g.insert_literal_triple(subject, &format!("http://ex/{p}"), Literal::simple("v"));
            }
        }
        g
    }

    #[test]
    fn from_graph_excluding_type() {
        let g = example_graph();
        let view = PropertyStructureView::from_graph(&g, true);
        assert_eq!(view.subject_count(), 3);
        assert_eq!(view.property_count(), 3);
        assert!(!view.properties().iter().any(|p| p == RDF_TYPE));
        assert_eq!(view.ones(), 6);
    }

    #[test]
    fn from_graph_including_type() {
        let g = example_graph();
        let view = PropertyStructureView::from_graph(&g, false);
        assert_eq!(view.property_count(), 4);
        assert_eq!(view.ones(), 9);
    }

    #[test]
    fn from_sort_errors_on_unknown_sort() {
        let g = example_graph();
        let err = PropertyStructureView::from_sort(&g, "http://ex/Nope", true).unwrap_err();
        assert!(matches!(err, ModelError::EmptySort(_)));
    }

    #[test]
    fn cell_values_match_graph() {
        let g = example_graph();
        let view = PropertyStructureView::from_graph(&g, true);
        let name = view.property_index("http://ex/name").unwrap();
        let death = view.property_index("http://ex/deathDate").unwrap();
        let s1 = view
            .subjects()
            .iter()
            .position(|s| s == "http://ex/s1")
            .unwrap();
        let s3 = view
            .subjects()
            .iter()
            .position(|s| s == "http://ex/s3")
            .unwrap();
        assert!(view.value(s1, name));
        assert!(view.value(s1, death));
        assert!(view.value(s3, name));
        assert!(!view.value(s3, death));
        assert_eq!(view.column_count(name), 3);
        assert_eq!(view.column_count(death), 1);
    }

    #[test]
    fn from_rows_validates_dimensions() {
        let err = PropertyStructureView::from_rows(
            vec!["p".into()],
            vec!["s".into()],
            vec![BitSet::new(2)],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));

        let err = PropertyStructureView::from_rows(
            vec!["p".into()],
            vec!["s".into(), "t".into()],
            vec![BitSet::new(1)],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));

        let view = PropertyStructureView::from_rows(
            vec!["p".into(), "q".into()],
            vec!["s".into()],
            vec![BitSet::from_indexes(2, &[1])],
        )
        .unwrap();
        assert!(view.value(0, 1));
        assert!(!view.value(0, 0));
    }
}
