//! Error types for parsing and model construction.

use std::fmt;

/// An error raised while parsing N-Triples or Turtle input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// 1-based column (byte offset within the line) where the error was detected.
    pub column: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors raised when building structural views of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A view was requested for a sort IRI that has no typed subjects.
    EmptySort(String),
    /// A matrix/view construction was given inconsistent dimensions.
    DimensionMismatch {
        /// What was being constructed.
        context: &'static str,
        /// The expected dimension.
        expected: usize,
        /// The dimension actually supplied.
        actual: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptySort(sort) => {
                write!(f, "sort <{sort}> has no subjects declared via rdf:type")
            }
            ModelError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch while building {context}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_mentions_position() {
        let err = ParseError::new(3, 14, "unexpected character");
        let text = err.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("column 14"));
        assert!(text.contains("unexpected character"));
    }

    #[test]
    fn model_error_display() {
        let err = ModelError::EmptySort("http://example.org/T".into());
        assert!(err.to_string().contains("http://example.org/T"));
        let err = ModelError::DimensionMismatch {
            context: "matrix row",
            expected: 3,
            actual: 5,
        };
        assert!(err.to_string().contains("expected 3"));
    }
}
