//! A line-oriented N-Triples parser and serializer.
//!
//! Supports the subset of N-Triples needed for the datasets the paper works
//! with: IRI subjects/predicates, IRI or literal objects, typed literals
//! (`^^<iri>`), language tags (`@lang`), `#` comments, and the standard string
//! escapes (`\t \n \r \" \\ \uXXXX \UXXXXXXXX`). Blank nodes are intentionally
//! rejected: the paper's data model (Section 2.1) only considers URI subjects.

use crate::error::ParseError;
use crate::graph::Graph;
use crate::term::{Literal, Object};

/// Parses an entire N-Triples document into a [`Graph`].
pub fn parse_ntriples(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    parse_ntriples_into(input, &mut graph)?;
    Ok(graph)
}

/// Parses an N-Triples document, adding its triples to an existing graph.
pub fn parse_ntriples_into(input: &str, graph: &mut Graph) -> Result<(), ParseError> {
    for (line_no, raw_line) in input.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parser = LineParser::new(line, line_no + 1);
        parser.parse_statement(graph)?;
    }
    Ok(())
}

/// Serializes a graph as N-Triples, one triple per line, in insertion order.
pub fn write_ntriples(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.triples() {
        out.push('<');
        out.push_str(&escape_iri(graph.iri(triple.subject)));
        out.push_str("> <");
        out.push_str(&escape_iri(graph.iri(triple.predicate)));
        out.push_str("> ");
        match triple.object {
            Object::Iri(id) => {
                out.push('<');
                out.push_str(&escape_iri(graph.iri(id)));
                out.push('>');
            }
            Object::Literal(id) => {
                let literal = graph.dictionary().literal(id);
                out.push('"');
                out.push_str(&escape_string(&literal.lexical));
                out.push('"');
                if let Some(lang) = &literal.language {
                    out.push('@');
                    out.push_str(lang);
                } else if let Some(dt) = &literal.datatype {
                    out.push_str("^^<");
                    out.push_str(&escape_iri(dt));
                    out.push('>');
                }
            }
        }
        out.push_str(" .\n");
    }
    out
}

fn escape_iri(iri: &str) -> String {
    // IRIs in our datasets never contain '>' or control characters, but be
    // defensive so round-trips cannot silently corrupt data.
    iri.replace('\\', "\\\\").replace('>', "\\>")
}

fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

struct LineParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn new(line: &'a str, line_no: usize) -> Self {
        LineParser {
            bytes: line.as_bytes(),
            pos: 0,
            line: line_no,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.pos + 1, message)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        self.skip_ws();
        let subject = self.parse_iri_ref()?;
        self.skip_ws();
        let predicate = self.parse_iri_ref()?;
        self.skip_ws();
        let object = self.parse_object()?;
        self.skip_ws();
        self.expect(b'.')?;
        self.skip_ws();
        if let Some(next) = self.peek() {
            if next != b'#' {
                return Err(self.error("unexpected content after '.'"));
            }
        }
        let s = graph.intern_iri(&subject);
        let p = graph.intern_iri(&predicate);
        let o = match object {
            ParsedObject::Iri(iri) => Object::Iri(graph.intern_iri(&iri)),
            ParsedObject::Literal(literal) => {
                Object::Literal(graph.dictionary_mut().intern_literal(literal))
            }
        };
        graph.insert(s, p, o);
        Ok(())
    }

    fn parse_iri_ref(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(b'<') => {}
            Some(b'_') => return Err(self.error(
                "blank nodes are not supported: the structuredness framework assumes URI subjects",
            )),
            _ => return Err(self.error("expected IRI starting with '<'")),
        }
        self.pos += 1;
        let mut iri = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated IRI")),
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(iri);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'>') => {
                            iri.push('>');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            iri.push('\\');
                            self.pos += 1;
                        }
                        Some(b'u') | Some(b'U') => {
                            let ch = self.parse_unicode_escape()?;
                            iri.push(ch);
                        }
                        _ => return Err(self.error("invalid escape in IRI")),
                    }
                }
                Some(other) => {
                    // Consume a full UTF-8 character, not just a byte.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in IRI"))?;
                    let ch = text.chars().next().unwrap_or(other as char);
                    if ch.is_whitespace() {
                        return Err(self.error("whitespace inside IRI"));
                    }
                    iri.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<ParsedObject, ParseError> {
        match self.peek() {
            Some(b'<') => Ok(ParsedObject::Iri(self.parse_iri_ref()?)),
            Some(b'"') => self.parse_literal().map(ParsedObject::Literal),
            Some(b'_') => Err(self.error(
                "blank nodes are not supported: the structuredness framework assumes URI subjects",
            )),
            _ => Err(self.error("expected IRI or literal object")),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        self.expect(b'"')?;
        let mut lexical = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            lexical.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            lexical.push('\\');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            lexical.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            lexical.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            lexical.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') | Some(b'U') => {
                            let ch = self.parse_unicode_escape()?;
                            lexical.push(ch);
                        }
                        _ => return Err(self.error("invalid escape in string literal")),
                    }
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in literal"))?;
                    let ch = text.chars().next().expect("non-empty checked above");
                    lexical.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        // Optional language tag or datatype.
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.error("empty language tag"));
                }
                let tag = std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII checked")
                    .to_owned();
                Ok(Literal::lang(lexical, tag))
            }
            Some(b'^') => {
                self.pos += 1;
                self.expect(b'^')?;
                let datatype = self.parse_iri_ref()?;
                Ok(Literal::typed(lexical, datatype))
            }
            _ => Ok(Literal::simple(lexical)),
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, ParseError> {
        let long = match self.peek() {
            Some(b'u') => false,
            Some(b'U') => true,
            _ => return Err(self.error("expected unicode escape")),
        };
        self.pos += 1;
        let len = if long { 8 } else { 4 };
        if self.pos + len > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| self.error("invalid hex in unicode escape"))?;
        self.pos += len;
        char::from_u32(code).ok_or_else(|| self.error("invalid unicode code point"))
    }
}

enum ParsedObject {
    Iri(String),
    Literal(Literal),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = "\
# a comment line
<http://ex/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Person> .
<http://ex/alice> <http://ex/name> \"Alice\" .

<http://ex/alice> <http://ex/birthDate> \"1980-01-01\"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/alice> <http://ex/description> \"sagt \\\"hallo\\\"\"@de . # trailing comment
";
        let graph = parse_ntriples(doc).expect("document parses");
        assert_eq!(graph.len(), 4);
        assert_eq!(graph.subject_count(), 1);
        assert_eq!(graph.subjects_of_sort_named("http://ex/Person").len(), 1);
    }

    #[test]
    fn round_trips_through_serializer() {
        let doc = "\
<http://ex/s> <http://ex/p> <http://ex/o> .
<http://ex/s> <http://ex/q> \"line\\nbreak\\t\\\"quoted\\\"\" .
<http://ex/s> <http://ex/r> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/s> <http://ex/l> \"bonjour\"@fr .
";
        let graph = parse_ntriples(doc).expect("parses");
        let serialized = write_ntriples(&graph);
        let reparsed = parse_ntriples(&serialized).expect("round trip parses");
        assert_eq!(reparsed.len(), graph.len());
        let original: std::collections::BTreeSet<String> = doc
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.trim().to_owned())
            .collect();
        let round: std::collections::BTreeSet<String> =
            serialized.lines().map(|l| l.trim().to_owned()).collect();
        assert_eq!(original, round);
    }

    #[test]
    fn unicode_escapes_are_decoded() {
        let doc = "<http://ex/s> <http://ex/p> \"caf\\u00E9\" .\n";
        let graph = parse_ntriples(doc).expect("parses");
        let triple = graph.triples().next().unwrap();
        let Object::Literal(id) = triple.object else {
            panic!("expected literal")
        };
        assert_eq!(graph.dictionary().literal(id).lexical, "café");
    }

    #[test]
    fn rejects_blank_nodes() {
        let err = parse_ntriples("_:b1 <http://ex/p> <http://ex/o> .\n").unwrap_err();
        assert!(err.message.contains("blank nodes"));
    }

    #[test]
    fn rejects_missing_dot() {
        let err = parse_ntriples("<http://ex/s> <http://ex/p> <http://ex/o>\n").unwrap_err();
        assert!(err.to_string().contains("expected '.'"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_garbage_after_dot() {
        let err =
            parse_ntriples("<http://ex/s> <http://ex/p> <http://ex/o> . garbage\n").unwrap_err();
        assert!(err.message.contains("unexpected content"));
    }

    #[test]
    fn rejects_unterminated_literal() {
        let err = parse_ntriples("<http://ex/s> <http://ex/p> \"open .\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn reports_line_numbers() {
        let doc = "<http://ex/s> <http://ex/p> <http://ex/o> .\nnot a triple\n";
        let err = parse_ntriples(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
