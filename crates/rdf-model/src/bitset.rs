//! A compact fixed-capacity bit set used for signatures and property masks.
//!
//! The property-structure view of an RDF graph (Section 2.1 of the paper) is a
//! 0/1 matrix. Rows of that matrix — and therefore *signatures* (Definition
//! 4.1) — are naturally represented as bit sets over the property columns.
//! Real sorts have few properties (8 for DBpedia Persons, 12 for WordNet
//! Nouns, ≤ 80 for the YAGO sample), so a small `Vec<u64>` is all we need.

/// A growable bit set backed by 64-bit words.
///
/// The set has a logical *capacity* (number of addressable bits) fixed at
/// construction; operations on indexes beyond the capacity panic, which keeps
/// accidental column mix-ups loud during development.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty bit set able to hold `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        let n_words = capacity.div_ceil(64).max(1);
        BitSet {
            words: vec![0; n_words],
            capacity,
        }
    }

    /// Creates a bit set with the bits listed in `indexes` set.
    pub fn from_indexes(capacity: usize, indexes: &[usize]) -> Self {
        let mut set = BitSet::new(capacity);
        for &i in indexes {
            set.insert(i);
        }
        set
    }

    /// Number of addressable bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn check(&self, index: usize) {
        assert!(
            index < self.capacity,
            "bit index {index} out of range for BitSet of capacity {}",
            self.capacity
        );
    }

    /// Sets the bit at `index`, returning whether it was previously unset.
    pub fn insert(&mut self, index: usize) -> bool {
        self.check(index);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let was_unset = *word & mask == 0;
        *word |= mask;
        was_unset
    }

    /// Clears the bit at `index`, returning whether it was previously set.
    pub fn remove(&mut self, index: usize) -> bool {
        self.check(index);
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Returns whether the bit at `index` is set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.check(index);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indexes of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Returns `true` if every bit set in `self` is also set in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter().chain(std::iter::repeat(&0)))
            .all(|(&a, &b)| a & !b == 0)
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in intersection"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// Counts bits set in both `self` and `other`.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Counts bits set in `self` or `other`.
    pub fn union_len(&self, other: &BitSet) -> usize {
        let common_len: usize = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a | b).count_ones() as usize)
            .sum();
        // Account for a possible length mismatch defensively (should not
        // happen when capacities agree, but keeps the function total).
        let extra_self: usize = self
            .words
            .iter()
            .skip(other.words.len())
            .map(|w| w.count_ones() as usize)
            .sum();
        let extra_other: usize = other
            .words
            .iter()
            .skip(self.words.len())
            .map(|w| w.count_ones() as usize)
            .sum();
        common_len + extra_self + extra_other
    }

    /// The raw backing words (least-significant word first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indexes into a bit set with capacity `max + 1`.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let indexes: Vec<usize> = iter.into_iter().collect();
        let capacity = indexes.iter().copied().max().map_or(0, |m| m + 1);
        BitSet::from_indexes(capacity, &indexes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_bits() {
        let set = BitSet::new(10);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert!(!set.contains(3));
        assert_eq!(set.iter().count(), 0);
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let mut set = BitSet::new(130);
        assert!(set.insert(0));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "second insert reports already present");
        assert_eq!(set.len(), 3);
        assert!(set.contains(64));
        assert!(set.remove(64));
        assert!(!set.remove(64));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let set = BitSet::new(8);
        set.contains(8);
    }

    #[test]
    fn subset_and_set_operations() {
        let a = BitSet::from_indexes(10, &[1, 3, 5]);
        let b = BitSet::from_indexes(10, &[1, 2, 3, 5, 7]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(a.union_len(&b), 5);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 5, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let set: BitSet = vec![2usize, 9, 4].into_iter().collect();
        assert_eq!(set.capacity(), 10);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![2, 4, 9]);
    }

    #[test]
    fn ordering_is_stable_for_identical_capacity() {
        let a = BitSet::from_indexes(8, &[0]);
        let b = BitSet::from_indexes(8, &[1]);
        assert!(a < b);
    }
}
