//! A pragmatic Turtle-subset parser.
//!
//! Real-world RDF dumps (DBpedia, WordNet) are commonly distributed as Turtle.
//! This module supports the subset needed to load such data comfortably:
//!
//! * `@prefix pre: <iri> .` declarations and `PREFIX` (SPARQL style),
//! * `@base <iri> .` declarations (prepended to relative IRI references),
//! * prefixed names (`foaf:name`) and full IRI references (`<...>`),
//! * the `a` keyword for `rdf:type`,
//! * predicate lists (`;`) and object lists (`,`),
//! * string literals with the same escapes as the N-Triples parser, plus
//!   language tags and datatypes,
//! * integer/decimal/boolean shorthand literals,
//! * `#` comments.
//!
//! Blank nodes and collections are rejected, consistent with the paper's
//! URI-subject data model.

use crate::error::ParseError;
use crate::graph::Graph;
use crate::term::{Literal, Object};
use crate::vocab::RDF_TYPE;
use std::collections::HashMap;

/// XSD namespace used by the numeric/boolean shorthand literal forms.
const XSD: &str = "http://www.w3.org/2001/XMLSchema#";

/// Parses a Turtle document into a fresh [`Graph`].
pub fn parse_turtle(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    parse_turtle_into(input, &mut graph)?;
    Ok(graph)
}

/// Parses a Turtle document, adding its triples to an existing graph.
pub fn parse_turtle_into(input: &str, graph: &mut Graph) -> Result<(), ParseError> {
    let mut parser = TurtleParser::new(input);
    parser.parse_document(graph)
}

struct TurtleParser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    prefixes: HashMap<String, String>,
    base: String,
}

impl<'a> TurtleParser<'a> {
    fn new(text: &'a str) -> Self {
        TurtleParser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            prefixes: HashMap::new(),
            base: String::new(),
        }
    }

    fn line_col(&self) -> (usize, usize) {
        let consumed = &self.text[..self.pos];
        let line = consumed.matches('\n').count() + 1;
        let column = consumed
            .rfind('\n')
            .map(|idx| self.pos - idx)
            .unwrap_or(self.pos + 1);
        (line, column)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.line_col();
        ParseError::new(line, column, message)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with_keyword(&self, keyword: &str) -> bool {
        let upper = keyword.to_ascii_uppercase();
        let rest = &self.text[self.pos..];
        rest.len() >= keyword.len() && rest[..keyword.len()].eq_ignore_ascii_case(&upper)
    }

    fn expect_char(&mut self, expected: char) -> Result<(), ParseError> {
        self.skip_ws_and_comments();
        if self.peek() == Some(expected as u8) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{expected}', found {:?}",
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse_document(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        loop {
            self.skip_ws_and_comments();
            if self.pos >= self.bytes.len() {
                return Ok(());
            }
            if self.peek() == Some(b'@')
                || self.starts_with_keyword("PREFIX")
                || self.starts_with_keyword("BASE")
            {
                self.parse_directive()?;
            } else {
                self.parse_triples_block(graph)?;
            }
        }
    }

    fn parse_directive(&mut self) -> Result<(), ParseError> {
        let at_form = self.peek() == Some(b'@');
        if at_form {
            self.pos += 1;
        }
        let word = self.parse_bare_word()?;
        match word.to_ascii_lowercase().as_str() {
            "prefix" => {
                self.skip_ws_and_comments();
                let prefix = self.parse_prefix_label()?;
                self.skip_ws_and_comments();
                let iri = self.parse_iri_ref_string()?;
                self.prefixes.insert(prefix, iri);
            }
            "base" => {
                self.skip_ws_and_comments();
                let iri = self.parse_iri_ref_string()?;
                self.base = iri;
            }
            other => return Err(self.error(format!("unknown directive '@{other}'"))),
        }
        // '@prefix' requires a trailing dot; SPARQL-style PREFIX/BASE does not.
        self.skip_ws_and_comments();
        if at_form {
            self.expect_char('.')?;
        } else if self.peek() == Some(b'.') {
            self.pos += 1;
        }
        Ok(())
    }

    fn parse_bare_word(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphabetic() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a keyword"));
        }
        Ok(self.text[start..self.pos].to_owned())
    }

    fn parse_prefix_label(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b':' {
                let label = self.text[start..self.pos].to_owned();
                self.pos += 1;
                return Ok(label);
            }
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Err(self.error("expected prefix label ending in ':'"))
    }

    fn parse_iri_ref_string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'<') {
            return Err(self.error("expected IRI reference starting with '<'"));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let raw = &self.text[start..self.pos];
                self.pos += 1;
                let resolved = if raw.contains(':') || self.base.is_empty() {
                    raw.to_owned()
                } else {
                    format!("{}{}", self.base, raw)
                };
                return Ok(resolved);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated IRI reference"))
    }

    fn parse_triples_block(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        let subject = self.parse_resource()?;
        loop {
            self.skip_ws_and_comments();
            let predicate = self.parse_predicate()?;
            loop {
                self.skip_ws_and_comments();
                let object = self.parse_object_term()?;
                let s = graph.intern_iri(&subject);
                let p = graph.intern_iri(&predicate);
                let o = match object {
                    TurtleObject::Iri(iri) => Object::Iri(graph.intern_iri(&iri)),
                    TurtleObject::Literal(lit) => {
                        Object::Literal(graph.dictionary_mut().intern_literal(lit))
                    }
                };
                graph.insert(s, p, o);
                self.skip_ws_and_comments();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        continue;
                    }
                    _ => break,
                }
            }
            self.skip_ws_and_comments();
            match self.peek() {
                Some(b';') => {
                    self.pos += 1;
                    self.skip_ws_and_comments();
                    // A ';' may be followed directly by '.' (trailing semicolon).
                    if self.peek() == Some(b'.') {
                        self.pos += 1;
                        return Ok(());
                    }
                    continue;
                }
                Some(b'.') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.error("expected ';', ',' or '.' after object")),
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<String, ParseError> {
        // The keyword 'a' abbreviates rdf:type.
        if self.peek() == Some(b'a') {
            let next = self.bytes.get(self.pos + 1).copied();
            if next.is_none() || next.map(|b| (b as char).is_whitespace()) == Some(true) {
                self.pos += 1;
                return Ok(RDF_TYPE.to_owned());
            }
        }
        self.parse_resource()
    }

    fn parse_resource(&mut self) -> Result<String, ParseError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'<') => self.parse_iri_ref_string(),
            Some(b'_') => Err(self.error(
                "blank nodes are not supported: the structuredness framework assumes URI subjects",
            )),
            Some(b) if b.is_ascii_alphabetic() || b == b':' => self.parse_prefixed_name(),
            _ => Err(self.error("expected IRI or prefixed name")),
        }
    }

    fn parse_prefixed_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b':' {
                break;
            }
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                return Err(self.error("expected prefixed name"));
            }
        }
        if self.peek() != Some(b':') {
            return Err(self.error("expected ':' in prefixed name"));
        }
        let prefix = self.text[start..self.pos].to_owned();
        self.pos += 1;
        let local_start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        // A trailing '.' terminates the statement, not the local name.
        let mut local_end = self.pos;
        while local_end > local_start && self.bytes[local_end - 1] == b'.' {
            local_end -= 1;
        }
        self.pos = local_end;
        let local = &self.text[local_start..local_end];
        let namespace = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.error(format!("undeclared prefix '{prefix}:'")))?;
        Ok(format!("{namespace}{local}"))
    }

    fn parse_object_term(&mut self) -> Result<TurtleObject, ParseError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'<') => Ok(TurtleObject::Iri(self.parse_iri_ref_string()?)),
            Some(b'"') => self.parse_string_literal().map(TurtleObject::Literal),
            Some(b'_') => Err(self.error(
                "blank nodes are not supported: the structuredness framework assumes URI subjects",
            )),
            Some(b'(') | Some(b'[') => {
                Err(self.error("collections and anonymous nodes are not supported"))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
                self.parse_numeric_literal().map(TurtleObject::Literal)
            }
            Some(b't') | Some(b'f')
                if self.starts_with_keyword("true") || self.starts_with_keyword("false") =>
            {
                let word = self.parse_bare_word()?;
                Ok(TurtleObject::Literal(Literal::typed(
                    word.to_ascii_lowercase(),
                    format!("{XSD}boolean"),
                )))
            }
            Some(b) if b.is_ascii_alphabetic() || b == b':' => {
                Ok(TurtleObject::Iri(self.parse_prefixed_name()?))
            }
            _ => Err(self.error("expected object term")),
        }
    }

    fn parse_numeric_literal(&mut self) -> Result<Literal, ParseError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        let mut saw_dot = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else if b == b'.' && !saw_dot {
                // Only treat '.' as a decimal point when followed by a digit;
                // otherwise it terminates the statement.
                if self
                    .bytes
                    .get(self.pos + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false)
                {
                    saw_dot = true;
                    self.pos += 1;
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected numeric literal"));
        }
        let lexical = self.text[start..self.pos].to_owned();
        let datatype = if saw_dot {
            format!("{XSD}decimal")
        } else {
            format!("{XSD}integer")
        };
        Ok(Literal::typed(lexical, datatype))
    }

    fn parse_string_literal(&mut self) -> Result<Literal, ParseError> {
        // Delegate the escape handling to a small local loop mirroring the
        // N-Triples rules.
        self.expect_char('"')?;
        let mut lexical = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    match escaped {
                        b'"' => lexical.push('"'),
                        b'\\' => lexical.push('\\'),
                        b'n' => lexical.push('\n'),
                        b'r' => lexical.push('\r'),
                        b't' => lexical.push('\t'),
                        b'u' | b'U' => {
                            let long = escaped == b'U';
                            self.pos += 1;
                            let len = if long { 8 } else { 4 };
                            if self.pos + len > self.bytes.len() {
                                return Err(self.error("truncated unicode escape"));
                            }
                            let hex = &self.text[self.pos..self.pos + len];
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid unicode escape"))?;
                            lexical.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                            self.pos += len - 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.text[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    lexical.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if start == self.pos {
                    return Err(self.error("empty language tag"));
                }
                Ok(Literal::lang(
                    lexical,
                    self.text[start..self.pos].to_owned(),
                ))
            }
            Some(b'^') => {
                self.pos += 1;
                self.expect_char('^')?;
                self.skip_ws_and_comments();
                let datatype = match self.peek() {
                    Some(b'<') => self.parse_iri_ref_string()?,
                    _ => self.parse_prefixed_name()?,
                };
                Ok(Literal::typed(lexical, datatype))
            }
            _ => Ok(Literal::simple(lexical)),
        }
    }
}

enum TurtleObject {
    Iri(String),
    Literal(Literal),
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex:   <http://example.org/> .
@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .

ex:alice a foaf:Person ;
    foaf:name "Alice" , "Alicia"@es ;
    ex:birthDate "1980-01-01"^^xsd:date ;
    ex:age 44 ;
    ex:height 1.70 ;
    ex:alive true .

ex:bob a foaf:Person ;
    foaf:name "Bob" .
"#;

    #[test]
    fn parses_prefixed_document() {
        let graph = parse_turtle(DOC).expect("document parses");
        assert_eq!(graph.subject_count(), 2);
        assert_eq!(
            graph
                .subjects_of_sort_named("http://xmlns.com/foaf/0.1/Person")
                .len(),
            2
        );
        // alice: type, name x2, birthDate, age, height, alive = 7; bob: type, name = 2.
        assert_eq!(graph.len(), 9);
    }

    #[test]
    fn numeric_and_boolean_literals_get_xsd_datatypes() {
        let graph = parse_turtle(DOC).expect("parses");
        let mut datatypes: Vec<String> = graph
            .triples()
            .filter_map(|t| match t.object {
                Object::Literal(id) => graph.dictionary().literal(id).datatype.clone(),
                Object::Iri(_) => None,
            })
            .collect();
        datatypes.sort();
        datatypes.dedup();
        assert!(datatypes.contains(&format!("{XSD}integer")));
        assert!(datatypes.contains(&format!("{XSD}decimal")));
        assert!(datatypes.contains(&format!("{XSD}boolean")));
        assert!(datatypes.contains(&format!("{XSD}date")));
    }

    #[test]
    fn base_resolution_applies_to_relative_iris() {
        let doc = "@base <http://example.org/> .\n<alice> <knows> <bob> .\n";
        let graph = parse_turtle(doc).expect("parses");
        let triple = graph.triples().next().unwrap();
        assert_eq!(graph.iri(triple.subject), "http://example.org/alice");
        assert_eq!(graph.iri(triple.predicate), "http://example.org/knows");
    }

    #[test]
    fn sparql_style_prefix_is_accepted() {
        let doc = "PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .\n";
        let graph = parse_turtle(doc).expect("parses");
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let err = parse_turtle("ex:a ex:p ex:b .\n").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn blank_nodes_are_rejected() {
        let err = parse_turtle("@prefix ex: <http://e/> .\n_:b ex:p ex:o .\n").unwrap_err();
        assert!(err.message.contains("blank nodes"));
    }

    #[test]
    fn error_positions_are_line_accurate() {
        let doc = "@prefix ex: <http://e/> .\nex:a ex:p ??? .\n";
        let err = parse_turtle(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }
}
