//! The in-memory RDF graph: a set of triples plus an interning dictionary and
//! the indexes needed to answer the structural queries the paper relies on
//! (`S(D)`, `P(D)`, "s has property p in D", and the typed subgraph `D_t`).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::term::{Dictionary, IriId, Literal, Object};
use crate::vocab::RDF_TYPE;

/// An RDF triple with interned components.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Triple {
    /// Subject (always an IRI, as in the paper's definition).
    pub subject: IriId,
    /// Predicate / property (always an IRI).
    pub predicate: IriId,
    /// Object: IRI or literal.
    pub object: Object,
}

/// A finite set of RDF triples (the paper's RDF graph `D`) with its dictionary.
///
/// The graph deduplicates triples on insertion and maintains:
/// * a subject index (`subject → triple positions`) used to enumerate the
///   entity of a subject,
/// * a predicate index used to compute `P(D)` and per-property statistics,
/// * a type index (`sort → subjects`) used to extract the typed subgraph
///   `D_t = {(s,p,o) ∈ D | (s, rdf:type, t) ∈ D}`.
#[derive(Clone, Default, Debug)]
pub struct Graph {
    dictionary: Dictionary,
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    by_subject: BTreeMap<IriId, Vec<usize>>,
    by_predicate: BTreeMap<IriId, Vec<usize>>,
    by_type: BTreeMap<IriId, BTreeSet<IriId>>,
    rdf_type: Option<IriId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared access to the interning dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Mutable access to the interning dictionary (for pre-interning terms).
    pub fn dictionary_mut(&mut self) -> &mut Dictionary {
        &mut self.dictionary
    }

    /// Number of distinct triples in the graph.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the graph contains no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterates over all triples in insertion order.
    pub fn triples(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Interns an IRI in this graph's dictionary.
    pub fn intern_iri(&mut self, iri: &str) -> IriId {
        self.dictionary.intern_iri(iri)
    }

    /// Returns the string form of an interned IRI.
    pub fn iri(&self, id: IriId) -> &str {
        self.dictionary.iri(id)
    }

    /// Inserts a triple given interned components. Returns `true` if the
    /// triple was not already present.
    pub fn insert(&mut self, subject: IriId, predicate: IriId, object: Object) -> bool {
        let triple = Triple {
            subject,
            predicate,
            object,
        };
        if !self.seen.insert(triple) {
            return false;
        }
        let pos = self.triples.len();
        self.triples.push(triple);
        self.by_subject.entry(subject).or_default().push(pos);
        self.by_predicate.entry(predicate).or_default().push(pos);

        let rdf_type = *self
            .rdf_type
            .get_or_insert_with(|| self.dictionary.intern_iri(RDF_TYPE));
        if predicate == rdf_type {
            if let Object::Iri(sort) = object {
                self.by_type.entry(sort).or_default().insert(subject);
            }
        }
        true
    }

    /// Convenience: inserts a triple with an IRI object, interning all strings.
    pub fn insert_iri_triple(&mut self, subject: &str, predicate: &str, object: &str) -> bool {
        let s = self.dictionary.intern_iri(subject);
        let p = self.dictionary.intern_iri(predicate);
        let o = self.dictionary.intern_iri(object);
        self.insert(s, p, Object::Iri(o))
    }

    /// Convenience: inserts a triple with a literal object, interning all strings.
    pub fn insert_literal_triple(
        &mut self,
        subject: &str,
        predicate: &str,
        literal: Literal,
    ) -> bool {
        let s = self.dictionary.intern_iri(subject);
        let p = self.dictionary.intern_iri(predicate);
        let o = self.dictionary.intern_literal(literal);
        self.insert(s, p, Object::Literal(o))
    }

    /// Convenience: declares `subject rdf:type sort`.
    pub fn insert_type(&mut self, subject: &str, sort: &str) -> bool {
        self.insert_iri_triple(subject, RDF_TYPE, sort)
    }

    /// The set of subjects `S(D)` in id order.
    pub fn subjects(&self) -> Vec<IriId> {
        self.by_subject.keys().copied().collect()
    }

    /// The set of properties `P(D)` in id order.
    pub fn properties(&self) -> Vec<IriId> {
        self.by_predicate.keys().copied().collect()
    }

    /// Number of distinct subjects.
    pub fn subject_count(&self) -> usize {
        self.by_subject.len()
    }

    /// Number of distinct properties.
    pub fn property_count(&self) -> usize {
        self.by_predicate.len()
    }

    /// Returns whether `s` has property `p` in this graph (the paper's
    /// "s has property p in D": ∃o. (s,p,o) ∈ D).
    pub fn has_property(&self, subject: IriId, property: IriId) -> bool {
        self.by_subject
            .get(&subject)
            .map(|positions| {
                positions
                    .iter()
                    .any(|&pos| self.triples[pos].predicate == property)
            })
            .unwrap_or(false)
    }

    /// All triples whose subject is `subject` (the *entity* of the subject).
    pub fn entity(&self, subject: IriId) -> Vec<Triple> {
        self.by_subject
            .get(&subject)
            .map(|positions| positions.iter().map(|&pos| self.triples[pos]).collect())
            .unwrap_or_default()
    }

    /// The sorts (IRIs `t`) for which some `(s, rdf:type, t)` triple exists.
    pub fn sorts(&self) -> Vec<IriId> {
        self.by_type.keys().copied().collect()
    }

    /// The subjects explicitly declared to be of sort `sort`.
    pub fn subjects_of_sort(&self, sort: IriId) -> Vec<IriId> {
        self.by_type
            .get(&sort)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Looks up a sort by IRI string and returns its declared subjects.
    pub fn subjects_of_sort_named(&self, sort: &str) -> Vec<IriId> {
        match self.dictionary.iri_id(sort) {
            Some(id) => self.subjects_of_sort(id),
            None => Vec::new(),
        }
    }

    /// Extracts the typed subgraph `D_t`: all triples whose subject is
    /// declared (via `rdf:type`) to be of sort `sort`. The returned graph
    /// shares no storage with `self` but re-interns the same strings, so ids
    /// are *not* comparable across the two graphs.
    pub fn typed_subgraph(&self, sort: &str) -> Graph {
        let mut result = Graph::new();
        let Some(sort_id) = self.dictionary.iri_id(sort) else {
            return result;
        };
        let Some(members) = self.by_type.get(&sort_id) else {
            return result;
        };
        for &subject in members {
            for triple in self.entity(subject) {
                let s = result
                    .dictionary
                    .intern_iri(self.dictionary.iri(triple.subject));
                let p = result
                    .dictionary
                    .intern_iri(self.dictionary.iri(triple.predicate));
                let o = match triple.object {
                    Object::Iri(id) => {
                        Object::Iri(result.dictionary.intern_iri(self.dictionary.iri(id)))
                    }
                    Object::Literal(id) => Object::Literal(
                        result
                            .dictionary
                            .intern_literal(self.dictionary.literal(id).clone()),
                    ),
                };
                result.insert(s, p, o);
            }
        }
        result
    }

    /// Per-property subject counts: for each property `p`, the number of
    /// distinct subjects that have `p`.
    pub fn property_subject_counts(&self) -> BTreeMap<IriId, usize> {
        let mut counts = BTreeMap::new();
        for (&p, positions) in &self.by_predicate {
            let distinct: BTreeSet<IriId> = positions
                .iter()
                .map(|&pos| self.triples[pos].subject)
                .collect();
            counts.insert(p, distinct.len());
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_graph() -> Graph {
        let mut g = Graph::new();
        g.insert_type("http://ex/alice", "http://ex/Person");
        g.insert_literal_triple(
            "http://ex/alice",
            "http://ex/name",
            Literal::simple("Alice"),
        );
        g.insert_literal_triple(
            "http://ex/alice",
            "http://ex/birthDate",
            Literal::simple("1980-01-01"),
        );
        g.insert_type("http://ex/bob", "http://ex/Person");
        g.insert_literal_triple("http://ex/bob", "http://ex/name", Literal::simple("Bob"));
        g.insert_iri_triple("http://ex/acme", "http://ex/industry", "http://ex/Pharma");
        g.insert_type("http://ex/acme", "http://ex/Company");
        g
    }

    #[test]
    fn duplicate_triples_are_ignored() {
        let mut g = Graph::new();
        assert!(g.insert_iri_triple("http://s", "http://p", "http://o"));
        assert!(!g.insert_iri_triple("http://s", "http://p", "http://o"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn subjects_and_properties_are_reported() {
        let g = person_graph();
        assert_eq!(g.subject_count(), 3);
        // rdf:type, name, birthDate, industry.
        assert_eq!(g.property_count(), 4);
        let alice = g.dictionary().iri_id("http://ex/alice").unwrap();
        let name = g.dictionary().iri_id("http://ex/name").unwrap();
        let birth = g.dictionary().iri_id("http://ex/birthDate").unwrap();
        assert!(g.has_property(alice, name));
        assert!(g.has_property(alice, birth));
        let bob = g.dictionary().iri_id("http://ex/bob").unwrap();
        assert!(!g.has_property(bob, birth));
    }

    #[test]
    fn typed_subgraph_keeps_whole_entities() {
        let g = person_graph();
        let persons = g.typed_subgraph("http://ex/Person");
        assert_eq!(persons.subject_count(), 2);
        // Alice's entity: type, name, birthDate; Bob's: type, name.
        assert_eq!(persons.len(), 5);
        let companies = g.typed_subgraph("http://ex/Company");
        assert_eq!(companies.subject_count(), 1);
        assert_eq!(companies.len(), 2);
        let nothing = g.typed_subgraph("http://ex/DoesNotExist");
        assert!(nothing.is_empty());
    }

    #[test]
    fn sorts_and_membership() {
        let g = person_graph();
        let sorts: Vec<&str> = g.sorts().iter().map(|&id| g.iri(id)).collect();
        assert!(sorts.contains(&"http://ex/Person"));
        assert!(sorts.contains(&"http://ex/Company"));
        assert_eq!(g.subjects_of_sort_named("http://ex/Person").len(), 2);
        assert_eq!(g.subjects_of_sort_named("http://ex/Nope").len(), 0);
    }

    #[test]
    fn entity_returns_all_triples_of_subject() {
        let g = person_graph();
        let alice = g.dictionary().iri_id("http://ex/alice").unwrap();
        assert_eq!(g.entity(alice).len(), 3);
    }

    #[test]
    fn property_subject_counts_are_distinct_subject_counts() {
        let mut g = person_graph();
        // Add a second name triple for alice; the count for `name` must not
        // double-count her.
        g.insert_literal_triple("http://ex/alice", "http://ex/name", Literal::simple("Ali"));
        let name = g.dictionary().iri_id("http://ex/name").unwrap();
        let counts = g.property_subject_counts();
        assert_eq!(counts[&name], 2);
    }
}
