//! Signatures and the signature view (Definition 4.1 and Section 6.1).
//!
//! The *signature* of a subject is the 0/1 pattern of its row in the
//! property-structure view; a *signature set* is the set of all subjects
//! sharing a signature. Because sort refinements must be closed under
//! signatures, signature sets — not individual subjects — are the atomic
//! units every algorithm in this toolkit moves around. Collapsing DBpedia
//! Persons' 790 703 subjects to its 64 signatures is precisely the size
//! reduction that makes the ILP formulation practical (Section 7).

use std::collections::BTreeMap;

use crate::bitset::BitSet;
use crate::error::ModelError;
use crate::matrix::PropertyStructureView;

/// A signature together with the number of subjects (its multiplicity) and a
/// few representative subject labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureEntry {
    /// The property pattern: bit `i` is set iff subjects with this signature
    /// have the property in column `i`.
    pub signature: BitSet,
    /// The size of the signature set (number of subjects sharing the pattern).
    pub count: usize,
    /// Up to a handful of example subject labels, for reporting.
    pub examples: Vec<String>,
}

impl SignatureEntry {
    /// The support of the signature: the set of property columns it uses
    /// (`supp(µ)` in Section 6.1).
    pub fn support(&self) -> Vec<usize> {
        self.signature.iter().collect()
    }
}

/// The signature view of a dataset: its property columns plus one
/// [`SignatureEntry`] per distinct signature, sorted by descending size.
///
/// This is the "view of our input data that still maintains all the
/// properties of the data in terms of their fitness characteristics, yet
/// occupies substantially less space" promised in the paper's introduction.
#[derive(Clone, Debug)]
pub struct SignatureView {
    properties: Vec<String>,
    entries: Vec<SignatureEntry>,
}

impl SignatureView {
    /// Maximum number of example subjects retained per signature.
    const MAX_EXAMPLES: usize = 3;

    /// Builds the signature view of a property-structure matrix.
    pub fn from_matrix(view: &PropertyStructureView) -> Self {
        let mut groups: BTreeMap<BitSet, (usize, Vec<String>)> = BTreeMap::new();
        for (row_idx, subject) in view.subjects().iter().enumerate() {
            let row = view.row(row_idx).clone();
            let entry = groups.entry(row).or_insert_with(|| (0, Vec::new()));
            entry.0 += 1;
            if entry.1.len() < Self::MAX_EXAMPLES {
                entry.1.push(subject.clone());
            }
        }
        let mut entries: Vec<SignatureEntry> = groups
            .into_iter()
            .map(|(signature, (count, examples))| SignatureEntry {
                signature,
                count,
                examples,
            })
            .collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.signature.cmp(&b.signature))
        });
        SignatureView {
            properties: view.properties().to_vec(),
            entries,
        }
    }

    /// Builds a signature view directly from `(property-index list, count)`
    /// pairs. Intended for synthetic datasets where materialising every
    /// subject row would be wasteful.
    pub fn from_counts(
        properties: Vec<String>,
        signatures: Vec<(Vec<usize>, usize)>,
    ) -> Result<Self, ModelError> {
        let n_props = properties.len();
        let mut groups: BTreeMap<BitSet, usize> = BTreeMap::new();
        for (indexes, count) in signatures {
            if let Some(&max) = indexes.iter().max() {
                if max >= n_props {
                    return Err(ModelError::DimensionMismatch {
                        context: "signature property index",
                        expected: n_props,
                        actual: max + 1,
                    });
                }
            }
            if count == 0 {
                continue;
            }
            let bits = BitSet::from_indexes(n_props, &indexes);
            *groups.entry(bits).or_insert(0) += count;
        }
        let mut entries: Vec<SignatureEntry> = groups
            .into_iter()
            .map(|(signature, count)| SignatureEntry {
                signature,
                count,
                examples: Vec::new(),
            })
            .collect();
        entries.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.signature.cmp(&b.signature))
        });
        Ok(SignatureView {
            properties,
            entries,
        })
    }

    /// The property labels in column order.
    pub fn properties(&self) -> &[String] {
        &self.properties
    }

    /// Number of property columns.
    pub fn property_count(&self) -> usize {
        self.properties.len()
    }

    /// The column index of a property label, if present.
    pub fn property_index(&self, property: &str) -> Option<usize> {
        self.properties.iter().position(|p| p == property)
    }

    /// The signature entries, largest signature set first.
    pub fn entries(&self) -> &[SignatureEntry] {
        &self.entries
    }

    /// Number of distinct signatures, `|Λ(D)|`.
    pub fn signature_count(&self) -> usize {
        self.entries.len()
    }

    /// Total number of subjects across all signature sets, `|S(D)|`.
    pub fn subject_count(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Number of subjects that have the property in column `col`
    /// (the column sum of the full matrix).
    pub fn property_subject_count(&self, col: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.signature.contains(col))
            .map(|e| e.count)
            .sum()
    }

    /// Number of subjects that have both properties `col_a` and `col_b`.
    pub fn property_pair_count(&self, col_a: usize, col_b: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.signature.contains(col_a) && e.signature.contains(col_b))
            .map(|e| e.count)
            .sum()
    }

    /// Number of subjects that have property `col_a` or property `col_b`.
    pub fn property_either_count(&self, col_a: usize, col_b: usize) -> usize {
        self.entries
            .iter()
            .filter(|e| e.signature.contains(col_a) || e.signature.contains(col_b))
            .map(|e| e.count)
            .sum()
    }

    /// Total number of 1-cells across the dataset (`Σ_µ |supp(µ)| · count(µ)`).
    pub fn ones(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.signature.len() * e.count)
            .sum()
    }

    /// The union of the supports of the given signature entries: the set of
    /// property columns used by a candidate implicit sort (`U_{i,p}` in the
    /// ILP formulation).
    pub fn used_properties(&self, entry_indexes: &[usize]) -> BitSet {
        let mut used = BitSet::new(self.property_count());
        for &idx in entry_indexes {
            used.union_with(&self.entries[idx].signature);
        }
        used
    }

    /// Builds the sub-view consisting only of the given signature entries
    /// (an implicit sort). Property columns are retained so column indexes
    /// stay comparable across sub-views; columns unused by the subset simply
    /// have zero subjects.
    pub fn subset(&self, entry_indexes: &[usize]) -> SignatureView {
        let entries = entry_indexes
            .iter()
            .map(|&idx| self.entries[idx].clone())
            .collect();
        SignatureView {
            properties: self.properties.clone(),
            entries,
        }
    }

    /// A stable 128-bit content hash of the view (FNV-1a over the property
    /// labels and the `(signature, count)` entries).
    ///
    /// Two views with the same properties in the same column order and the
    /// same signature entries hash identically whether they were built with
    /// `from_matrix` or `from_counts`, because both keep entries in a
    /// canonical order (example subject labels are deliberately excluded:
    /// they carry no refinement-relevant content). The hash is independent of the
    /// process, platform, and release, so it can key persistent or remote
    /// caches of solved refinement instances (the `strudel-server` result
    /// cache keys on it).
    ///
    /// FNV-1a is not collision-resistant against an adversary; the 128-bit
    /// width makes *accidental* collisions negligible (birthday bound
    /// ≈ 2⁶⁴ distinct views), which is the right trade for a result cache
    /// whose clients are trusted to send their own views. Do not use it to
    /// authenticate untrusted content.
    pub fn cache_key(&self) -> u128 {
        const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
        const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
        let mut hash = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u128::from(b);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&(self.properties.len() as u64).to_le_bytes());
        for property in &self.properties {
            eat(&(property.len() as u64).to_le_bytes());
            eat(property.as_bytes());
        }
        eat(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            eat(&(entry.count as u64).to_le_bytes());
            eat(&(entry.signature.len() as u64).to_le_bytes());
            for col in entry.signature.iter() {
                eat(&(col as u64).to_le_bytes());
            }
        }
        hash
    }

    /// Expands the signature view back into a full property-structure view
    /// with synthetic subject labels. Useful for tests and for the naive
    /// evaluation oracle; avoid on large datasets.
    pub fn to_matrix(&self) -> PropertyStructureView {
        let mut subjects = Vec::with_capacity(self.subject_count());
        let mut rows = Vec::with_capacity(self.subject_count());
        for (sig_idx, entry) in self.entries.iter().enumerate() {
            for copy in 0..entry.count {
                subjects.push(format!("urn:sig{sig_idx}:subject{copy}"));
                rows.push(entry.signature.clone());
            }
        }
        PropertyStructureView::from_rows(self.properties.clone(), subjects, rows)
            .expect("signature view expansion is dimension-consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::term::Literal;

    fn view_from_graph() -> SignatureView {
        let mut g = Graph::new();
        for (subject, props) in [
            ("http://ex/a", vec!["name", "birthDate"]),
            ("http://ex/b", vec!["name", "birthDate"]),
            ("http://ex/c", vec!["name"]),
            ("http://ex/d", vec!["name", "deathDate", "birthDate"]),
        ] {
            for p in props {
                g.insert_literal_triple(subject, &format!("http://ex/{p}"), Literal::simple("v"));
            }
        }
        let matrix = PropertyStructureView::from_graph(&g, true);
        SignatureView::from_matrix(&matrix)
    }

    #[test]
    fn groups_identical_rows() {
        let view = view_from_graph();
        assert_eq!(view.signature_count(), 3);
        assert_eq!(view.subject_count(), 4);
        // Largest signature set first.
        assert_eq!(view.entries()[0].count, 2);
        assert!(view.entries()[0].examples.len() <= 2);
    }

    #[test]
    fn property_counts_are_column_sums() {
        let view = view_from_graph();
        let name = view.property_index("http://ex/name").unwrap();
        let birth = view.property_index("http://ex/birthDate").unwrap();
        let death = view.property_index("http://ex/deathDate").unwrap();
        assert_eq!(view.property_subject_count(name), 4);
        assert_eq!(view.property_subject_count(birth), 3);
        assert_eq!(view.property_subject_count(death), 1);
        assert_eq!(view.property_pair_count(birth, death), 1);
        assert_eq!(view.property_either_count(birth, death), 3);
        assert_eq!(view.ones(), 2 * 2 + 1 + 3);
    }

    #[test]
    fn from_counts_validates_and_merges() {
        let view = SignatureView::from_counts(
            vec!["p".into(), "q".into()],
            vec![(vec![0], 5), (vec![0, 1], 2), (vec![0], 3), (vec![1], 0)],
        )
        .unwrap();
        // The two (vec![0], _) groups merge; the zero-count group disappears.
        assert_eq!(view.signature_count(), 2);
        assert_eq!(view.subject_count(), 10);
        assert_eq!(view.entries()[0].count, 8);

        let err = SignatureView::from_counts(vec!["p".into()], vec![(vec![1], 1)]).unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));
    }

    #[test]
    fn subset_and_used_properties() {
        let view = view_from_graph();
        let death = view.property_index("http://ex/deathDate").unwrap();
        // Find the index of the signature that uses deathDate.
        let with_death: Vec<usize> = view
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.signature.contains(death))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_death.len(), 1);
        let used = view.used_properties(&with_death);
        assert!(used.contains(death));
        let sub = view.subset(&with_death);
        assert_eq!(sub.subject_count(), 1);
        assert_eq!(sub.property_count(), view.property_count());
    }

    #[test]
    fn cache_key_is_content_addressed() {
        let view = view_from_graph();
        // Independent construction paths with identical content agree.
        let rebuilt = SignatureView::from_matrix(&view.to_matrix());
        assert_eq!(view.cache_key(), rebuilt.cache_key());
        // Any content difference changes the key.
        let other = SignatureView::from_counts(
            view.properties().to_vec(),
            vec![(vec![0], 2), (vec![0, 1], 2)],
        )
        .unwrap();
        assert_ne!(view.cache_key(), other.cache_key());
        // Property labels participate, not just the bit patterns.
        let relabeled = SignatureView::from_counts(
            view.properties().iter().map(|p| format!("{p}X")).collect(),
            view.entries()
                .iter()
                .map(|e| (e.support(), e.count))
                .collect(),
        )
        .unwrap();
        assert_ne!(view.cache_key(), relabeled.cache_key());
    }

    #[test]
    fn to_matrix_round_trips_counts() {
        let view = view_from_graph();
        let matrix = view.to_matrix();
        assert_eq!(matrix.subject_count(), view.subject_count());
        assert_eq!(matrix.property_count(), view.property_count());
        let back = SignatureView::from_matrix(&matrix);
        assert_eq!(back.signature_count(), view.signature_count());
        assert_eq!(back.subject_count(), view.subject_count());
        let counts_a: Vec<usize> = view.entries().iter().map(|e| e.count).collect();
        let counts_b: Vec<usize> = back.entries().iter().map(|e| e.count).collect();
        assert_eq!(counts_a, counts_b);
    }
}
