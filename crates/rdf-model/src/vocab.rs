//! Well-known vocabulary IRIs used throughout the paper and the toolkit.

/// `rdf:type` — the property that declares a subject to be of a sort
/// (Section 2.1: `(s, type, t)` declares `s` to be of sort `t`).
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// `owl:sameAs` — one of the generic properties ignored by the modified Cov
/// rule in the semantic-correctness experiment (Section 7.4).
pub const OWL_SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";

/// `rdfs:subClassOf` — ignored by the modified Cov rule in Section 7.4.
pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";

/// `rdfs:label` — ignored by the modified Cov rule in Section 7.4.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// `foaf:Person` — the sort of the DBpedia Persons dataset (Section 7.1).
pub const FOAF_PERSON: &str = "http://xmlns.com/foaf/0.1/Person";

/// The WordNet noun-synset sort IRI (Section 7.2).
pub const WN_NOUN_SYNSET: &str = "http://www.w3.org/2006/03/wn/wn20/schema/NounSynset";

/// The four "syntactic" properties the Section 7.4 experiment excludes from
/// the modified Cov rule.
pub const GENERIC_PROPERTIES: [&str; 4] = [RDF_TYPE, OWL_SAME_AS, RDFS_SUBCLASS_OF, RDFS_LABEL];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdf_type_matches_paper_constant() {
        assert_eq!(RDF_TYPE, "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    }

    #[test]
    fn generic_properties_include_type_and_label() {
        assert!(GENERIC_PROPERTIES.contains(&RDF_TYPE));
        assert!(GENERIC_PROPERTIES.contains(&RDFS_LABEL));
        assert_eq!(GENERIC_PROPERTIES.len(), 4);
    }
}
