//! # strudel-rdf
//!
//! RDF data model and structural views for the **strudel** toolkit — a Rust
//! reproduction of *"A Principled Approach to Bridging the Gap between Graph
//! Data and their Schemas"* (Arenas, Díaz, Fokoue, Kementsietsidis, Srinivas,
//! VLDB 2014).
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`term`] / [`graph`] — interned RDF terms and an indexed triple store
//!   able to answer the structural queries of Section 2.1 (`S(D)`, `P(D)`,
//!   "s has property p", typed subgraph `D_t`),
//! * [`ntriples`] / [`turtle`] — parsers and a serializer for the formats
//!   real dumps ship in,
//! * [`matrix`] — the property–structure view `M(D)`,
//! * [`signature`] — signatures (Definition 4.1) and the signature view, the
//!   compact representation all refinement algorithms operate on.
//!
//! ## Example
//!
//! ```
//! use strudel_rdf::prelude::*;
//!
//! let doc = r#"
//! @prefix ex:   <http://example.org/> .
//! @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//! ex:alice a foaf:Person ; foaf:name "Alice" ; ex:birthDate "1980-01-01" .
//! ex:bob   a foaf:Person ; foaf:name "Bob" .
//! "#;
//! let graph = parse_turtle(doc).unwrap();
//! let matrix = PropertyStructureView::from_sort(&graph, "http://xmlns.com/foaf/0.1/Person", true).unwrap();
//! assert_eq!(matrix.subject_count(), 2);
//! let signatures = SignatureView::from_matrix(&matrix);
//! assert_eq!(signatures.signature_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod error;
pub mod graph;
pub mod matrix;
pub mod ntriples;
pub mod rng;
pub mod signature;
pub mod term;
pub mod turtle;
pub mod vocab;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bitset::BitSet;
    pub use crate::error::{ModelError, ParseError};
    pub use crate::graph::{Graph, Triple};
    pub use crate::matrix::PropertyStructureView;
    pub use crate::ntriples::{parse_ntriples, parse_ntriples_into, write_ntriples};
    pub use crate::signature::{SignatureEntry, SignatureView};
    pub use crate::term::{Dictionary, IriId, Literal, LiteralId, Object};
    pub use crate::turtle::{parse_turtle, parse_turtle_into};
    pub use crate::vocab::RDF_TYPE;
}
