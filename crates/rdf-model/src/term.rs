//! RDF terms and the interning dictionary.
//!
//! The paper assumes two countably infinite disjoint sets **U** (URIs) and
//! **L** (literals); an RDF triple is `(s, p, o) ∈ U × U × (U ∪ L)`.
//! Subjects and properties are always URIs, objects may be URIs or literals.
//!
//! Working with owned strings everywhere would make the property-structure
//! view needlessly heavy, so a [`Dictionary`] interns every IRI and literal
//! once and hands out small copyable ids ([`IriId`], [`LiteralId`]).

use std::collections::HashMap;
use std::fmt;

/// An interned IRI (element of the set **U** in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IriId(pub(crate) u32);

/// An interned literal (element of the set **L** in the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LiteralId(pub(crate) u32);

impl IriId {
    /// The raw index of this IRI inside its dictionary.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LiteralId {
    /// The raw index of this literal inside its dictionary.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IriId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IriId({})", self.0)
    }
}

impl fmt::Debug for LiteralId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LiteralId({})", self.0)
    }
}

/// An RDF literal: a lexical form plus an optional datatype IRI or language tag.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Literal {
    /// The lexical form (the text between the quotes in N-Triples).
    pub lexical: String,
    /// Optional datatype IRI (`"5"^^<http://www.w3.org/2001/XMLSchema#integer>`).
    pub datatype: Option<String>,
    /// Optional language tag (`"chat"@en`). Mutually exclusive with `datatype`.
    pub language: Option<String>,
}

impl Literal {
    /// A plain string literal without datatype or language tag.
    pub fn simple(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: None,
        }
    }

    /// A typed literal.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(datatype.into()),
            language: None,
        }
    }

    /// A language-tagged literal.
    pub fn lang(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            language: Some(language.into()),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", self.lexical)?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// The object position of a triple: either an IRI or a literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Object {
    /// An IRI object.
    Iri(IriId),
    /// A literal object.
    Literal(LiteralId),
}

impl Object {
    /// Returns the IRI id if this object is an IRI.
    pub fn as_iri(self) -> Option<IriId> {
        match self {
            Object::Iri(id) => Some(id),
            Object::Literal(_) => None,
        }
    }
}

/// An interning dictionary mapping IRIs and literals to dense ids.
///
/// Ids are stable for the lifetime of the dictionary and dense (`0..len`),
/// which lets downstream structures use them directly as vector indexes.
#[derive(Clone, Default, Debug)]
pub struct Dictionary {
    iris: Vec<String>,
    iri_ids: HashMap<String, IriId>,
    literals: Vec<Literal>,
    literal_ids: HashMap<Literal, LiteralId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an IRI, returning its id (existing id if already interned).
    pub fn intern_iri(&mut self, iri: &str) -> IriId {
        if let Some(&id) = self.iri_ids.get(iri) {
            return id;
        }
        let id = IriId(u32::try_from(self.iris.len()).expect("more than u32::MAX IRIs interned"));
        self.iris.push(iri.to_owned());
        self.iri_ids.insert(iri.to_owned(), id);
        id
    }

    /// Interns a literal, returning its id.
    pub fn intern_literal(&mut self, literal: Literal) -> LiteralId {
        if let Some(&id) = self.literal_ids.get(&literal) {
            return id;
        }
        let id = LiteralId(
            u32::try_from(self.literals.len()).expect("more than u32::MAX literals interned"),
        );
        self.literals.push(literal.clone());
        self.literal_ids.insert(literal, id);
        id
    }

    /// Looks up an already-interned IRI.
    pub fn iri_id(&self, iri: &str) -> Option<IriId> {
        self.iri_ids.get(iri).copied()
    }

    /// Returns the string form of an interned IRI.
    pub fn iri(&self, id: IriId) -> &str {
        &self.iris[id.index()]
    }

    /// Returns an interned literal.
    pub fn literal(&self, id: LiteralId) -> &Literal {
        &self.literals[id.index()]
    }

    /// Number of distinct IRIs interned so far.
    pub fn iri_count(&self) -> usize {
        self.iris.len()
    }

    /// Number of distinct literals interned so far.
    pub fn literal_count(&self) -> usize {
        self.literals.len()
    }

    /// Iterates over all interned IRIs in id order.
    pub fn iris(&self) -> impl Iterator<Item = (IriId, &str)> {
        self.iris
            .iter()
            .enumerate()
            .map(|(i, s)| (IriId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut dict = Dictionary::new();
        let a = dict.intern_iri("http://example.org/a");
        let b = dict.intern_iri("http://example.org/b");
        let a_again = dict.intern_iri("http://example.org/a");
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        assert_eq!(dict.iri_count(), 2);
        assert_eq!(dict.iri(a), "http://example.org/a");
        assert_eq!(dict.iri_id("http://example.org/b"), Some(b));
        assert_eq!(dict.iri_id("http://example.org/zzz"), None);
    }

    #[test]
    fn literal_interning_distinguishes_forms() {
        let mut dict = Dictionary::new();
        let plain = dict.intern_literal(Literal::simple("5"));
        let typed = dict.intern_literal(Literal::typed(
            "5",
            "http://www.w3.org/2001/XMLSchema#integer",
        ));
        let lang = dict.intern_literal(Literal::lang("five", "en"));
        assert_ne!(plain, typed);
        assert_ne!(plain, lang);
        assert_eq!(dict.literal_count(), 3);
        assert_eq!(dict.literal(plain).lexical, "5");
        let plain_again = dict.intern_literal(Literal::simple("5"));
        assert_eq!(plain, plain_again);
    }

    #[test]
    fn literal_display_forms() {
        assert_eq!(Literal::simple("x").to_string(), "\"x\"");
        assert_eq!(
            Literal::typed("5", "http://t").to_string(),
            "\"5\"^^<http://t>"
        );
        assert_eq!(Literal::lang("chat", "fr").to_string(), "\"chat\"@fr");
    }

    #[test]
    fn iris_iterates_in_id_order() {
        let mut dict = Dictionary::new();
        dict.intern_iri("http://b");
        dict.intern_iri("http://a");
        let listed: Vec<&str> = dict.iris().map(|(_, s)| s).collect();
        assert_eq!(listed, vec!["http://b", "http://a"]);
    }
}
