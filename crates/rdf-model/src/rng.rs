//! A small deterministic pseudo-random number generator.
//!
//! The synthetic dataset generators and workload samplers across the
//! workspace need seeded, reproducible randomness but nothing
//! cryptographic. This module provides a pure-std xoshiro256** generator
//! (public domain algorithm by Blackman & Vigna) with the few sampling
//! helpers the workspace uses, so offline builds carry no external `rand`
//! dependency. Sequences are stable across platforms and releases: seeded
//! experiments are reproducible byte-for-byte.

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256** generator.
///
/// The name mirrors the external `rand` crate's `StdRng` so call sites read
/// conventionally, but unlike that type the stream here is guaranteed stable
/// forever (it is part of the workspace's reproducibility contract).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed, expanding it with splitmix64
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut splitmix = seed;
        let mut next = || {
            splitmix = splitmix.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection, avoiding modulo bias. `bound` must be non-zero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let raw = self.next_u64();
            let wide = (raw as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform sample from the range. Panics on an empty range, matching
    /// the external `rand` crate's contract.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `probability` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, probability: f64) -> bool {
        self.next_f64() < probability
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

/// Range shapes [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.bounded_u64(u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        start + rng.next_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = rng.gen_range(2.0f64..=2.0);
            assert_eq!(g, 2.0);
        }
    }

    #[test]
    fn bounded_sampling_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(values, sorted, "a 50-element shuffle should move something");
    }
}
