//! Property-based tests for the RDF model crate.

// Needs the external `proptest` crate: compiled only with `--features proptest`
// (unavailable in offline builds; see the manifest note).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use strudel_rdf::prelude::*;

/// Strategy producing a "safe" IRI (no characters needing escapes).
fn iri_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| format!("http://example.org/{s}"))
}

/// Strategy producing arbitrary literal lexical forms including characters
/// that require escaping in N-Triples.
fn lexical_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~àéπ\\t\\n\"\\\\]{0,20}").expect("valid regex")
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    (lexical_strategy(), 0..3u8, "[a-z]{2}").prop_map(|(lex, kind, lang)| match kind {
        0 => Literal::simple(lex),
        1 => Literal::typed(lex, "http://www.w3.org/2001/XMLSchema#string"),
        _ => Literal::lang(lex, lang),
    })
}

/// A random triple: IRI subject/predicate, IRI-or-literal object.
fn triple_strategy() -> impl Strategy<Value = (String, String, Result<String, Literal>)> {
    (
        iri_strategy(),
        iri_strategy(),
        prop_oneof![
            iri_strategy().prop_map(Ok),
            literal_strategy().prop_map(Err)
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialize → parse is the identity on the triple set.
    #[test]
    fn ntriples_round_trip(triples in proptest::collection::vec(triple_strategy(), 0..40)) {
        let mut graph = Graph::new();
        for (s, p, o) in &triples {
            match o {
                Ok(iri) => graph.insert_iri_triple(s, p, iri),
                Err(lit) => graph.insert_literal_triple(s, p, lit.clone()),
            };
        }
        let text = write_ntriples(&graph);
        let reparsed = parse_ntriples(&text).expect("serializer output must parse");
        prop_assert_eq!(reparsed.len(), graph.len());
        prop_assert_eq!(reparsed.subject_count(), graph.subject_count());
        prop_assert_eq!(reparsed.property_count(), graph.property_count());
        // The set of (s, p, object-kind) patterns must survive; compare via a
        // canonical re-serialization.
        let text2 = write_ntriples(&reparsed);
        let mut lines1: Vec<&str> = text.lines().collect();
        let mut lines2: Vec<&str> = text2.lines().collect();
        lines1.sort_unstable();
        lines2.sort_unstable();
        prop_assert_eq!(lines1, lines2);
    }

    /// The signature view always conserves subjects, ones and column counts.
    #[test]
    fn signature_view_conserves_counts(rows in proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), 6..7), 1..60)
    ) {
        let properties: Vec<String> = (0..6).map(|i| format!("http://example.org/p{i}")).collect();
        let subjects: Vec<String> = (0..rows.len()).map(|i| format!("http://example.org/s{i}")).collect();
        let bit_rows: Vec<BitSet> = rows
            .iter()
            .map(|row| {
                let idx: Vec<usize> = row
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(i))
                    .collect();
                BitSet::from_indexes(6, &idx)
            })
            .collect();
        let matrix = PropertyStructureView::from_rows(properties, subjects, bit_rows).unwrap();
        let view = SignatureView::from_matrix(&matrix);

        prop_assert_eq!(view.subject_count(), matrix.subject_count());
        prop_assert_eq!(view.ones(), matrix.ones());
        for col in 0..matrix.property_count() {
            prop_assert_eq!(view.property_subject_count(col), matrix.column_count(col));
        }
        // Entries are sorted by descending count.
        let counts: Vec<usize> = view.entries().iter().map(|e| e.count).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(counts, sorted);
        // Round trip through the expanded matrix preserves the signature multiset.
        let expanded = view.to_matrix();
        let back = SignatureView::from_matrix(&expanded);
        prop_assert_eq!(back.signature_count(), view.signature_count());
        prop_assert_eq!(back.subject_count(), view.subject_count());
    }

    /// Graph membership queries agree with the matrix view.
    #[test]
    fn matrix_agrees_with_graph(triples in proptest::collection::vec(
        (0..8u8, 0..5u8), 1..50)
    ) {
        let mut graph = Graph::new();
        for &(s, p) in &triples {
            graph.insert_literal_triple(
                &format!("http://example.org/s{s}"),
                &format!("http://example.org/p{p}"),
                Literal::simple("v"),
            );
        }
        let matrix = PropertyStructureView::from_graph(&graph, true);
        for (row, subject) in matrix.subjects().iter().enumerate() {
            for (col, property) in matrix.properties().iter().enumerate() {
                let sid = graph.dictionary().iri_id(subject).unwrap();
                let pid = graph.dictionary().iri_id(property).unwrap();
                prop_assert_eq!(matrix.value(row, col), graph.has_property(sid, pid));
            }
        }
    }
}
