//! The schema-guided layout advisor.
//!
//! This module closes the loop the paper's introduction opens: storage
//! layouts "use schemas to guide the decision making", so an accurate account
//! of structuredness should translate into better physical designs. The
//! advisor:
//!
//! 1. measures the structuredness of the dataset under a chosen rule,
//! 2. discovers a sort refinement (highest θ for a fixed k, or lowest k for a
//!    fixed θ) with any [`RefinementEngine`],
//! 3. builds the three layouts — triple store, horizontal, property tables
//!    derived from the refinement — and runs the same workload over them,
//! 4. reports footprints, per-query-class costs, and a recommendation.
//!
//! It also reports the structuredness of each implicit sort next to the fill
//! factor of its table, making the σ ⇄ physical-design connection (the
//! paper's Section 9 future work) measurable.

use std::fmt;

use strudel_core::engine::RefinementEngine;
use strudel_core::refinement::SortRefinement;
use strudel_core::search::{highest_theta, lowest_k, HighestThetaOptions, SweepDirection};
use strudel_core::sigma::SigmaSpec;
use strudel_rdf::graph::Graph;
use strudel_rdf::matrix::PropertyStructureView;
use strudel_rdf::signature::SignatureView;
use strudel_rules::prelude::Ratio;

use crate::error::StorageError;
use crate::layout::{
    HorizontalLayout, Layout, LayoutConfig, PropertyTablesLayout, TripleStoreLayout,
};
use crate::workload::{generate_workload, run_workload, LayoutWorkloadSummary, WorkloadConfig};

/// What the advisor should optimise the refinement for.
#[derive(Clone, Debug)]
pub enum AdvisorObjective {
    /// Find the highest-θ refinement with at most `k` implicit sorts.
    HighestTheta {
        /// Maximum number of implicit sorts (property tables).
        k: usize,
    },
    /// Find the smallest number of implicit sorts meeting the threshold.
    LowestK {
        /// The structuredness threshold each implicit sort must meet.
        theta: Ratio,
        /// Upper bound on the number of sorts to try (`None` = number of
        /// signatures).
        max_k: Option<usize>,
    },
}

/// Advisor configuration.
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    /// The structuredness function guiding the refinement.
    pub spec: SigmaSpec,
    /// The refinement objective.
    pub objective: AdvisorObjective,
    /// Layout construction options (cost model, rdf:type handling).
    pub layout: LayoutConfig,
    /// The workload used to compare layouts.
    pub workload: WorkloadConfig,
}

impl AdvisorConfig {
    /// A sensible default: σ_Cov, at most `k` property tables, rdf:type
    /// excluded, the default workload mix.
    pub fn coverage_with_k(k: usize) -> Self {
        AdvisorConfig {
            spec: SigmaSpec::Coverage,
            objective: AdvisorObjective::HighestTheta { k },
            layout: LayoutConfig::excluding_rdf_type(),
            workload: WorkloadConfig::default(),
        }
    }
}

/// Structuredness and fill factor of one implicit sort's table.
#[derive(Clone, Debug)]
pub struct SortTableReport {
    /// The table name.
    pub table: String,
    /// Number of subjects (rows).
    pub subjects: usize,
    /// Number of property columns.
    pub columns: usize,
    /// σ of the implicit sort under the advisor's rule.
    pub sigma: Ratio,
    /// Fill factor of the materialised table (`None` for an empty table).
    pub fill_factor: Option<f64>,
}

/// The advisor's output.
#[derive(Clone, Debug)]
pub struct AdvisorReport {
    /// The rule used.
    pub spec: SigmaSpec,
    /// σ of the whole dataset under the rule.
    pub dataset_sigma: Ratio,
    /// The refinement the property-table layout is derived from.
    pub refinement: SortRefinement,
    /// Whether the refinement search exhausted its budget before deciding.
    pub hit_budget: bool,
    /// Per-sort structuredness vs. table fill factor.
    pub sort_tables: Vec<SortTableReport>,
    /// Workload summaries, one per layout (triple store, horizontal,
    /// property tables — in that order).
    pub summaries: Vec<LayoutWorkloadSummary>,
    /// Name of the layout with the fewest total pages read.
    pub recommended: String,
}

impl AdvisorReport {
    /// The workload summary of a layout, by name.
    pub fn summary(&self, layout: &str) -> Option<&LayoutWorkloadSummary> {
        self.summaries.iter().find(|s| s.layout == layout)
    }
}

impl fmt::Display for AdvisorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "layout advisor — rule {}, dataset σ = {:.3}",
            self.spec.name(),
            self.dataset_sigma.to_f64()
        )?;
        writeln!(
            f,
            "refinement: {} implicit sort(s), min σ = {:.3}{}",
            self.refinement.k(),
            self.refinement.min_sigma().to_f64(),
            if self.hit_budget {
                " (budget-limited)"
            } else {
                ""
            }
        )?;
        for sort in &self.sort_tables {
            writeln!(
                f,
                "  {}: {} subjects, {} columns, σ = {:.3}, fill = {}",
                sort.table,
                sort.subjects,
                sort.columns,
                sort.sigma.to_f64(),
                sort.fill_factor
                    .map_or_else(|| "n/a".to_owned(), |fill| format!("{fill:.3}")),
            )?;
        }
        writeln!(
            f,
            "workload of {} queries:",
            self.summaries.first().map_or(0, |s| s.queries)
        )?;
        for summary in &self.summaries {
            writeln!(
                f,
                "  {:<16} storage: {:>10} bytes ({:>4} pages, fill {})  reads: {:>6} pages, {:>8} cells",
                summary.layout,
                summary.storage.bytes,
                summary.storage.pages,
                summary
                    .storage
                    .fill_factor()
                    .map_or_else(|| "n/a".to_owned(), |fill| format!("{fill:.3}")),
                summary.total.pages_read,
                summary.total.cells_scanned,
            )?;
        }
        write!(f, "recommended layout: {}", self.recommended)
    }
}

/// Runs the advisor on a graph (optionally restricted to one explicit sort).
pub fn advise(
    graph: &Graph,
    sort: Option<&str>,
    config: &AdvisorConfig,
    engine: &dyn RefinementEngine,
) -> Result<AdvisorReport, StorageError> {
    // When a sort is given, every step (refinement, layouts, workload) runs
    // over its typed subgraph so the comparison stays apples-to-apples.
    let typed;
    let graph = match sort {
        Some(sort_iri) => {
            typed = graph.typed_subgraph(sort_iri);
            &typed
        }
        None => graph,
    };
    let matrix = PropertyStructureView::from_graph(graph, config.layout.exclude_rdf_type);
    if matrix.subject_count() == 0 {
        return Err(StorageError::EmptyDataset);
    }
    let view = SignatureView::from_matrix(&matrix);
    let dataset_sigma = config.spec.evaluate(&view)?;

    let (refinement, hit_budget) = match &config.objective {
        AdvisorObjective::HighestTheta { k } => {
            let result = highest_theta(
                &view,
                &config.spec,
                *k,
                engine,
                &HighestThetaOptions::default(),
            )?;
            let refinement = result.refinement.ok_or_else(|| {
                StorageError::InconsistentRefinement(
                    "the highest-θ search produced no refinement".to_owned(),
                )
            })?;
            (refinement, result.hit_budget)
        }
        AdvisorObjective::LowestK { theta, max_k } => {
            let result = lowest_k(
                &view,
                &config.spec,
                *theta,
                engine,
                SweepDirection::Upward,
                *max_k,
            )?;
            let refinement = result.refinement.ok_or_else(|| {
                StorageError::InconsistentRefinement(format!(
                    "no refinement meets θ = {theta} within the allowed number of sorts"
                ))
            })?;
            (refinement, result.hit_budget)
        }
    };

    let triple_store = TripleStoreLayout::build(graph, &config.layout);
    let horizontal = HorizontalLayout::build(graph, &config.layout);
    let property_tables =
        PropertyTablesLayout::from_refinement(graph, &matrix, &view, &refinement, &config.layout)?;

    let mut sort_tables = Vec::new();
    for (sort, table) in refinement.sorts.iter().zip(property_tables.tables()) {
        let stats = table.storage_stats(&config.layout.cost_model);
        sort_tables.push(SortTableReport {
            table: table.name().to_owned(),
            subjects: table.row_count(),
            columns: table.column_count(),
            sigma: sort.sigma,
            fill_factor: stats.fill_factor(),
        });
    }

    let queries = generate_workload(graph, &config.workload);
    let layouts: [&dyn Layout; 3] = [&triple_store, &horizontal, &property_tables];
    let summaries = run_workload(&layouts, &queries)?;
    let recommended = summaries
        .iter()
        .min_by_key(|summary| (summary.total.pages_read, summary.storage.pages))
        .map(|summary| summary.layout.clone())
        .unwrap_or_else(|| "triple store".to_owned());

    Ok(AdvisorReport {
        spec: config.spec.clone(),
        dataset_sigma,
        refinement,
        hit_budget,
        sort_tables,
        summaries,
        recommended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_core::engine::HybridEngine;
    use strudel_rdf::term::Literal;

    fn persons_graph() -> Graph {
        let mut graph = Graph::new();
        // 12 "alive" persons with name + birthDate, 4 "dead" persons with all
        // four properties: a miniature DBpedia Persons.
        for idx in 0..12 {
            let subject = format!("http://ex/alive{idx}");
            graph.insert_type(&subject, "http://ex/Person");
            graph.insert_literal_triple(&subject, "http://ex/name", Literal::simple("x"));
            graph.insert_literal_triple(&subject, "http://ex/birthDate", Literal::simple("1990"));
        }
        for idx in 0..4 {
            let subject = format!("http://ex/dead{idx}");
            graph.insert_type(&subject, "http://ex/Person");
            graph.insert_literal_triple(&subject, "http://ex/name", Literal::simple("y"));
            graph.insert_literal_triple(&subject, "http://ex/birthDate", Literal::simple("1900"));
            graph.insert_literal_triple(&subject, "http://ex/deathDate", Literal::simple("1980"));
            graph.insert_literal_triple(&subject, "http://ex/deathPlace", Literal::simple("z"));
        }
        graph
    }

    #[test]
    fn advisor_recommends_a_layout_and_reports_consistent_sorts() {
        let graph = persons_graph();
        let config = AdvisorConfig::coverage_with_k(2);
        let engine = HybridEngine::new();
        let report = advise(&graph, Some("http://ex/Person"), &config, &engine).unwrap();

        assert_eq!(report.refinement.k(), 2);
        assert_eq!(report.summaries.len(), 3);
        assert!(!report.recommended.is_empty());
        // The refinement splits alive/dead perfectly, so every per-sort table
        // is fully dense and per-sort σ_Cov is 1.
        for sort in &report.sort_tables {
            assert_eq!(sort.fill_factor, Some(1.0));
            assert_eq!(sort.sigma, Ratio::ONE);
        }
        // The display renders without panicking and mentions every layout.
        let text = report.to_string();
        assert!(text.contains("triple store"));
        assert!(text.contains("horizontal"));
        assert!(text.contains("property tables"));
        assert!(report.summary("horizontal").is_some());
        assert!(report.summary("does not exist").is_none());
    }

    #[test]
    fn lowest_k_objective_is_supported() {
        let graph = persons_graph();
        let config = AdvisorConfig {
            spec: SigmaSpec::Coverage,
            objective: AdvisorObjective::LowestK {
                theta: Ratio::new(9, 10),
                max_k: Some(4),
            },
            layout: LayoutConfig::excluding_rdf_type(),
            workload: WorkloadConfig {
                subject_lookups: 4,
                value_lookups: 4,
                property_scans: 2,
                star_joins: 2,
                ..WorkloadConfig::default()
            },
        };
        let engine = HybridEngine::new();
        let report = advise(&graph, Some("http://ex/Person"), &config, &engine).unwrap();
        assert!(report.refinement.min_sigma() >= Ratio::new(9, 10));
        assert!(report.refinement.k() <= 4);
    }

    #[test]
    fn empty_sorts_are_rejected() {
        let graph = Graph::new();
        let config = AdvisorConfig::coverage_with_k(2);
        let engine = HybridEngine::new();
        let err = advise(&graph, None, &config, &engine).unwrap_err();
        assert!(matches!(err, StorageError::EmptyDataset));
    }
}
