//! Workload generation and execution across layouts.
//!
//! A workload is a mix of the four query classes drawn deterministically
//! (seeded) from the dataset itself: lookups target real subjects, scans and
//! star joins target real properties. Running the same workload over several
//! layouts produces directly comparable [`QueryCost`] totals — and the runner
//! cross-checks that every layout returned the same answers, so the numbers
//! mean something.

use std::collections::BTreeMap;
use strudel_rdf::rng::StdRng;

use strudel_rdf::graph::Graph;
use strudel_rdf::vocab::RDF_TYPE;

use crate::cost::{QueryCost, StorageStats};
use crate::error::StorageError;
use crate::layout::Layout;
use crate::query::{Query, QueryKind};

/// How many queries of each class to generate.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of whole-entity lookups.
    pub subject_lookups: usize,
    /// Number of single-cell lookups.
    pub value_lookups: usize,
    /// Number of property scans.
    pub property_scans: usize,
    /// Number of star joins.
    pub star_joins: usize,
    /// Number of properties joined per star join (at least 2).
    pub star_join_arity: usize,
    /// Seed of the deterministic sampler.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            subject_lookups: 20,
            value_lookups: 20,
            property_scans: 10,
            star_joins: 10,
            star_join_arity: 2,
            seed: 2014,
        }
    }
}

/// Generates a deterministic workload over the subjects and properties of the
/// graph. Returns an empty workload for an empty graph.
pub fn generate_workload(graph: &Graph, config: &WorkloadConfig) -> Vec<Query> {
    let subjects: Vec<String> = graph
        .subjects()
        .into_iter()
        .map(|s| graph.iri(s).to_owned())
        .collect();
    let properties: Vec<String> = graph
        .properties()
        .into_iter()
        .map(|p| graph.iri(p).to_owned())
        .filter(|p| p != RDF_TYPE)
        .collect();
    if subjects.is_empty() || properties.is_empty() {
        return Vec::new();
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::new();
    for _ in 0..config.subject_lookups {
        let subject = subjects[rng.gen_range(0..subjects.len())].clone();
        queries.push(Query::SubjectLookup { subject });
    }
    for _ in 0..config.value_lookups {
        let subject = subjects[rng.gen_range(0..subjects.len())].clone();
        let property = properties[rng.gen_range(0..properties.len())].clone();
        queries.push(Query::ValueLookup { subject, property });
    }
    for _ in 0..config.property_scans {
        let property = properties[rng.gen_range(0..properties.len())].clone();
        queries.push(Query::PropertyScan { property });
    }
    let arity = config.star_join_arity.max(2).min(properties.len());
    for _ in 0..config.star_joins {
        let mut chosen = properties.clone();
        rng.shuffle(&mut chosen);
        chosen.truncate(arity);
        chosen.sort();
        queries.push(Query::StarJoin { properties: chosen });
    }
    queries
}

/// The cost of one layout over a whole workload.
#[derive(Clone, Debug)]
pub struct LayoutWorkloadSummary {
    /// The layout name.
    pub layout: String,
    /// The static footprint of the layout.
    pub storage: StorageStats,
    /// Total work across all queries.
    pub total: QueryCost,
    /// Work broken down per query class.
    pub by_kind: BTreeMap<QueryKind, QueryCost>,
    /// Number of queries executed.
    pub queries: usize,
}

/// Runs the workload over every layout, cross-checking answers.
///
/// The first layout is the reference; any other layout disagreeing with it on
/// any query aborts the run with [`StorageError::AnswerMismatch`].
pub fn run_workload(
    layouts: &[&dyn Layout],
    queries: &[Query],
) -> Result<Vec<LayoutWorkloadSummary>, StorageError> {
    let mut summaries: Vec<LayoutWorkloadSummary> = layouts
        .iter()
        .map(|layout| LayoutWorkloadSummary {
            layout: layout.name().to_owned(),
            storage: layout.storage_stats(),
            total: QueryCost::default(),
            by_kind: BTreeMap::new(),
            queries: queries.len(),
        })
        .collect();

    for query in queries {
        let mut reference = None;
        for (idx, layout) in layouts.iter().enumerate() {
            let (output, cost) = layout.execute(query);
            summaries[idx].total += cost;
            *summaries[idx].by_kind.entry(query.kind()).or_default() += cost;
            match &reference {
                None => reference = Some(output),
                Some(expected) => {
                    if expected != &output {
                        return Err(StorageError::AnswerMismatch {
                            query: query.label(),
                            reference: layouts[0].name().to_owned(),
                            candidate: layout.name().to_owned(),
                        });
                    }
                }
            }
        }
    }
    Ok(summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QueryCost;
    use crate::layout::{HorizontalLayout, LayoutConfig, TripleStoreLayout};
    use crate::query::QueryOutput;
    use strudel_rdf::term::Literal;

    fn sample_graph() -> Graph {
        let mut graph = Graph::new();
        for (subject, properties) in [
            ("http://ex/a", vec!["name", "birthDate", "deathDate"]),
            ("http://ex/b", vec!["name", "birthDate"]),
            ("http://ex/c", vec!["name"]),
            ("http://ex/d", vec!["name", "deathDate"]),
        ] {
            graph.insert_type(subject, "http://ex/Person");
            for property in properties {
                graph.insert_literal_triple(
                    subject,
                    &format!("http://ex/{property}"),
                    Literal::simple(format!("{property}-of-{subject}")),
                );
            }
        }
        graph
    }

    #[test]
    fn workload_generation_is_deterministic_and_respects_counts() {
        let graph = sample_graph();
        let config = WorkloadConfig::default();
        let a = generate_workload(&graph, &config);
        let b = generate_workload(&graph, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20 + 20 + 10 + 10);
        assert_eq!(
            a.iter().filter(|q| q.kind() == QueryKind::StarJoin).count(),
            10
        );
        // rdf:type is never a workload property.
        for query in &a {
            if let Query::PropertyScan { property } = query {
                assert_ne!(property, RDF_TYPE);
            }
        }
    }

    #[test]
    fn empty_graphs_produce_empty_workloads() {
        let graph = Graph::new();
        assert!(generate_workload(&graph, &WorkloadConfig::default()).is_empty());
    }

    #[test]
    fn run_workload_compares_layouts_and_totals_add_up() {
        let graph = sample_graph();
        let config = LayoutConfig::excluding_rdf_type();
        let triple_store = TripleStoreLayout::build(&graph, &config);
        let horizontal = HorizontalLayout::build(&graph, &config);
        let queries = generate_workload(
            &graph,
            &WorkloadConfig {
                subject_lookups: 5,
                value_lookups: 5,
                property_scans: 3,
                star_joins: 3,
                ..WorkloadConfig::default()
            },
        );
        let summaries = run_workload(&[&triple_store, &horizontal], &queries).unwrap();
        assert_eq!(summaries.len(), 2);
        for summary in &summaries {
            let per_kind_total = summary
                .by_kind
                .values()
                .fold(QueryCost::default(), |acc, cost| acc + *cost);
            assert_eq!(per_kind_total, summary.total);
            assert_eq!(summary.queries, queries.len());
        }
    }

    #[test]
    fn answer_mismatches_are_reported() {
        struct BrokenLayout;
        impl Layout for BrokenLayout {
            fn name(&self) -> &str {
                "broken"
            }
            fn storage_stats(&self) -> StorageStats {
                StorageStats::default()
            }
            fn execute(&self, _query: &Query) -> (QueryOutput, QueryCost) {
                (QueryOutput::new(), QueryCost::default())
            }
        }

        let graph = sample_graph();
        let config = LayoutConfig::excluding_rdf_type();
        let triple_store = TripleStoreLayout::build(&graph, &config);
        let broken = BrokenLayout;
        let queries = vec![Query::PropertyScan {
            property: "http://ex/name".into(),
        }];
        let err = run_workload(&[&triple_store, &broken], &queries).unwrap_err();
        assert!(matches!(err, StorageError::AnswerMismatch { .. }));
        assert!(err.to_string().contains("broken"));
    }
}
