//! Error types of the storage layer.

use std::fmt;

use strudel_core::error::RefineError;
use strudel_rules::error::EvalError;

/// Errors raised while building layouts or advising on physical design.
#[derive(Debug)]
pub enum StorageError {
    /// The graph (or the requested sort) contains no subjects, so there is
    /// nothing to lay out.
    EmptyDataset,
    /// A refinement references a signature the dataset does not contain, or
    /// does not cover every signature (it would leave orphan subjects).
    InconsistentRefinement(String),
    /// A subject row of the property-structure view does not correspond to
    /// any signature entry of the view the refinement was computed on.
    UnknownSignatureRow(String),
    /// The layout advisor needs either a target `k` or a threshold θ.
    MissingObjective,
    /// Two layouts returned different answers for the same query — a
    /// correctness bug in a layout, surfaced instead of silently producing a
    /// meaningless cost comparison.
    AnswerMismatch {
        /// The query label.
        query: String,
        /// The layout whose answer is taken as reference.
        reference: String,
        /// The disagreeing layout.
        candidate: String,
    },
    /// The underlying refinement search failed.
    Refine(RefineError),
    /// Evaluating a structuredness function failed.
    Eval(EvalError),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::EmptyDataset => {
                write!(f, "the dataset contains no subjects to lay out")
            }
            StorageError::InconsistentRefinement(detail) => {
                write!(f, "refinement is inconsistent with the dataset: {detail}")
            }
            StorageError::UnknownSignatureRow(subject) => write!(
                f,
                "subject '{subject}' has a signature the refinement does not know about"
            ),
            StorageError::MissingObjective => write!(
                f,
                "the layout advisor needs a target number of sorts (k) or a threshold (θ)"
            ),
            StorageError::AnswerMismatch {
                query,
                reference,
                candidate,
            } => write!(
                f,
                "layouts '{reference}' and '{candidate}' disagree on query {query}"
            ),
            StorageError::Refine(err) => write!(f, "refinement search failed: {err}"),
            StorageError::Eval(err) => write!(f, "structuredness evaluation failed: {err}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Refine(err) => Some(err),
            StorageError::Eval(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RefineError> for StorageError {
    fn from(err: RefineError) -> Self {
        StorageError::Refine(err)
    }
}

impl From<EvalError> for StorageError {
    fn from(err: EvalError) -> Self {
        StorageError::Eval(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let messages = [
            StorageError::EmptyDataset.to_string(),
            StorageError::InconsistentRefinement("sig 3 unassigned".into()).to_string(),
            StorageError::UnknownSignatureRow("http://ex/s".into()).to_string(),
            StorageError::MissingObjective.to_string(),
        ];
        assert!(messages[0].contains("no subjects"));
        assert!(messages[1].contains("sig 3 unassigned"));
        assert!(messages[2].contains("http://ex/s"));
        assert!(messages[3].contains("k"));
    }
}
