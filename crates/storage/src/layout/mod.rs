//! Physical layouts for an RDF dataset.
//!
//! Three layouts span the design space the paper's introduction refers to:
//!
//! * [`TripleStoreLayout`] — the "vertical" representation: one three-column
//!   table of `(subject, property, value)` rows with subject and property
//!   indexes. Agnostic to structuredness; entity lookups pay one probe plus
//!   scattered rows.
//! * [`HorizontalLayout`] — the horizontal database of Pan & Heflin [11]
//!   referenced in Section 2.1: a single wide table with one row per subject
//!   and one column per property. Entity lookups are one row, but every
//!   missing property is a stored NULL — its fill factor *is* σ_Cov.
//! * [`PropertyTablesLayout`] — one wide table per implicit sort of a sort
//!   refinement (or per signature). The layout the paper's sort refinements
//!   are meant to enable: each table is dense because its sort is highly
//!   structured.
//!
//! All layouts answer the same [`Query`](crate::query::Query) classes with
//! identical results and report their work through the shared cost model, so
//! the effect of structuredness on physical design can be measured directly.

mod horizontal;
mod property_tables;
mod triple_store;

pub use horizontal::HorizontalLayout;
pub use property_tables::PropertyTablesLayout;
pub use triple_store::TripleStoreLayout;

use crate::cost::{CostModel, QueryCost, StorageStats};
use crate::query::{Query, QueryOutput};

/// Options shared by all layout builders.
#[derive(Clone, Debug, Default)]
pub struct LayoutConfig {
    /// Drop `rdf:type` triples before laying the data out (the paper's
    /// dataset descriptions exclude the type property). Applied uniformly so
    /// query answers stay comparable across layouts.
    pub exclude_rdf_type: bool,
    /// The cost model used for storage and query accounting.
    pub cost_model: CostModel,
}

impl LayoutConfig {
    /// A configuration that excludes `rdf:type`, matching the paper's views.
    pub fn excluding_rdf_type() -> Self {
        LayoutConfig {
            exclude_rdf_type: true,
            cost_model: CostModel::default(),
        }
    }
}

/// A physical layout of an RDF dataset that can answer the workload queries.
pub trait Layout {
    /// A short name used in reports ("triple store", "horizontal", …).
    fn name(&self) -> &str;

    /// The static footprint of the layout.
    fn storage_stats(&self) -> StorageStats;

    /// Answers a query, reporting the work done.
    fn execute(&self, query: &Query) -> (QueryOutput, QueryCost);
}

/// Rounds bytes up to pages with the layout's cost model, charging at least
/// one page whenever any byte was read.
pub(crate) fn pages_for_read(model: &CostModel, bytes: usize) -> usize {
    model.pages_for_bytes(bytes).max(usize::from(bytes > 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_config_defaults() {
        let config = LayoutConfig::default();
        assert!(!config.exclude_rdf_type);
        let excluding = LayoutConfig::excluding_rdf_type();
        assert!(excluding.exclude_rdf_type);
        assert_eq!(excluding.cost_model, CostModel::default());
    }

    #[test]
    fn page_rounding_charges_at_least_one_page() {
        let model = CostModel::default();
        assert_eq!(pages_for_read(&model, 0), 0);
        assert_eq!(pages_for_read(&model, 1), 1);
        assert_eq!(pages_for_read(&model, model.page_size + 1), 2);
    }
}
