//! The horizontal layout: one wide table over every subject and property.

use strudel_rdf::graph::Graph;
use strudel_rdf::vocab::RDF_TYPE;

use crate::cost::{CostModel, QueryCost, StorageStats};
use crate::layout::{pages_for_read, Layout, LayoutConfig};
use crate::query::{Query, QueryOutput};
use crate::table::WideTable;
use crate::value::Value;

/// The horizontal database of Section 2.1: a single wide, NULL-heavy table.
///
/// The table is a row store: any query that is not a point lookup has to read
/// every row in full, which is exactly why its fill factor (= σ_Cov of the
/// dataset) matters.
#[derive(Clone, Debug)]
pub struct HorizontalLayout {
    table: WideTable,
    stats: StorageStats,
    model: CostModel,
}

impl HorizontalLayout {
    /// Lays the graph out as one wide table.
    pub fn build(graph: &Graph, config: &LayoutConfig) -> Self {
        let mut columns: Vec<String> = graph
            .properties()
            .into_iter()
            .map(|p| graph.iri(p).to_owned())
            .filter(|p| !(config.exclude_rdf_type && p == RDF_TYPE))
            .collect();
        columns.sort();
        let mut table = WideTable::new("horizontal", columns);
        for subject in graph.subjects() {
            let subject_iri = graph.iri(subject).to_owned();
            let row = table.upsert_row(&subject_iri);
            for triple in graph.entity(subject) {
                let property = graph.iri(triple.predicate);
                let Some(column) = table.column_of(property) else {
                    continue;
                };
                let value = Value::from_object(graph, triple.object);
                table.push_value(row, column, value);
            }
        }
        let model = config.cost_model.clone();
        let stats = table.storage_stats(&model);
        HorizontalLayout {
            table,
            stats,
            model,
        }
    }

    /// The underlying wide table.
    pub fn table(&self) -> &WideTable {
        &self.table
    }

    fn full_scan_cost(&self, cells_per_row: usize) -> QueryCost {
        QueryCost {
            rows_scanned: self.table.row_count(),
            cells_scanned: self.table.row_count() * cells_per_row,
            bytes_read: self.stats.bytes,
            pages_read: self.stats.pages,
            index_lookups: 0,
            tables_touched: 1,
        }
    }

    fn row_lookup_cost(&self, row: usize, cells: usize) -> QueryCost {
        let bytes = self.table.row_bytes(row, &self.model);
        QueryCost {
            rows_scanned: 1,
            cells_scanned: cells,
            bytes_read: bytes,
            pages_read: pages_for_read(&self.model, bytes),
            index_lookups: 1,
            tables_touched: 1,
        }
    }
}

impl Layout for HorizontalLayout {
    fn name(&self) -> &str {
        "horizontal"
    }

    fn storage_stats(&self) -> StorageStats {
        self.stats
    }

    fn execute(&self, query: &Query) -> (QueryOutput, QueryCost) {
        let mut output = QueryOutput::new();
        match query {
            Query::SubjectLookup { subject } => {
                let Some(row) = self.table.row_of(subject) else {
                    return (
                        output,
                        QueryCost {
                            index_lookups: 1,
                            ..QueryCost::default()
                        },
                    );
                };
                let cost = self.row_lookup_cost(row, self.table.column_count());
                for (column, label) in self.table.columns().iter().enumerate() {
                    for value in self.table.cell(row, column) {
                        output.push(vec![label.clone(), value.to_string()]);
                    }
                }
                (output, cost)
            }
            Query::ValueLookup { subject, property } => {
                let Some(row) = self.table.row_of(subject) else {
                    return (
                        output,
                        QueryCost {
                            index_lookups: 1,
                            ..QueryCost::default()
                        },
                    );
                };
                let Some(column) = self.table.column_of(property) else {
                    return (
                        output,
                        QueryCost {
                            index_lookups: 1,
                            ..QueryCost::default()
                        },
                    );
                };
                let cost = self.row_lookup_cost(row, 1);
                for value in self.table.cell(row, column) {
                    output.push(vec![value.to_string()]);
                }
                (output, cost)
            }
            Query::PropertyScan { property } => {
                let Some(column) = self.table.column_of(property) else {
                    return (output, QueryCost::default());
                };
                let cost = self.full_scan_cost(1);
                for (row, subject) in self.table.rows() {
                    for value in self.table.cell(row, column) {
                        output.push(vec![subject.to_owned(), value.to_string()]);
                    }
                }
                (output, cost)
            }
            Query::StarJoin { properties } => {
                if properties.is_empty() {
                    return (output, QueryCost::default());
                }
                let columns: Vec<Option<usize>> = properties
                    .iter()
                    .map(|property| self.table.column_of(property))
                    .collect();
                if columns.iter().any(Option::is_none) {
                    // A property absent from the dataset: no subject can match,
                    // and the executor knows it from the catalog alone.
                    return (output, QueryCost::default());
                }
                let cost = self.full_scan_cost(columns.len());
                for (row, subject) in self.table.rows() {
                    let all_present = columns
                        .iter()
                        .all(|column| !self.table.cell(row, column.unwrap()).is_empty());
                    if all_present {
                        output.push(vec![subject.to_owned()]);
                    }
                }
                (output, cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_rdf::term::Literal;

    fn sample_graph() -> Graph {
        let mut graph = Graph::new();
        for (subject, properties) in [
            (
                "http://ex/ada",
                vec![("name", "Ada"), ("deathDate", "1852")],
            ),
            ("http://ex/tim", vec![("name", "Tim")]),
            ("http://ex/bob", vec![("name", "Bob")]),
        ] {
            graph.insert_type(subject, "http://ex/Person");
            for (property, value) in properties {
                graph.insert_literal_triple(
                    subject,
                    &format!("http://ex/{property}"),
                    Literal::simple(value),
                );
            }
        }
        graph
    }

    #[test]
    fn fill_factor_equals_coverage() {
        let graph = sample_graph();
        let layout = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        // 3 subjects × 2 properties, 4 occupied cells → σ_Cov = 4/6.
        let stats = layout.storage_stats();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.occupied_cells, 4);
        assert_eq!(stats.null_cells, 2);
        assert_eq!(stats.fill_factor(), Some(4.0 / 6.0));
    }

    #[test]
    fn point_lookups_touch_one_row() {
        let graph = sample_graph();
        let layout = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (output, cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/ada".into(),
        });
        assert_eq!(output.len(), 2);
        assert_eq!(cost.rows_scanned, 1);
        assert_eq!(cost.index_lookups, 1);

        let (value, value_cost) = layout.execute(&Query::ValueLookup {
            subject: "http://ex/ada".into(),
            property: "http://ex/deathDate".into(),
        });
        assert_eq!(value.len(), 1);
        assert_eq!(value_cost.cells_scanned, 1);
    }

    #[test]
    fn scans_read_the_whole_table() {
        let graph = sample_graph();
        let layout = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (output, cost) = layout.execute(&Query::PropertyScan {
            property: "http://ex/deathDate".into(),
        });
        assert_eq!(output.len(), 1);
        assert_eq!(cost.rows_scanned, 3);
        assert_eq!(cost.bytes_read, layout.storage_stats().bytes);
    }

    #[test]
    fn star_join_requires_all_properties() {
        let graph = sample_graph();
        let layout = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (output, _) = layout.execute(&Query::StarJoin {
            properties: vec!["http://ex/name".into(), "http://ex/deathDate".into()],
        });
        assert_eq!(output.len(), 1);
        assert!(output.tuples.contains(&vec!["http://ex/ada".to_owned()]));

        let (missing, cost) = layout.execute(&Query::StarJoin {
            properties: vec!["http://ex/name".into(), "http://ex/nonexistent".into()],
        });
        assert!(missing.is_empty());
        assert_eq!(cost.rows_scanned, 0);

        let (empty, empty_cost) = layout.execute(&Query::StarJoin { properties: vec![] });
        assert!(empty.is_empty());
        assert_eq!(empty_cost, QueryCost::default());
    }

    #[test]
    fn missing_subject_or_property_costs_only_the_probe() {
        let graph = sample_graph();
        let layout = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (output, cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/nobody".into(),
        });
        assert!(output.is_empty());
        assert_eq!(cost.rows_scanned, 0);
        assert_eq!(cost.index_lookups, 1);

        let (scan, scan_cost) = layout.execute(&Query::PropertyScan {
            property: "http://ex/nonexistent".into(),
        });
        assert!(scan.is_empty());
        assert_eq!(scan_cost, QueryCost::default());
    }
}
