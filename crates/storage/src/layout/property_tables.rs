//! The property-table layout: one wide table per implicit sort.
//!
//! This is the layout a sort refinement is *for*: each implicit sort groups
//! subjects with similar signatures, so its table only needs the columns that
//! sort actually uses and stays dense. Scans and star joins can skip whole
//! tables whose column sets are irrelevant to the query.

use std::collections::BTreeMap;

use strudel_core::refinement::SortRefinement;
use strudel_rdf::bitset::BitSet;
use strudel_rdf::graph::Graph;
use strudel_rdf::matrix::PropertyStructureView;
use strudel_rdf::signature::SignatureView;

use crate::cost::{CostModel, QueryCost, StorageStats};
use crate::error::StorageError;
use crate::layout::{pages_for_read, Layout, LayoutConfig};
use crate::query::{Query, QueryOutput};
use crate::table::WideTable;
use crate::value::Value;

/// One wide table per group of signatures (implicit sort).
#[derive(Clone, Debug)]
pub struct PropertyTablesLayout {
    tables: Vec<WideTable>,
    table_stats: Vec<StorageStats>,
    subject_table: BTreeMap<String, usize>,
    stats: StorageStats,
    model: CostModel,
}

impl PropertyTablesLayout {
    /// Builds the layout from a sort refinement computed on `view`.
    ///
    /// The matrix and signature view must describe the same dataset as
    /// `graph` (same subjects, same property columns); the usual pipeline is
    /// `graph → PropertyStructureView → SignatureView → refinement → layout`.
    pub fn from_refinement(
        graph: &Graph,
        matrix: &PropertyStructureView,
        view: &SignatureView,
        refinement: &SortRefinement,
        config: &LayoutConfig,
    ) -> Result<Self, StorageError> {
        let assignment = refinement.assignment(view);
        if let Some(unassigned) = assignment.iter().position(|&sort| sort == usize::MAX) {
            return Err(StorageError::InconsistentRefinement(format!(
                "signature {unassigned} is not assigned to any implicit sort"
            )));
        }
        Self::from_assignment(graph, matrix, view, &assignment, config)
    }

    /// Builds the degenerate layout with one table per signature set — the
    /// finest possible decomposition, useful as an ablation point.
    pub fn one_table_per_signature(
        graph: &Graph,
        matrix: &PropertyStructureView,
        view: &SignatureView,
        config: &LayoutConfig,
    ) -> Result<Self, StorageError> {
        let assignment: Vec<usize> = (0..view.signature_count()).collect();
        Self::from_assignment(graph, matrix, view, &assignment, config)
    }

    /// Builds the layout from an explicit `signature index → group` map.
    pub fn from_assignment(
        graph: &Graph,
        matrix: &PropertyStructureView,
        view: &SignatureView,
        assignment: &[usize],
        config: &LayoutConfig,
    ) -> Result<Self, StorageError> {
        if matrix.subject_count() == 0 {
            return Err(StorageError::EmptyDataset);
        }
        if assignment.len() != view.signature_count() {
            return Err(StorageError::InconsistentRefinement(format!(
                "assignment covers {} signatures, the view has {}",
                assignment.len(),
                view.signature_count()
            )));
        }
        let group_count = assignment.iter().copied().max().map_or(0, |max| max + 1);

        // Signature pattern → signature index, to classify each subject row.
        let signature_of: BTreeMap<&BitSet, usize> = view
            .entries()
            .iter()
            .enumerate()
            .map(|(idx, entry)| (&entry.signature, idx))
            .collect();

        // One table per non-empty group, with only the columns its
        // signatures use.
        let mut group_tables: Vec<Option<usize>> = vec![None; group_count];
        let mut tables: Vec<WideTable> = Vec::new();
        for (group, slot) in group_tables.iter_mut().enumerate() {
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &g)| g == group)
                .map(|(sig, _)| sig)
                .collect();
            if members.is_empty() {
                continue;
            }
            let used = view.used_properties(&members);
            let columns: Vec<String> = used
                .iter()
                .map(|col| view.properties()[col].clone())
                .collect();
            *slot = Some(tables.len());
            tables.push(WideTable::new(format!("sort{}", tables.len()), columns));
        }

        // Route every subject row to its group's table and fill in values.
        let mut subject_table = BTreeMap::new();
        for (row_idx, subject) in matrix.subjects().iter().enumerate() {
            let pattern = matrix.row(row_idx);
            let Some(&signature) = signature_of.get(pattern) else {
                return Err(StorageError::UnknownSignatureRow(subject.clone()));
            };
            let table_idx = group_tables[assignment[signature]].ok_or_else(|| {
                StorageError::InconsistentRefinement(format!(
                    "signature {signature} maps to an empty group"
                ))
            })?;
            subject_table.insert(subject.clone(), table_idx);
            let table = &mut tables[table_idx];
            let row = table.upsert_row(subject);
            let Some(subject_id) = graph.dictionary().iri_id(subject) else {
                continue;
            };
            for triple in graph.entity(subject_id) {
                let property = graph.iri(triple.predicate);
                let Some(column) = table.column_of(property) else {
                    continue;
                };
                let value = Value::from_object(graph, triple.object);
                table.push_value(row, column, value);
            }
        }

        let model = config.cost_model.clone();
        let table_stats: Vec<StorageStats> = tables
            .iter()
            .map(|table| table.storage_stats(&model))
            .collect();
        let stats = table_stats
            .iter()
            .copied()
            .fold(StorageStats::default(), |acc, stat| acc + stat);
        Ok(PropertyTablesLayout {
            tables,
            table_stats,
            subject_table,
            stats,
            model,
        })
    }

    /// The per-sort tables.
    pub fn tables(&self) -> &[WideTable] {
        &self.tables
    }

    /// The table index a subject is stored in, if the subject exists.
    pub fn table_of(&self, subject: &str) -> Option<usize> {
        self.subject_table.get(subject).copied()
    }

    fn table_scan_cost(&self, table_idx: usize, cells_per_row: usize) -> QueryCost {
        let table = &self.tables[table_idx];
        let stats = &self.table_stats[table_idx];
        QueryCost {
            rows_scanned: table.row_count(),
            cells_scanned: table.row_count() * cells_per_row,
            bytes_read: stats.bytes,
            pages_read: stats.pages,
            index_lookups: 0,
            tables_touched: 1,
        }
    }

    fn row_lookup_cost(&self, table_idx: usize, row: usize, cells: usize) -> QueryCost {
        let bytes = self.tables[table_idx].row_bytes(row, &self.model);
        QueryCost {
            rows_scanned: 1,
            cells_scanned: cells,
            bytes_read: bytes,
            pages_read: pages_for_read(&self.model, bytes),
            index_lookups: 2,
            tables_touched: 1,
        }
    }
}

impl Layout for PropertyTablesLayout {
    fn name(&self) -> &str {
        "property tables"
    }

    fn storage_stats(&self) -> StorageStats {
        self.stats
    }

    fn execute(&self, query: &Query) -> (QueryOutput, QueryCost) {
        let mut output = QueryOutput::new();
        let mut cost = QueryCost::default();
        match query {
            Query::SubjectLookup { subject } => {
                cost.index_lookups = 1;
                let Some(table_idx) = self.table_of(subject) else {
                    return (output, cost);
                };
                let table = &self.tables[table_idx];
                let Some(row) = table.row_of(subject) else {
                    return (output, cost);
                };
                cost += self.row_lookup_cost(table_idx, row, table.column_count());
                for (column, label) in table.columns().iter().enumerate() {
                    for value in table.cell(row, column) {
                        output.push(vec![label.clone(), value.to_string()]);
                    }
                }
            }
            Query::ValueLookup { subject, property } => {
                cost.index_lookups = 1;
                let Some(table_idx) = self.table_of(subject) else {
                    return (output, cost);
                };
                let table = &self.tables[table_idx];
                let (Some(row), Some(column)) = (table.row_of(subject), table.column_of(property))
                else {
                    // Either the subject vanished (impossible by construction)
                    // or its sort never uses the property: answer is empty and
                    // the catalog already knows it.
                    return (output, cost);
                };
                cost += self.row_lookup_cost(table_idx, row, 1);
                for value in table.cell(row, column) {
                    output.push(vec![value.to_string()]);
                }
            }
            Query::PropertyScan { property } => {
                for (table_idx, table) in self.tables.iter().enumerate() {
                    let Some(column) = table.column_of(property) else {
                        continue;
                    };
                    cost += self.table_scan_cost(table_idx, 1);
                    for (row, subject) in table.rows() {
                        for value in table.cell(row, column) {
                            output.push(vec![subject.to_owned(), value.to_string()]);
                        }
                    }
                }
            }
            Query::StarJoin { properties } => {
                if properties.is_empty() {
                    return (output, cost);
                }
                for (table_idx, table) in self.tables.iter().enumerate() {
                    let columns: Vec<Option<usize>> = properties
                        .iter()
                        .map(|property| table.column_of(property))
                        .collect();
                    if columns.iter().any(Option::is_none) {
                        // This sort cannot contribute: at least one joined
                        // property is outside its column set.
                        continue;
                    }
                    cost += self.table_scan_cost(table_idx, columns.len());
                    for (row, subject) in table.rows() {
                        let all_present = columns
                            .iter()
                            .all(|column| !table.cell(row, column.unwrap()).is_empty());
                        if all_present {
                            output.push(vec![subject.to_owned()]);
                        }
                    }
                }
            }
        }
        (output, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_core::sigma::SigmaSpec;
    use strudel_rdf::term::Literal;
    use strudel_rules::prelude::Ratio;

    fn sample_graph() -> Graph {
        let mut graph = Graph::new();
        for (subject, properties) in [
            (
                "http://ex/ada",
                vec![("name", "Ada"), ("deathDate", "1852")],
            ),
            (
                "http://ex/grace",
                vec![("name", "Grace"), ("deathDate", "1992")],
            ),
            ("http://ex/tim", vec![("name", "Tim")]),
            ("http://ex/bob", vec![("name", "Bob")]),
            ("http://ex/eve", vec![("name", "Eve")]),
        ] {
            graph.insert_type(subject, "http://ex/Person");
            for (property, value) in properties {
                graph.insert_literal_triple(
                    subject,
                    &format!("http://ex/{property}"),
                    Literal::simple(value),
                );
            }
        }
        graph
    }

    fn pipeline(graph: &Graph) -> (PropertyStructureView, SignatureView) {
        let matrix = PropertyStructureView::from_graph(graph, true);
        let view = SignatureView::from_matrix(&matrix);
        (matrix, view)
    }

    #[test]
    fn refinement_yields_dense_tables() {
        let graph = sample_graph();
        let (matrix, view) = pipeline(&graph);
        // Two signatures: {name} (3 subjects) and {name, deathDate} (2).
        assert_eq!(view.signature_count(), 2);
        let refinement =
            SortRefinement::from_assignment(&view, &SigmaSpec::Coverage, Ratio::ONE, &[0, 1], 2)
                .unwrap();
        let layout = PropertyTablesLayout::from_refinement(
            &graph,
            &matrix,
            &view,
            &refinement,
            &LayoutConfig::excluding_rdf_type(),
        )
        .unwrap();
        assert_eq!(layout.tables().len(), 2);
        let stats = layout.storage_stats();
        // Every cell is occupied: both sorts are perfectly structured.
        assert_eq!(stats.null_cells, 0);
        assert_eq!(stats.fill_factor(), Some(1.0));
        assert_eq!(stats.rows, 5);
    }

    #[test]
    fn scans_skip_irrelevant_tables() {
        let graph = sample_graph();
        let (matrix, view) = pipeline(&graph);
        let layout = PropertyTablesLayout::one_table_per_signature(
            &graph,
            &matrix,
            &view,
            &LayoutConfig::excluding_rdf_type(),
        )
        .unwrap();
        let (output, cost) = layout.execute(&Query::PropertyScan {
            property: "http://ex/deathDate".into(),
        });
        assert_eq!(output.len(), 2);
        assert_eq!(cost.tables_touched, 1);
        assert_eq!(cost.rows_scanned, 2);

        let (star, star_cost) = layout.execute(&Query::StarJoin {
            properties: vec!["http://ex/name".into(), "http://ex/deathDate".into()],
        });
        assert_eq!(star.len(), 2);
        assert_eq!(star_cost.tables_touched, 1);
    }

    #[test]
    fn subject_lookup_touches_only_its_sort() {
        let graph = sample_graph();
        let (matrix, view) = pipeline(&graph);
        let layout = PropertyTablesLayout::one_table_per_signature(
            &graph,
            &matrix,
            &view,
            &LayoutConfig::excluding_rdf_type(),
        )
        .unwrap();
        let (output, cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/tim".into(),
        });
        assert_eq!(output.len(), 1);
        assert_eq!(cost.rows_scanned, 1);
        // Tim's sort only has the name column.
        assert_eq!(cost.cells_scanned, 1);

        let (missing, missing_cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/nobody".into(),
        });
        assert!(missing.is_empty());
        assert_eq!(missing_cost.rows_scanned, 0);
    }

    #[test]
    fn value_lookup_outside_the_sorts_columns_is_free() {
        let graph = sample_graph();
        let (matrix, view) = pipeline(&graph);
        let layout = PropertyTablesLayout::one_table_per_signature(
            &graph,
            &matrix,
            &view,
            &LayoutConfig::excluding_rdf_type(),
        )
        .unwrap();
        let (output, cost) = layout.execute(&Query::ValueLookup {
            subject: "http://ex/tim".into(),
            property: "http://ex/deathDate".into(),
        });
        assert!(output.is_empty());
        assert_eq!(cost.rows_scanned, 0);
    }

    #[test]
    fn inconsistent_assignments_are_rejected() {
        let graph = sample_graph();
        let (matrix, view) = pipeline(&graph);
        let err = PropertyTablesLayout::from_assignment(
            &graph,
            &matrix,
            &view,
            &[0],
            &LayoutConfig::excluding_rdf_type(),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InconsistentRefinement(_)));

        let empty = Graph::new();
        let empty_matrix = PropertyStructureView::from_graph(&empty, true);
        let empty_view = SignatureView::from_matrix(&empty_matrix);
        let err = PropertyTablesLayout::from_assignment(
            &empty,
            &empty_matrix,
            &empty_view,
            &[],
            &LayoutConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::EmptyDataset));
    }
}
