//! The vertical ("triple store") layout: one `(subject, property, value)` row
//! per triple, with subject and property indexes.

use std::collections::{BTreeMap, BTreeSet};

use strudel_rdf::graph::Graph;
use strudel_rdf::vocab::RDF_TYPE;

use crate::cost::{CostModel, QueryCost, StorageStats};
use crate::layout::{pages_for_read, Layout, LayoutConfig};
use crate::query::{Query, QueryOutput};
use crate::value::Value;

/// One row of the triple table.
#[derive(Clone, Debug)]
struct TripleRow {
    subject: String,
    property: String,
    value: Value,
}

/// The vertical layout: a single triple table plus subject/property indexes.
#[derive(Clone, Debug)]
pub struct TripleStoreLayout {
    rows: Vec<TripleRow>,
    by_subject: BTreeMap<String, Vec<usize>>,
    by_property: BTreeMap<String, Vec<usize>>,
    stats: StorageStats,
    model: CostModel,
}

impl TripleStoreLayout {
    /// Lays the graph out as a triple table.
    pub fn build(graph: &Graph, config: &LayoutConfig) -> Self {
        let mut rows = Vec::new();
        let mut by_subject: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_property: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for triple in graph.triples() {
            let property = graph.iri(triple.predicate).to_owned();
            if config.exclude_rdf_type && property == RDF_TYPE {
                continue;
            }
            let subject = graph.iri(triple.subject).to_owned();
            let value = Value::from_object(graph, triple.object);
            let idx = rows.len();
            by_subject.entry(subject.clone()).or_default().push(idx);
            by_property.entry(property.clone()).or_default().push(idx);
            rows.push(TripleRow {
                subject,
                property,
                value,
            });
        }

        let model = config.cost_model.clone();
        let bytes = model.table_overhead
            + rows
                .iter()
                .map(|row| Self::row_bytes(row, &model))
                .sum::<usize>();
        let stats = StorageStats {
            tables: 1,
            rows: rows.len(),
            occupied_cells: rows.len(),
            null_cells: 0,
            bytes,
            pages: model.pages_for_bytes(bytes),
        };
        TripleStoreLayout {
            rows,
            by_subject,
            by_property,
            stats,
            model,
        }
    }

    /// Number of triples stored.
    pub fn triple_count(&self) -> usize {
        self.rows.len()
    }

    /// The distinct properties stored (in lexicographic order).
    pub fn properties(&self) -> Vec<&str> {
        self.by_property.keys().map(String::as_str).collect()
    }

    fn row_bytes(row: &TripleRow, model: &CostModel) -> usize {
        model.row_overhead
            + 3 * model.cell_overhead
            + row.subject.len()
            + row.property.len()
            + row.value.payload_bytes()
    }

    fn scan_rows(&self, indexes: &[usize]) -> QueryCost {
        let bytes: usize = indexes
            .iter()
            .map(|&idx| Self::row_bytes(&self.rows[idx], &self.model))
            .sum();
        QueryCost {
            rows_scanned: indexes.len(),
            cells_scanned: indexes.len(),
            bytes_read: bytes,
            pages_read: pages_for_read(&self.model, bytes),
            index_lookups: 0,
            tables_touched: usize::from(!indexes.is_empty()),
        }
    }
}

impl Layout for TripleStoreLayout {
    fn name(&self) -> &str {
        "triple store"
    }

    fn storage_stats(&self) -> StorageStats {
        self.stats
    }

    fn execute(&self, query: &Query) -> (QueryOutput, QueryCost) {
        let mut output = QueryOutput::new();
        let mut cost = QueryCost::default();
        match query {
            Query::SubjectLookup { subject } => {
                cost.index_lookups = 1;
                if let Some(indexes) = self.by_subject.get(subject) {
                    cost += self.scan_rows(indexes);
                    for &idx in indexes {
                        let row = &self.rows[idx];
                        output.push(vec![row.property.clone(), row.value.to_string()]);
                    }
                }
            }
            Query::ValueLookup { subject, property } => {
                cost.index_lookups = 1;
                if let Some(indexes) = self.by_subject.get(subject) {
                    cost += self.scan_rows(indexes);
                    for &idx in indexes {
                        let row = &self.rows[idx];
                        if &row.property == property {
                            output.push(vec![row.value.to_string()]);
                        }
                    }
                }
            }
            Query::PropertyScan { property } => {
                cost.index_lookups = 1;
                if let Some(indexes) = self.by_property.get(property) {
                    cost += self.scan_rows(indexes);
                    for &idx in indexes {
                        let row = &self.rows[idx];
                        output.push(vec![row.subject.clone(), row.value.to_string()]);
                    }
                }
            }
            Query::StarJoin { properties } => {
                let mut candidates: Option<BTreeSet<&str>> = None;
                for property in properties {
                    cost.index_lookups += 1;
                    let indexes = self.by_property.get(property).cloned().unwrap_or_default();
                    cost += self.scan_rows(&indexes);
                    let subjects: BTreeSet<&str> = indexes
                        .iter()
                        .map(|&idx| self.rows[idx].subject.as_str())
                        .collect();
                    candidates = Some(match candidates {
                        None => subjects,
                        Some(existing) => existing.intersection(&subjects).copied().collect(),
                    });
                    if candidates.as_ref().is_some_and(BTreeSet::is_empty) {
                        break;
                    }
                }
                for subject in candidates.unwrap_or_default() {
                    output.push(vec![subject.to_owned()]);
                }
            }
        }
        (output, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_rdf::term::Literal;

    fn sample_graph() -> Graph {
        let mut graph = Graph::new();
        graph.insert_type("http://ex/ada", "http://ex/Person");
        graph.insert_literal_triple("http://ex/ada", "http://ex/name", Literal::simple("Ada"));
        graph.insert_literal_triple(
            "http://ex/ada",
            "http://ex/deathDate",
            Literal::simple("1852"),
        );
        graph.insert_type("http://ex/tim", "http://ex/Person");
        graph.insert_literal_triple("http://ex/tim", "http://ex/name", Literal::simple("Tim"));
        graph
    }

    #[test]
    fn build_excludes_rdf_type_when_asked() {
        let graph = sample_graph();
        let with_type = TripleStoreLayout::build(&graph, &LayoutConfig::default());
        let without_type = TripleStoreLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        assert_eq!(with_type.triple_count(), 5);
        assert_eq!(without_type.triple_count(), 3);
        assert_eq!(without_type.properties().len(), 2);
        assert_eq!(without_type.storage_stats().null_cells, 0);
    }

    #[test]
    fn subject_lookup_uses_the_index() {
        let graph = sample_graph();
        let layout = TripleStoreLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (output, cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/ada".into(),
        });
        assert_eq!(output.len(), 2);
        assert_eq!(cost.index_lookups, 1);
        assert_eq!(cost.rows_scanned, 2);

        let (missing, missing_cost) = layout.execute(&Query::SubjectLookup {
            subject: "http://ex/nobody".into(),
        });
        assert!(missing.is_empty());
        assert_eq!(missing_cost.rows_scanned, 0);
    }

    #[test]
    fn property_scan_and_star_join() {
        let graph = sample_graph();
        let layout = TripleStoreLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (names, _) = layout.execute(&Query::PropertyScan {
            property: "http://ex/name".into(),
        });
        assert_eq!(names.len(), 2);

        let (star, cost) = layout.execute(&Query::StarJoin {
            properties: vec!["http://ex/name".into(), "http://ex/deathDate".into()],
        });
        assert_eq!(star.len(), 1);
        assert!(star.tuples.contains(&vec!["http://ex/ada".to_owned()]));
        assert_eq!(cost.index_lookups, 2);
    }

    #[test]
    fn value_lookup_filters_the_entity() {
        let graph = sample_graph();
        let layout = TripleStoreLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let (values, cost) = layout.execute(&Query::ValueLookup {
            subject: "http://ex/ada".into(),
            property: "http://ex/deathDate".into(),
        });
        assert_eq!(values.len(), 1);
        assert!(values.tuples.contains(&vec!["\"1852\"".to_owned()]));
        // The triple store still scans the whole entity to find one cell.
        assert_eq!(cost.rows_scanned, 2);
    }
}
