//! Cell values of the relational layouts.
//!
//! The structuredness framework only looks at *which* properties a subject
//! has, but a storage layout has to hold the actual objects. A [`Value`] is
//! the resolved (string) form of a triple's object — an IRI or a literal —
//! detached from any graph dictionary so that layouts can be compared and
//! query answers checked for equality across layouts.

use std::fmt;

use strudel_rdf::graph::Graph;
use strudel_rdf::term::Object;

/// A resolved object value stored in a table cell.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An IRI object.
    Iri(String),
    /// A literal object, rendered in its N-Triples form (lexical form plus
    /// optional datatype / language tag).
    Literal(String),
}

impl Value {
    /// Resolves a triple object against the graph's dictionary.
    pub fn from_object(graph: &Graph, object: Object) -> Value {
        match object {
            Object::Iri(id) => Value::Iri(graph.iri(id).to_owned()),
            Object::Literal(id) => Value::Literal(graph.dictionary().literal(id).to_string()),
        }
    }

    /// An approximate on-disk footprint of the value in bytes: the rendered
    /// length, used by the [cost model](crate::cost::CostModel) for
    /// variable-length payload accounting.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Iri(iri) => iri.len() + 2,
            Value::Literal(text) => text.len(),
        }
    }

    /// Whether the value is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Value::Iri(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Iri(iri) => write!(f, "<{iri}>"),
            Value::Literal(text) => write!(f, "{text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strudel_rdf::term::Literal;

    #[test]
    fn resolves_iri_and_literal_objects() {
        let mut graph = Graph::new();
        graph.insert_iri_triple("http://ex/s", "http://ex/p", "http://ex/o");
        graph.insert_literal_triple("http://ex/s", "http://ex/q", Literal::lang("chat", "en"));
        let triples: Vec<_> = graph.triples().copied().collect();

        let iri_value = Value::from_object(&graph, triples[0].object);
        assert_eq!(iri_value, Value::Iri("http://ex/o".into()));
        assert_eq!(iri_value.to_string(), "<http://ex/o>");
        assert!(iri_value.is_iri());

        let literal_value = Value::from_object(&graph, triples[1].object);
        assert_eq!(literal_value.to_string(), "\"chat\"@en");
        assert!(!literal_value.is_iri());
    }

    #[test]
    fn payload_accounts_for_rendered_length() {
        let iri = Value::Iri("http://ex/o".into());
        assert_eq!(iri.payload_bytes(), "http://ex/o".len() + 2);
        let lit = Value::Literal("\"abc\"".into());
        assert_eq!(lit.payload_bytes(), 5);
    }

    #[test]
    fn ordering_is_stable_for_result_sets() {
        let mut values = [
            Value::Literal("\"b\"".into()),
            Value::Iri("http://ex/a".into()),
            Value::Iri("http://ex/b".into()),
        ];
        values.sort();
        assert_eq!(values[0], Value::Iri("http://ex/a".into()));
        assert_eq!(values[1], Value::Iri("http://ex/b".into()));
    }
}
