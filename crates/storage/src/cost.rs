//! The storage and query cost model.
//!
//! The paper motivates structuredness by its impact on "storage layouts,
//! indexing, and efficient query processing". This module quantifies that
//! impact with a deliberately simple, deterministic cost model: every layout
//! reports how many bytes it occupies and how many *null* cells it stores,
//! and every query execution reports how many rows, cells and (derived)
//! pages it had to touch. Absolute numbers are synthetic; the point is the
//! *relative* comparison between layouts built with and without a sort
//! refinement — exactly the decision the paper wants structuredness to
//! inform.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Tunable constants of the cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Size of a disk page in bytes.
    pub page_size: usize,
    /// Fixed per-row overhead (row header, slot pointer) in bytes.
    pub row_overhead: usize,
    /// Fixed per-cell overhead for a *present* value (length word / pointer).
    pub cell_overhead: usize,
    /// Bytes charged for a null cell (a wide row still reserves a slot and a
    /// null-bitmap bit; modelled as one byte to keep arithmetic integral).
    pub null_cell_bytes: usize,
    /// Fixed per-table overhead (catalog entry, header page).
    pub table_overhead: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            page_size: 8192,
            row_overhead: 16,
            cell_overhead: 4,
            null_cell_bytes: 1,
            table_overhead: 256,
        }
    }
}

impl CostModel {
    /// Number of pages needed to hold `bytes` bytes (at least one for any
    /// non-empty byte count).
    pub fn pages_for_bytes(&self, bytes: usize) -> usize {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.page_size)
        }
    }
}

/// Static footprint of a layout (or of a single table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Number of tables.
    pub tables: usize,
    /// Number of rows across all tables.
    pub rows: usize,
    /// Number of non-null cells (stored values).
    pub occupied_cells: usize,
    /// Number of null cells (reserved but empty slots).
    pub null_cells: usize,
    /// Total bytes under the cost model.
    pub bytes: usize,
    /// Total pages under the cost model.
    pub pages: usize,
}

impl StorageStats {
    /// Fraction of cells that hold a value; `None` when the layout has no
    /// cells at all. For a single-table horizontal layout over a graph where
    /// every subject sets each property at most once, this equals σ_Cov.
    pub fn fill_factor(&self) -> Option<f64> {
        let total = self.occupied_cells + self.null_cells;
        if total == 0 {
            None
        } else {
            Some(self.occupied_cells as f64 / total as f64)
        }
    }

    /// Fraction of cells that are null (0 when there are no cells).
    pub fn null_fraction(&self) -> f64 {
        1.0 - self.fill_factor().unwrap_or(1.0)
    }
}

impl Add for StorageStats {
    type Output = StorageStats;

    fn add(self, other: StorageStats) -> StorageStats {
        StorageStats {
            tables: self.tables + other.tables,
            rows: self.rows + other.rows,
            occupied_cells: self.occupied_cells + other.occupied_cells,
            null_cells: self.null_cells + other.null_cells,
            bytes: self.bytes + other.bytes,
            pages: self.pages + other.pages,
        }
    }
}

impl AddAssign for StorageStats {
    fn add_assign(&mut self, other: StorageStats) {
        *self = *self + other;
    }
}

impl fmt::Display for StorageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} table(s), {} rows, {} cells ({} null, fill {:.2}), {} bytes / {} pages",
            self.tables,
            self.rows,
            self.occupied_cells + self.null_cells,
            self.null_cells,
            self.fill_factor().unwrap_or(1.0),
            self.bytes,
            self.pages
        )
    }
}

/// Work performed to answer one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Rows visited across all tables.
    pub rows_scanned: usize,
    /// Cells inspected (null cells count: the executor still has to look).
    pub cells_scanned: usize,
    /// Bytes read under the cost model.
    pub bytes_read: usize,
    /// Pages read under the cost model (derived from `bytes_read` per table
    /// scan, so scanning two half-pages in two tables costs two pages).
    pub pages_read: usize,
    /// Number of index lookups performed (hash/B-tree probes).
    pub index_lookups: usize,
    /// Number of tables touched.
    pub tables_touched: usize,
}

impl Add for QueryCost {
    type Output = QueryCost;

    fn add(self, other: QueryCost) -> QueryCost {
        QueryCost {
            rows_scanned: self.rows_scanned + other.rows_scanned,
            cells_scanned: self.cells_scanned + other.cells_scanned,
            bytes_read: self.bytes_read + other.bytes_read,
            pages_read: self.pages_read + other.pages_read,
            index_lookups: self.index_lookups + other.index_lookups,
            tables_touched: self.tables_touched + other.tables_touched,
        }
    }
}

impl AddAssign for QueryCost {
    fn add_assign(&mut self, other: QueryCost) {
        *self = *self + other;
    }
}

impl fmt::Display for QueryCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rows, {} cells, {} pages, {} index lookup(s), {} table(s)",
            self.rows_scanned,
            self.cells_scanned,
            self.pages_read,
            self.index_lookups,
            self.tables_touched
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_up_and_zero_is_zero() {
        let model = CostModel::default();
        assert_eq!(model.pages_for_bytes(0), 0);
        assert_eq!(model.pages_for_bytes(1), 1);
        assert_eq!(model.pages_for_bytes(8192), 1);
        assert_eq!(model.pages_for_bytes(8193), 2);
    }

    #[test]
    fn fill_factor_matches_cell_counts() {
        let stats = StorageStats {
            tables: 1,
            rows: 4,
            occupied_cells: 6,
            null_cells: 2,
            bytes: 100,
            pages: 1,
        };
        assert_eq!(stats.fill_factor(), Some(0.75));
        assert!((stats.null_fraction() - 0.25).abs() < 1e-12);

        let empty = StorageStats::default();
        assert_eq!(empty.fill_factor(), None);
        assert_eq!(empty.null_fraction(), 0.0);
    }

    #[test]
    fn stats_and_costs_accumulate() {
        let a = StorageStats {
            tables: 1,
            rows: 2,
            occupied_cells: 3,
            null_cells: 1,
            bytes: 10,
            pages: 1,
        };
        let total = a + a;
        assert_eq!(total.rows, 4);
        assert_eq!(total.bytes, 20);

        let mut cost = QueryCost::default();
        cost += QueryCost {
            rows_scanned: 5,
            cells_scanned: 10,
            bytes_read: 80,
            pages_read: 1,
            index_lookups: 1,
            tables_touched: 1,
        };
        cost += QueryCost {
            rows_scanned: 1,
            cells_scanned: 2,
            bytes_read: 16,
            pages_read: 1,
            index_lookups: 0,
            tables_touched: 1,
        };
        assert_eq!(cost.rows_scanned, 6);
        assert_eq!(cost.pages_read, 2);
        assert_eq!(cost.tables_touched, 2);
    }

    #[test]
    fn displays_are_compact() {
        let stats = StorageStats {
            tables: 2,
            rows: 3,
            occupied_cells: 4,
            null_cells: 2,
            bytes: 123,
            pages: 1,
        };
        let text = stats.to_string();
        assert!(text.contains("2 table(s)"));
        assert!(text.contains("123 bytes"));
        let cost = QueryCost {
            rows_scanned: 1,
            cells_scanned: 2,
            bytes_read: 3,
            pages_read: 1,
            index_lookups: 1,
            tables_touched: 1,
        };
        assert!(cost.to_string().contains("1 rows"));
    }
}
