//! # strudel-storage
//!
//! Schema-guided storage layouts and a query cost model for RDF data — the
//! "so what" of the **strudel** reproduction of *"A Principled Approach to
//! Bridging the Gap between Graph Data and their Schemas"* (Arenas, Díaz,
//! Fokoue, Kementsietsidis, Srinivas, VLDB 2014).
//!
//! The paper motivates structuredness by its impact on storage layouts,
//! indexing and query processing, and closes by asking whether high
//! structuredness predicts good query performance. This crate makes both
//! statements executable:
//!
//! * [`layout`] — three physical layouts for the same dataset: a triple
//!   store, the horizontal wide table of Section 2.1, and property tables
//!   derived from a sort refinement,
//! * [`query`] / [`workload`] — a four-class query workload executed
//!   identically over every layout, with per-query cost accounting,
//! * [`cost`] — the deterministic storage/IO cost model,
//! * [`advisor`] — a layout advisor that discovers a sort refinement with
//!   `strudel-core` and quantifies what the refinement buys in bytes and
//!   page reads.
//!
//! ## Example
//!
//! ```
//! use strudel_core::engine::HybridEngine;
//! use strudel_rdf::prelude::*;
//! use strudel_storage::prelude::*;
//!
//! let mut graph = Graph::new();
//! for idx in 0..8 {
//!     let subject = format!("http://ex/alive{idx}");
//!     graph.insert_literal_triple(&subject, "http://ex/name", Literal::simple("x"));
//!     graph.insert_literal_triple(&subject, "http://ex/birthDate", Literal::simple("1990"));
//! }
//! for idx in 0..2 {
//!     let subject = format!("http://ex/dead{idx}");
//!     graph.insert_literal_triple(&subject, "http://ex/name", Literal::simple("y"));
//!     graph.insert_literal_triple(&subject, "http://ex/deathDate", Literal::simple("1980"));
//! }
//!
//! let report = advise(&graph, None, &AdvisorConfig::coverage_with_k(2), &HybridEngine::new())
//!     .expect("the dataset is non-empty");
//! // The refinement-derived property tables store no NULLs at all.
//! let tables = report.summary("property tables").unwrap();
//! assert_eq!(tables.storage.null_cells, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod cost;
pub mod error;
pub mod layout;
pub mod query;
pub mod table;
pub mod value;
pub mod workload;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::advisor::{
        advise, AdvisorConfig, AdvisorObjective, AdvisorReport, SortTableReport,
    };
    pub use crate::cost::{CostModel, QueryCost, StorageStats};
    pub use crate::error::StorageError;
    pub use crate::layout::{
        HorizontalLayout, Layout, LayoutConfig, PropertyTablesLayout, TripleStoreLayout,
    };
    pub use crate::query::{Query, QueryKind, QueryOutput};
    pub use crate::table::WideTable;
    pub use crate::value::Value;
    pub use crate::workload::{
        generate_workload, run_workload, LayoutWorkloadSummary, WorkloadConfig,
    };
}
