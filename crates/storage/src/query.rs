//! The query classes of the evaluation workload.
//!
//! Four query shapes cover the access patterns RDF stores are typically
//! sized for, and they stress the layouts in different ways:
//!
//! * [`Query::SubjectLookup`] — "everything about one entity"; rewards
//!   layouts that cluster an entity's properties in one row.
//! * [`Query::ValueLookup`] — a single cell; rewards direct addressing.
//! * [`Query::PropertyScan`] — "all values of one property"; punishes wide
//!   rows full of NULLs that have to be skipped.
//! * [`Query::StarJoin`] — "entities having *all* of these properties"; the
//!   query class whose cost the paper's dependency functions predict.
//!
//! Every layout must return exactly the same [`QueryOutput`] for a query —
//! the integration tests enforce this — so cost differences are attributable
//! to physical design alone.

use std::collections::BTreeSet;
use std::fmt;

/// A query against an RDF dataset, phrased over subjects and properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// All `(property, value)` pairs of one subject.
    SubjectLookup {
        /// The subject IRI.
        subject: String,
    },
    /// The values of one property of one subject.
    ValueLookup {
        /// The subject IRI.
        subject: String,
        /// The property IRI.
        property: String,
    },
    /// All `(subject, value)` pairs of one property.
    PropertyScan {
        /// The property IRI.
        property: String,
    },
    /// The subjects that have a value for *every* listed property.
    StarJoin {
        /// The property IRIs joined on the subject.
        properties: Vec<String>,
    },
}

impl Query {
    /// A short label for reports and benchmark ids.
    pub fn label(&self) -> String {
        match self {
            Query::SubjectLookup { subject } => format!("subject({})", short(subject)),
            Query::ValueLookup { subject, property } => {
                format!("cell({},{})", short(subject), short(property))
            }
            Query::PropertyScan { property } => format!("scan({})", short(property)),
            Query::StarJoin { properties } => {
                let names: Vec<&str> = properties.iter().map(|p| short(p)).collect();
                format!("star({})", names.join(","))
            }
        }
    }

    /// The coarse query class, for aggregating workload reports.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::SubjectLookup { .. } => QueryKind::SubjectLookup,
            Query::ValueLookup { .. } => QueryKind::ValueLookup,
            Query::PropertyScan { .. } => QueryKind::PropertyScan,
            Query::StarJoin { .. } => QueryKind::StarJoin,
        }
    }
}

/// The coarse class of a [`Query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryKind {
    /// Entity lookup.
    SubjectLookup,
    /// Single-cell lookup.
    ValueLookup,
    /// Full property scan.
    PropertyScan,
    /// Subject-subject star join.
    StarJoin,
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            QueryKind::SubjectLookup => "subject lookup",
            QueryKind::ValueLookup => "value lookup",
            QueryKind::PropertyScan => "property scan",
            QueryKind::StarJoin => "star join",
        };
        f.write_str(name)
    }
}

/// The answer to a query: an unordered, duplicate-free set of string tuples.
///
/// Tuples are rendered strings rather than typed rows so answers from
/// different layouts compare with plain equality. The tuple shape depends on
/// the query class (see the module documentation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryOutput {
    /// The result tuples.
    pub tuples: BTreeSet<Vec<String>>,
}

impl QueryOutput {
    /// Creates an empty output.
    pub fn new() -> Self {
        QueryOutput::default()
    }

    /// Adds a tuple to the output.
    pub fn push(&mut self, tuple: Vec<String>) {
        self.tuples.insert(tuple);
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the output has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

fn short(iri: &str) -> &str {
    iri.rsplit(['/', '#']).next().unwrap_or(iri)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_shorten_iris() {
        let query = Query::StarJoin {
            properties: vec![
                "http://dbpedia.org/ontology/birthDate".into(),
                "http://dbpedia.org/ontology/deathDate".into(),
            ],
        };
        assert_eq!(query.label(), "star(birthDate,deathDate)");
        assert_eq!(query.kind(), QueryKind::StarJoin);

        let lookup = Query::SubjectLookup {
            subject: "http://ex/ada".into(),
        };
        assert_eq!(lookup.label(), "subject(ada)");
        assert_eq!(lookup.kind().to_string(), "subject lookup");
    }

    #[test]
    fn outputs_deduplicate_and_compare() {
        let mut a = QueryOutput::new();
        a.push(vec!["s".into(), "v".into()]);
        a.push(vec!["s".into(), "v".into()]);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());

        let mut b = QueryOutput::new();
        b.push(vec!["s".into(), "v".into()]);
        assert_eq!(a, b);

        b.push(vec!["t".into(), "w".into()]);
        assert_ne!(a, b);
    }
}
