//! The wide ("horizontal") relational table used by the property-table and
//! horizontal layouts.
//!
//! A [`WideTable`] has one row per subject and one column per property. A
//! cell holds zero or more [`Value`]s — zero models the NULL of the paper's
//! horizontal database [11], more than one models RDF's multi-valued
//! properties. The table keeps a subject index so point lookups do not scan.

use std::collections::BTreeMap;

use crate::cost::{CostModel, StorageStats};
use crate::value::Value;

/// A relational table with one row per subject and one column per property.
#[derive(Clone, Debug)]
pub struct WideTable {
    name: String,
    columns: Vec<String>,
    column_index: BTreeMap<String, usize>,
    subjects: Vec<String>,
    subject_index: BTreeMap<String, usize>,
    /// `cells[row][column]` — possibly empty (NULL), possibly multi-valued.
    cells: Vec<Vec<Vec<Value>>>,
}

impl WideTable {
    /// Creates an empty table with the given column labels. Duplicate column
    /// labels are collapsed (the first occurrence wins).
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        let mut unique = Vec::new();
        let mut column_index = BTreeMap::new();
        for column in columns {
            if !column_index.contains_key(&column) {
                column_index.insert(column.clone(), unique.len());
                unique.push(column);
            }
        }
        WideTable {
            name: name.into(),
            columns: unique,
            column_index,
            subjects: Vec::new(),
            subject_index: BTreeMap::new(),
            cells: Vec::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column labels in column order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.subjects.len()
    }

    /// The column index of a property label, if the table has that column.
    pub fn column_of(&self, property: &str) -> Option<usize> {
        self.column_index.get(property).copied()
    }

    /// The subjects in row order.
    pub fn subjects(&self) -> &[String] {
        &self.subjects
    }

    /// The row index of a subject, if present (an index probe, not a scan).
    pub fn row_of(&self, subject: &str) -> Option<usize> {
        self.subject_index.get(subject).copied()
    }

    /// Returns the row index for the subject, inserting an all-NULL row if
    /// the subject is new.
    pub fn upsert_row(&mut self, subject: &str) -> usize {
        if let Some(&row) = self.subject_index.get(subject) {
            return row;
        }
        let row = self.subjects.len();
        self.subjects.push(subject.to_owned());
        self.subject_index.insert(subject.to_owned(), row);
        self.cells.push(vec![Vec::new(); self.columns.len()]);
        row
    }

    /// Appends a value to the cell `(row, column)`.
    ///
    /// # Panics
    /// Panics if the row or column is out of bounds; rows come from
    /// [`WideTable::upsert_row`] and columns from [`WideTable::column_of`],
    /// so a panic indicates a layout-construction bug.
    pub fn push_value(&mut self, row: usize, column: usize, value: Value) {
        self.cells[row][column].push(value);
    }

    /// The values stored in cell `(row, column)` (empty slice = NULL).
    pub fn cell(&self, row: usize, column: usize) -> &[Value] {
        &self.cells[row][column]
    }

    /// Iterates over `(row index, subject)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (usize, &str)> {
        self.subjects
            .iter()
            .enumerate()
            .map(|(idx, subject)| (idx, subject.as_str()))
    }

    /// Number of non-NULL cells in the table.
    pub fn occupied_cells(&self) -> usize {
        self.cells
            .iter()
            .map(|row| row.iter().filter(|cell| !cell.is_empty()).count())
            .sum()
    }

    /// Number of NULL cells in the table.
    pub fn null_cells(&self) -> usize {
        self.row_count() * self.column_count() - self.occupied_cells()
    }

    /// Bytes occupied by one row under the cost model.
    pub fn row_bytes(&self, row: usize, model: &CostModel) -> usize {
        let mut bytes = model.row_overhead + self.subjects[row].len();
        for cell in &self.cells[row] {
            if cell.is_empty() {
                bytes += model.null_cell_bytes;
            } else {
                bytes += model.cell_overhead;
                bytes += cell.iter().map(Value::payload_bytes).sum::<usize>();
            }
        }
        bytes
    }

    /// Total bytes occupied by the table under the cost model.
    pub fn bytes(&self, model: &CostModel) -> usize {
        model.table_overhead
            + (0..self.row_count())
                .map(|row| self.row_bytes(row, model))
                .sum::<usize>()
    }

    /// The static footprint of the table under the cost model.
    pub fn storage_stats(&self, model: &CostModel) -> StorageStats {
        let bytes = self.bytes(model);
        StorageStats {
            tables: 1,
            rows: self.row_count(),
            occupied_cells: self.occupied_cells(),
            null_cells: self.null_cells(),
            bytes,
            pages: model.pages_for_bytes(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> WideTable {
        let mut table = WideTable::new(
            "persons",
            vec!["name".into(), "birthDate".into(), "deathDate".into()],
        );
        let ada = table.upsert_row("ada");
        table.push_value(ada, 0, Value::Literal("\"Ada\"".into()));
        table.push_value(ada, 1, Value::Literal("\"1815\"".into()));
        table.push_value(ada, 2, Value::Literal("\"1852\"".into()));
        let tim = table.upsert_row("tim");
        table.push_value(tim, 0, Value::Literal("\"Tim\"".into()));
        table
    }

    #[test]
    fn upsert_is_idempotent_and_indexed() {
        let mut table = sample_table();
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.upsert_row("ada"), 0);
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.row_of("tim"), Some(1));
        assert_eq!(table.row_of("nobody"), None);
        assert_eq!(table.column_of("birthDate"), Some(1));
        assert_eq!(table.column_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_are_collapsed() {
        let table = WideTable::new("t", vec!["p".into(), "q".into(), "p".into()]);
        assert_eq!(table.column_count(), 2);
        assert_eq!(table.columns(), &["p".to_owned(), "q".to_owned()]);
    }

    #[test]
    fn null_accounting_matches_cells() {
        let table = sample_table();
        // ada fills 3 cells, tim fills 1 of 3.
        assert_eq!(table.occupied_cells(), 4);
        assert_eq!(table.null_cells(), 2);
        let stats = table.storage_stats(&CostModel::default());
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.fill_factor(), Some(4.0 / 6.0));
        assert_eq!(stats.pages, 1);
    }

    #[test]
    fn multi_valued_cells_count_once_but_weigh_more() {
        let mut table = WideTable::new("t", vec!["p".into()]);
        let row = table.upsert_row("s");
        table.push_value(row, 0, Value::Literal("\"a\"".into()));
        let single_bytes = table.row_bytes(0, &CostModel::default());
        table.push_value(row, 0, Value::Literal("\"b\"".into()));
        assert_eq!(table.occupied_cells(), 1);
        assert_eq!(table.null_cells(), 0);
        assert!(table.row_bytes(0, &CostModel::default()) > single_bytes);
        assert_eq!(table.cell(0, 0).len(), 2);
    }

    #[test]
    fn row_iteration_preserves_insertion_order() {
        let table = sample_table();
        let order: Vec<&str> = table.rows().map(|(_, subject)| subject).collect();
        assert_eq!(order, vec!["ada", "tim"]);
    }
}
