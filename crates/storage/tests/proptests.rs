//! Property tests for the storage layer.
//!
//! The load-bearing invariants:
//!
//! * every layout returns the same answer for every query (cost may differ,
//!   answers may not),
//! * the fill factor of the horizontal layout equals σ_Cov of the dataset
//!   when every subject sets a property at most once,
//! * the one-table-per-signature property-table layout never stores a NULL,
//!   and its occupied cell count equals the number of 1-cells of `M(D)`.

// Needs the external `proptest` crate: compiled only with `--features proptest`
// (unavailable in offline builds; see the manifest note).
#![cfg(feature = "proptest")]

use proptest::collection::vec;
use proptest::prelude::*;

use strudel_core::sigma::SigmaSpec;
use strudel_rdf::graph::Graph;
use strudel_rdf::matrix::PropertyStructureView;
use strudel_rdf::signature::SignatureView;
use strudel_rdf::term::Literal;
use strudel_storage::prelude::*;

const PROPERTIES: [&str; 5] = [
    "http://ex/name",
    "http://ex/birthDate",
    "http://ex/deathDate",
    "http://ex/birthPlace",
    "http://ex/deathPlace",
];

/// A dataset description: per subject, the subset of `PROPERTIES` it sets.
fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<bool>>> {
    vec(vec(any::<bool>(), PROPERTIES.len()), 1..25)
}

fn build_graph(rows: &[Vec<bool>]) -> Graph {
    let mut graph = Graph::new();
    for (idx, row) in rows.iter().enumerate() {
        let subject = format!("http://ex/entity{idx}");
        graph.insert_type(&subject, "http://ex/Thing");
        for (col, &present) in row.iter().enumerate() {
            if present {
                graph.insert_literal_triple(
                    &subject,
                    PROPERTIES[col],
                    Literal::simple(format!("value-{idx}-{col}")),
                );
            }
        }
    }
    graph
}

fn build_layouts(
    graph: &Graph,
) -> (
    TripleStoreLayout,
    HorizontalLayout,
    Option<PropertyTablesLayout>,
) {
    let config = LayoutConfig::excluding_rdf_type();
    let triple_store = TripleStoreLayout::build(graph, &config);
    let horizontal = HorizontalLayout::build(graph, &config);
    let matrix = PropertyStructureView::from_graph(graph, true);
    let view = SignatureView::from_matrix(&matrix);
    let property_tables = if matrix.subject_count() > 0 {
        Some(
            PropertyTablesLayout::one_table_per_signature(graph, &matrix, &view, &config)
                .expect("a non-empty dataset always yields a per-signature layout"),
        )
    } else {
        None
    };
    (triple_store, horizontal, property_tables)
}

fn workload_for(graph: &Graph) -> Vec<Query> {
    let mut queries = generate_workload(
        graph,
        &WorkloadConfig {
            subject_lookups: 4,
            value_lookups: 4,
            property_scans: 3,
            star_joins: 3,
            star_join_arity: 2,
            seed: 7,
        },
    );
    // Also probe things that are *not* there, which is where layouts tend to
    // disagree if they are buggy.
    queries.push(Query::SubjectLookup {
        subject: "http://ex/absent".into(),
    });
    queries.push(Query::PropertyScan {
        property: "http://ex/absentProperty".into(),
    });
    queries.push(Query::StarJoin {
        properties: vec![PROPERTIES[0].into(), "http://ex/absentProperty".into()],
    });
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layouts_agree_on_every_query(rows in dataset_strategy()) {
        let graph = build_graph(&rows);
        let (triple_store, horizontal, property_tables) = build_layouts(&graph);
        let queries = workload_for(&graph);
        let mut layouts: Vec<&dyn Layout> = vec![&triple_store, &horizontal];
        if let Some(tables) = &property_tables {
            layouts.push(tables);
        }
        // run_workload returns an error (instead of summaries) on any answer
        // mismatch, so a successful run is the assertion.
        let summaries = run_workload(&layouts, &queries).expect("layouts must agree");
        prop_assert_eq!(summaries.len(), layouts.len());
    }

    #[test]
    fn horizontal_fill_factor_is_coverage(rows in dataset_strategy()) {
        let graph = build_graph(&rows);
        let matrix = PropertyStructureView::from_graph(&graph, true);
        let view = SignatureView::from_matrix(&matrix);
        let horizontal = HorizontalLayout::build(&graph, &LayoutConfig::excluding_rdf_type());
        let sigma_cov = SigmaSpec::Coverage.evaluate(&view).unwrap().to_f64();
        match horizontal.storage_stats().fill_factor() {
            Some(fill) => prop_assert!((fill - sigma_cov).abs() < 1e-9),
            // No cells at all: only possible when no subject sets any
            // property, where σ_Cov is 1 by the empty-total-cases convention.
            None => prop_assert!((sigma_cov - 1.0).abs() < 1e-9),
        }
    }

    #[test]
    fn per_signature_tables_store_no_nulls(rows in dataset_strategy()) {
        let graph = build_graph(&rows);
        let matrix = PropertyStructureView::from_graph(&graph, true);
        let view = SignatureView::from_matrix(&matrix);
        let config = LayoutConfig::excluding_rdf_type();
        let layout = PropertyTablesLayout::one_table_per_signature(&graph, &matrix, &view, &config)
            .expect("non-empty dataset");
        let stats = layout.storage_stats();
        prop_assert_eq!(stats.null_cells, 0);
        prop_assert_eq!(stats.occupied_cells, view.ones());
        prop_assert_eq!(stats.rows, view.subject_count());
        prop_assert_eq!(layout.tables().len(), view.signature_count());
    }

    #[test]
    fn property_tables_never_cost_more_cells_than_horizontal_on_scans(rows in dataset_strategy()) {
        let graph = build_graph(&rows);
        let (_, horizontal, property_tables) = build_layouts(&graph);
        let Some(property_tables) = property_tables else {
            return Ok(());
        };
        for property in PROPERTIES {
            let query = Query::PropertyScan { property: property.into() };
            let (h_out, h_cost) = horizontal.execute(&query);
            let (p_out, p_cost) = property_tables.execute(&query);
            prop_assert_eq!(&h_out, &p_out);
            // The per-signature tables only scan rows that could match, so
            // they never inspect more cells than the wide table does.
            prop_assert!(p_cost.cells_scanned <= h_cost.cells_scanned);
        }
    }
}

#[test]
fn multi_valued_properties_round_trip_through_all_layouts() {
    let mut graph = Graph::new();
    graph.insert_type("http://ex/poly", "http://ex/Thing");
    graph.insert_literal_triple("http://ex/poly", PROPERTIES[0], Literal::simple("first"));
    graph.insert_literal_triple("http://ex/poly", PROPERTIES[0], Literal::simple("second"));
    graph.insert_iri_triple("http://ex/poly", PROPERTIES[1], "http://ex/other");
    graph.insert_type("http://ex/mono", "http://ex/Thing");
    graph.insert_literal_triple("http://ex/mono", PROPERTIES[0], Literal::simple("only"));

    let (triple_store, horizontal, property_tables) = build_layouts(&graph);
    let property_tables = property_tables.expect("dataset is non-empty");
    let layouts: Vec<&dyn Layout> = vec![&triple_store, &horizontal, &property_tables];
    let queries = vec![
        Query::SubjectLookup {
            subject: "http://ex/poly".into(),
        },
        Query::PropertyScan {
            property: PROPERTIES[0].into(),
        },
        Query::ValueLookup {
            subject: "http://ex/poly".into(),
            property: PROPERTIES[0].into(),
        },
        Query::StarJoin {
            properties: vec![PROPERTIES[0].into(), PROPERTIES[1].into()],
        },
    ];
    let summaries = run_workload(&layouts, &queries).expect("layouts must agree");
    assert_eq!(summaries.len(), 3);

    let (values, _) = triple_store.execute(&queries[2]);
    assert_eq!(
        values.len(),
        2,
        "both values of the multi-valued cell survive"
    );
}
