//! The content-addressed result cache: exact LRU with hit/miss/eviction
//! counters, plus the persistent segment store that makes it survive
//! restarts.
//!
//! The server keys this cache by [`CacheKey`](crate::protocol::CacheKey) —
//! the view's content hash plus the canonical parameter string — and stores
//! the *serialized* result text (an `Arc<String>`), so a cache hit replays
//! the original response bytes without re-encoding, let alone re-solving,
//! anything.
//!
//! The in-memory half ([`LruCache`]) is a plain recency-stamped map:
//! `O(log n)` per operation via a `BTreeMap` recency index, exact LRU order
//! (not an approximation), no external dependencies, and single-threaded by
//! design — the server wraps it in a `Mutex`, which is never held across a
//! solve.
//!
//! The on-disk half ([`SegmentStore`]) is a write-through append-only
//! segment file. Both halves of a cache entry are already stable text —
//! the key is `SignatureView::cache_key` (a content hash) plus the
//! canonical parameter string, the value is the canonical serialized
//! result — so a record is just those three fields, length-prefixed. Every
//! insert appends a `P` (put) record, every eviction a `D` (tombstone);
//! on startup the file is replayed in append order into the LRU, giving a
//! restarted server warm, byte-identical answers. When dead records
//! (superseded puts, evicted puts, tombstones) exceed a threshold, the
//! segment is compacted: rewritten with only the live entries, oldest
//! first, then atomically renamed over the old file. A truncated tail
//! (crash mid-append) is detected during replay and cut off.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use crate::protocol::CacheKey;

/// Counter snapshot of a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Entries ever inserted (including replacements).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// An exact least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every insert is immediately evicted).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.stamp();
        match self.map.get_mut(key) {
            Some((value, old_stamp)) => {
                self.recency.remove(old_stamp);
                self.recency.insert(stamp, key.clone());
                *old_stamp = stamp;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    /// Inserting an existing key replaces its value and freshens it.
    ///
    /// Returns the evicted entry, if capacity pressure pushed one out — the
    /// persistent layer tombstones it so disk stays in sync with memory.
    /// (With capacity 0 the inserted entry itself comes straight back.)
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.insertions += 1;
        let stamp = self.stamp();
        let mut evicted = None;
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        } else if self.map.len() >= self.capacity {
            // Evict the oldest stamp (smallest key of the recency index).
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("stamp just seen");
                let (value, _) = self.map.remove(&victim).expect("victim is resident");
                self.evictions += 1;
                evicted = Some((victim, value));
            }
            if self.capacity == 0 {
                // Nothing can be resident; count the insert as an
                // instant eviction so the arithmetic stays honest.
                self.evictions += 1;
                return Some((key, value));
            }
        }
        self.map.insert(key.clone(), (value, stamp));
        self.recency.insert(stamp, key);
        evicted
    }

    /// Whether a key is resident, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Every resident entry in LRU order (least recently used first),
    /// without touching recency or counters. Compaction writes the segment
    /// in this order so a replay reconstructs the same recency ranking.
    pub fn snapshot_lru_order(&self) -> Vec<(K, V)> {
        self.recency
            .values()
            .map(|key| {
                let (value, _) = &self.map[key];
                (key.clone(), value.clone())
            })
            .collect()
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Counter snapshot of a [`SegmentStore`] (part of the `status` payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries replayed into the cache at startup.
    pub replayed: u64,
    /// Put records appended since startup.
    pub puts: u64,
    /// Tombstone records appended since startup.
    pub tombstones: u64,
    /// Dead records currently in the file (superseded/evicted puts and
    /// every tombstone) — the compaction pressure gauge.
    pub dead: u64,
    /// Keys the segment currently considers live.
    pub live: u64,
    /// Compactions performed since startup.
    pub compactions: u64,
    /// Current size of the segment file, in bytes.
    pub file_bytes: u64,
}

/// The write-through persistent half of the result cache: an append-only
/// segment file of `P`ut and `D`elete records.
///
/// Record framing is a header line with length prefixes, then the exact
/// payload bytes (which may themselves contain anything):
///
/// ```text
/// P <view-hash-hex> <params-bytes> <result-bytes>\n<params>\n<result>\n
/// D <view-hash-hex> <params-bytes>\n<params>\n
/// ```
///
/// The store tracks which keys are live so it can count dead records; the
/// in-memory [`LruCache`] stays the authority on residency, and the server
/// keeps the two in lockstep (insert → put, evict → tombstone).
#[derive(Debug)]
pub struct SegmentStore {
    path: PathBuf,
    file: File,
    live: HashSet<CacheKey>,
    dead_threshold: u64,
    replayed: u64,
    puts: u64,
    tombstones: u64,
    dead: u64,
    compactions: u64,
    file_bytes: u64,
}

impl SegmentStore {
    /// Opens (creating if absent) the segment at `path` and replays it,
    /// returning the store plus the surviving entries in append order —
    /// the caller inserts them into its [`LruCache`] in that order, which
    /// reconstructs the pre-restart recency ranking. A torn tail record
    /// (crash mid-append) is truncated away.
    ///
    /// `dead_threshold` is the number of dead records that triggers
    /// compaction (see [`Self::should_compact`]).
    pub fn open(
        path: impl Into<PathBuf>,
        dead_threshold: u64,
    ) -> std::io::Result<(Self, Vec<(CacheKey, String)>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Replay: keep the *last* put per key (tagged with its record
        // index, so append order — and with it the recency ranking — can
        // be reconstructed by one sort at the end; maintaining an ordered
        // list during the scan would be O(dead × live)), and drop
        // tombstoned keys.
        let mut latest: HashMap<CacheKey, (u64, String)> = HashMap::new();
        let mut records: u64 = 0;
        let mut good = 0usize; // offset after the last whole record
        let mut pos = 0usize;
        while pos < bytes.len() {
            match parse_record(&bytes, pos) {
                Some((record, next)) => {
                    records += 1;
                    match record {
                        Record::Put(key, text) => {
                            latest.insert(key, (records, text));
                        }
                        Record::Delete(key) => {
                            latest.remove(&key);
                        }
                    }
                    pos = next;
                    good = next;
                }
                None => break, // torn tail
            }
        }
        if good < bytes.len() {
            // Cut the torn record off so the next append starts clean.
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::End(0))?;

        let mut ordered: Vec<(u64, CacheKey, String)> = latest
            .into_iter()
            .map(|(key, (seq, text))| (seq, key, text))
            .collect();
        ordered.sort_unstable_by_key(|(seq, _, _)| *seq);
        let entries: Vec<(CacheKey, String)> = ordered
            .into_iter()
            .map(|(_, key, text)| (key, text))
            .collect();
        let live: HashSet<CacheKey> = entries.iter().map(|(k, _)| k.clone()).collect();
        let store = SegmentStore {
            path,
            file,
            dead_threshold,
            replayed: entries.len() as u64,
            puts: 0,
            tombstones: 0,
            dead: records - entries.len() as u64,
            live,
            compactions: 0,
            file_bytes: good as u64,
        };
        Ok((store, entries))
    }

    /// Appends a put record (write-through on cache insert). Re-putting a
    /// live key supersedes its previous record, which becomes dead weight.
    pub fn record_put(&mut self, key: &CacheKey, result_text: &str) -> std::io::Result<()> {
        if !self.live.insert(key.clone()) {
            self.dead += 1; // the superseded put
        }
        let record = encode_put(key, result_text);
        self.file.write_all(&record)?;
        self.puts += 1;
        self.file_bytes += record.len() as u64;
        Ok(())
    }

    /// Appends a tombstone (write-through on cache eviction). Both the
    /// tombstone and the put it kills are dead weight until compaction.
    pub fn record_evict(&mut self, key: &CacheKey) -> std::io::Result<()> {
        if self.live.remove(key) {
            self.dead += 1; // the evicted put
        }
        let record = encode_delete(key);
        self.file.write_all(&record)?;
        self.tombstones += 1;
        self.dead += 1; // the tombstone itself
        self.file_bytes += record.len() as u64;
        Ok(())
    }

    /// Whether dead records have crossed the threshold (and outnumber the
    /// live entries, so compaction actually shrinks the file).
    pub fn should_compact(&self) -> bool {
        self.dead >= self.dead_threshold && self.dead > self.live.len() as u64
    }

    /// Rewrites the segment with only `entries` (the caller's live set, in
    /// the order replay should re-insert them — LRU first), atomically
    /// replacing the old file via a sibling temp file and rename.
    pub fn compact<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (&'a CacheKey, &'a str)>,
    ) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("compact");
        let mut tmp = File::create(&tmp_path)?;
        let mut live = HashSet::new();
        let mut written = 0u64;
        for (key, text) in entries {
            let record = encode_put(key, text);
            tmp.write_all(&record)?;
            written += record.len() as u64;
            live.insert(key.clone());
        }
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the handle on the new file; the old one points at the
        // unlinked inode.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.live = live;
        self.dead = 0;
        self.compactions += 1;
        self.file_bytes = written;
        Ok(())
    }

    /// Flushes and fsyncs the segment (the graceful-shutdown barrier).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.sync_all()
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            replayed: self.replayed,
            puts: self.puts,
            tombstones: self.tombstones,
            dead: self.dead,
            live: self.live.len() as u64,
            compactions: self.compactions,
            file_bytes: self.file_bytes,
        }
    }
}

enum Record {
    Put(CacheKey, String),
    Delete(CacheKey),
}

fn encode_put(key: &CacheKey, result_text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.params.len() + result_text.len() + 64);
    out.extend_from_slice(
        format!(
            "P {:032x} {} {}\n",
            key.view,
            key.params.len(),
            result_text.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(key.params.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(result_text.as_bytes());
    out.push(b'\n');
    out
}

fn encode_delete(key: &CacheKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.params.len() + 48);
    out.extend_from_slice(format!("D {:032x} {}\n", key.view, key.params.len()).as_bytes());
    out.extend_from_slice(key.params.as_bytes());
    out.push(b'\n');
    out
}

/// Parses one record starting at `pos`. Returns the record and the offset
/// just past it, or `None` for a torn/corrupt record (replay stops there).
fn parse_record(bytes: &[u8], pos: usize) -> Option<(Record, usize)> {
    let header_end = bytes[pos..].iter().position(|&b| b == b'\n')? + pos;
    let header = std::str::from_utf8(&bytes[pos..header_end]).ok()?;
    let mut fields = header.split(' ');
    let kind = fields.next()?;
    let view = u128::from_str_radix(fields.next()?, 16).ok()?;
    let params_len: usize = fields.next()?.parse().ok()?;
    let take = |start: usize, len: usize| -> Option<(String, usize)> {
        let end = start.checked_add(len)?;
        if end >= bytes.len() || bytes[end] != b'\n' {
            return None;
        }
        let text = String::from_utf8(bytes[start..end].to_vec()).ok()?;
        Some((text, end + 1))
    };
    match kind {
        "P" => {
            let result_len: usize = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None;
            }
            let (params, after_params) = take(header_end + 1, params_len)?;
            let (result, next) = take(after_params, result_len)?;
            Some((Record::Put(CacheKey { view, params }, result), next))
        }
        "D" => {
            if fields.next().is_some() {
                return None;
            }
            let (params, next) = take(header_end + 1, params_len)?;
            Some((Record::Delete(CacheKey { view, params }), next))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        assert_eq!(cache.get(&"a"), None);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"b"), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let mut cache: LruCache<&str, i32> = LruCache::new(3);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        // Touch "a" so "b" is now the least recently used.
        assert_eq!(cache.get(&"a"), Some(1));
        cache.insert("d", 4);
        assert!(!cache.contains(&"b"), "b was LRU and must be evicted");
        assert!(cache.contains(&"a"));
        assert!(cache.contains(&"c"));
        assert!(cache.contains(&"d"));
        assert_eq!(cache.stats().evictions, 1);

        // Next eviction takes "c" (oldest untouched), not "a".
        cache.insert("e", 5);
        assert!(!cache.contains(&"c"));
        assert!(cache.contains(&"a"));
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinserting_replaces_and_freshens() {
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10); // replace, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&"a"), Some(10));
        // "b" is LRU now ("a" was freshened twice).
        cache.insert("c", 3);
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"a"));
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let mut cache: LruCache<&str, i32> = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn heavy_traffic_keeps_entries_at_capacity() {
        let mut cache: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..1000u32 {
            cache.insert(i, i);
            // The most recent 8 inserts are always resident.
            assert!(cache.contains(&i));
            assert!(cache.stats().entries <= 8);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 1000 - 8);
        for survivor in 992..1000 {
            assert!(cache.contains(&survivor));
        }
    }

    #[test]
    fn insert_reports_the_evicted_entry() {
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        assert_eq!(cache.insert("a", 1), None);
        assert_eq!(cache.insert("b", 2), None);
        assert_eq!(cache.insert("a", 10), None, "replacement evicts nothing");
        assert_eq!(cache.insert("c", 3), Some(("b", 2)), "b was LRU");
    }

    #[test]
    fn snapshot_is_in_lru_order() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        cache.get(&"a"); // freshen: order is now b, c, a
        let order: Vec<&str> = cache
            .snapshot_lru_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(order, vec!["b", "c", "a"]);
    }

    fn key(n: u32) -> CacheKey {
        CacheKey {
            view: 0xfeed_0000 + u128::from(n),
            params: format!("refine|hybrid|cov|{n}|1/2|||"),
        }
    }

    fn temp_segment(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strudel-segment-{tag}-{}.log", std::process::id()))
    }

    #[test]
    fn segment_replays_puts_in_order_and_drops_tombstoned_keys() {
        let path = temp_segment("replay");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, entries) = SegmentStore::open(&path, 1024).unwrap();
            assert!(entries.is_empty());
            store.record_put(&key(1), "{\"outcome\":\"one\"}").unwrap();
            store.record_put(&key(2), "{\"outcome\":\"two\"}").unwrap();
            store
                .record_put(&key(3), "{\"outcome\":\"three\"}")
                .unwrap();
            store.record_evict(&key(2)).unwrap();
            // Supersede key 1: the replayed value must be the newest.
            store
                .record_put(&key(1), "{\"outcome\":\"one-v2\"}")
                .unwrap();
            store.flush().unwrap();
            assert_eq!(store.stats().live, 2);
            assert_eq!(store.stats().tombstones, 1);
            // Dead: superseded put of 1, evicted put of 2, the tombstone.
            assert_eq!(store.stats().dead, 3);
        }
        let (store, entries) = SegmentStore::open(&path, 1024).unwrap();
        assert_eq!(store.stats().replayed, 2);
        assert_eq!(store.stats().dead, 3, "replay recounts dead records");
        // Key 3 was last untouched, key 1 was re-put after it.
        assert_eq!(entries[0].0, key(3));
        assert_eq!(entries[1].0, key(1));
        assert_eq!(entries[1].1, "{\"outcome\":\"one-v2\"}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_records_are_truncated_on_replay() {
        let path = temp_segment("torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, _) = SegmentStore::open(&path, 1024).unwrap();
            store.record_put(&key(1), "{\"ok\":1}").unwrap();
            store.record_put(&key(2), "{\"ok\":2}").unwrap();
            store.flush().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (store, entries) = SegmentStore::open(&path, 1024).unwrap();
        assert_eq!(entries.len(), 1, "the torn record is dropped");
        assert_eq!(entries[0].0, key(1));
        // The file was truncated back to the last whole record, so a fresh
        // append + replay works.
        drop(store);
        let (mut store, _) = SegmentStore::open(&path, 1024).unwrap();
        store.record_put(&key(3), "{\"ok\":3}").unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, entries) = SegmentStore::open(&path, 1024).unwrap();
        assert_eq!(entries.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_dead_weight_and_preserves_live_entries() {
        let path = temp_segment("compact");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 4).unwrap();
        // Churn one key while keeping another live.
        store.record_put(&key(1), "{\"keep\":true}").unwrap();
        for round in 0..5 {
            store
                .record_put(&key(2), &format!("{{\"round\":{round}}}"))
                .unwrap();
            store.record_evict(&key(2)).unwrap();
        }
        assert!(store.should_compact(), "{:?}", store.stats());
        let before = store.stats().file_bytes;

        let live = [(key(1), "{\"keep\":true}"), (key(2), "{\"round\":4}")];
        store.compact(live.iter().map(|(k, v)| (k, *v))).unwrap();
        let stats = store.stats();
        assert_eq!(stats.dead, 0);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.live, 2);
        assert!(stats.file_bytes < before, "compaction must shrink the file");
        assert!(!store.should_compact());

        // Appends after compaction land in the renamed file and replay.
        store.record_put(&key(7), "{\"late\":true}").unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, entries) = SegmentStore::open(&path, 4).unwrap();
        let keys: Vec<&CacheKey> = entries.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&key(1), &key(2), &key(7)]);
        std::fs::remove_file(&path).ok();
    }
}
