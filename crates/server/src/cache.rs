//! The content-addressed result cache: exact LRU with hit/miss/eviction
//! counters.
//!
//! The server keys this cache by [`CacheKey`](crate::protocol::CacheKey) —
//! the view's content hash plus the canonical parameter string — and stores
//! the *serialized* result text (an `Arc<String>`), so a cache hit replays
//! the original response bytes without re-encoding, let alone re-solving,
//! anything.
//!
//! The implementation is a plain recency-stamped map: `O(log n)` per
//! operation via a `BTreeMap` recency index, exact LRU order (not an
//! approximation), no external dependencies, and single-threaded by design —
//! the server wraps it in a `Mutex`, which is never held across a solve.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Counter snapshot of a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Entries ever inserted (including replacements).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// An exact least-recently-used cache.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every insert is immediately evicted).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.stamp();
        match self.map.get_mut(key) {
            Some((value, old_stamp)) => {
                self.recency.remove(old_stamp);
                self.recency.insert(stamp, key.clone());
                *old_stamp = stamp;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`Self::get`], but a miss is not counted. For double-checked
    /// lookups (a single-flight leader re-probing right after winning
    /// leadership): the caller's original `get` already counted the miss,
    /// so counting the recheck too would double-book every cold solve. A
    /// recheck *hit* is a genuine cache-served answer and still counts.
    pub fn recheck(&mut self, key: &K) -> Option<V> {
        if self.map.contains_key(key) {
            self.get(key)
        } else {
            None
        }
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    /// Inserting an existing key replaces its value and freshens it.
    pub fn insert(&mut self, key: K, value: V) {
        self.insertions += 1;
        let stamp = self.stamp();
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        } else if self.map.len() >= self.capacity {
            // Evict the oldest stamp (smallest key of the recency index).
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("stamp just seen");
                self.map.remove(&victim);
                self.evictions += 1;
            }
            if self.capacity == 0 {
                // Nothing can be resident; count the insert as an
                // instant eviction so the arithmetic stays honest.
                self.evictions += 1;
                return;
            }
        }
        self.map.insert(key.clone(), (value, stamp));
        self.recency.insert(stamp, key);
    }

    /// Whether a key is resident, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        assert_eq!(cache.get(&"a"), None);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"b"), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let mut cache: LruCache<&str, i32> = LruCache::new(3);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        // Touch "a" so "b" is now the least recently used.
        assert_eq!(cache.get(&"a"), Some(1));
        cache.insert("d", 4);
        assert!(!cache.contains(&"b"), "b was LRU and must be evicted");
        assert!(cache.contains(&"a"));
        assert!(cache.contains(&"c"));
        assert!(cache.contains(&"d"));
        assert_eq!(cache.stats().evictions, 1);

        // Next eviction takes "c" (oldest untouched), not "a".
        cache.insert("e", 5);
        assert!(!cache.contains(&"c"));
        assert!(cache.contains(&"a"));
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinserting_replaces_and_freshens() {
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10); // replace, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&"a"), Some(10));
        // "b" is LRU now ("a" was freshened twice).
        cache.insert("c", 3);
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"a"));
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let mut cache: LruCache<&str, i32> = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn heavy_traffic_keeps_entries_at_capacity() {
        let mut cache: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..1000u32 {
            cache.insert(i, i);
            // The most recent 8 inserts are always resident.
            assert!(cache.contains(&i));
            assert!(cache.stats().entries <= 8);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 1000 - 8);
        for survivor in 992..1000 {
            assert!(cache.contains(&survivor));
        }
    }
}
