//! The content-addressed result cache: exact LRU with hit/miss/eviction
//! counters, plus the persistent segment store that makes it survive
//! restarts.
//!
//! The server keys this cache by [`CacheKey`](crate::protocol::CacheKey) —
//! the view's content hash plus the canonical parameter string — and stores
//! the *serialized* result text (an `Arc<String>`), so a cache hit replays
//! the original response bytes without re-encoding, let alone re-solving,
//! anything.
//!
//! The in-memory half ([`LruCache`]) is a plain recency-stamped map:
//! `O(log n)` per operation via a `BTreeMap` recency index, exact LRU order
//! (not an approximation), no external dependencies, and single-threaded by
//! design — the server wraps it in a `Mutex`, which is never held across a
//! solve.
//!
//! The on-disk half ([`SegmentStore`]) is a write-through append-only
//! segment file. Both halves of a cache entry are already stable text —
//! the key is `SignatureView::cache_key` (a content hash) plus the
//! canonical parameter string, the value is the canonical serialized
//! result — so a record is just those three fields, length-prefixed. Every
//! insert appends a `P` (put) record, every eviction a `D` (tombstone);
//! on startup the file is replayed in append order into the LRU, giving a
//! restarted server warm, byte-identical answers. When dead records
//! (superseded puts, evicted puts, tombstones) exceed a threshold, the
//! segment is compacted: rewritten with only the live entries, oldest
//! first, then atomically renamed over the old file. A truncated tail
//! (crash mid-append) is detected during replay and cut off.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use strudel_core::wire::DEFAULT_TENANT;

use crate::protocol::CacheKey;

/// When the segment store fsyncs its appends (`serve --fsync …`).
///
/// Write-through alone only hands records to the OS; until an fsync they
/// live in the page cache, and a machine crash (not just a process crash)
/// can lose every record since the last sync. The policy trades that window
/// against write latency:
///
/// | policy          | durability window       | cost                       |
/// |-----------------|-------------------------|----------------------------|
/// | `always`        | none (sync per record)  | one fsync per insert/evict |
/// | `interval:<ms>` | at most `<ms>` of work  | ≤ 1000/`<ms>` fsyncs/s     |
/// | `off`           | until shutdown/flush    | none in steady state       |
///
/// The default is `interval:100` — a group fsync batching all appends of
/// the last 100 ms into one disk barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended record.
    Always,
    /// Group fsync: sync dirty appends once the interval has elapsed.
    Interval(Duration),
    /// Never fsync during operation (shutdown still flushes).
    Off,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(100))
    }
}

impl FsyncPolicy {
    /// Parses the CLI notation: `always`, `off`, or `interval:<ms>`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            _ => match text.strip_prefix("interval:") {
                Some(ms) => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| format!("invalid interval in '{text}'"))?;
                    if ms == 0 {
                        return Err("interval must be at least 1 ms (use 'always')".to_owned());
                    }
                    Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
                }
                None => Err(format!(
                    "expected 'always', 'off', or 'interval:<ms>', got '{text}'"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            FsyncPolicy::Off => f.write_str("off"),
        }
    }
}

/// Counter snapshot of a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Entries ever inserted (including replacements).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// Per-owner (tenant) accounting inside an [`LruCache`]: residency, the
/// reserved floor granted by the weighted-eviction policy, and evictions
/// charged against the owner (part of the `status` tenants block).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OwnerCacheStats {
    /// The owner (tenant) name.
    pub name: String,
    /// Entries currently resident for this owner.
    pub entries: usize,
    /// The owner's reserved entry count — the weighted-eviction policy
    /// never evicts the owner below this floor to make room for others.
    pub reserved: usize,
    /// This owner's entries pushed out by capacity pressure.
    pub evictions: u64,
}

/// An entry pushed out of an [`LruCache`] by capacity pressure, tagged with
/// the owner it was resident under (the persistent layer tombstones the key
/// and the registry charges the eviction to the owner).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evicted<K, V> {
    /// The evicted key.
    pub key: K,
    /// The evicted value.
    pub value: V,
    /// The owner (tenant) the entry belonged to.
    pub owner: String,
}

#[derive(Debug)]
struct OwnerSlot {
    name: String,
    count: usize,
    reserved: usize,
    evictions: u64,
}

/// An exact least-recently-used cache with weighted per-owner partitioning.
///
/// Every entry is resident *under an owner* (a tenant name; plain
/// [`Self::insert`] uses the reserved default owner). Owners may be granted
/// weights via [`Self::set_weights`], which translate into reserved entry
/// floors: when the cache is full, the victim is the globally
/// least-recently-used entry **among owners strictly over their reserve**,
/// falling back to the inserting owner's own LRU entry, and only then to
/// the plain global LRU entry. With no weights configured every reserve is
/// zero, every owner is "over", and the policy degenerates to exact global
/// LRU — byte-for-byte the pre-tenancy behavior.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, (V, u64, u32)>,
    recency: BTreeMap<u64, K>,
    owners: Vec<OwnerSlot>,
    owner_ids: HashMap<String, u32>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every insert is immediately evicted).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            owners: Vec::new(),
            owner_ids: HashMap::new(),
            next_stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn stamp(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    fn owner_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.owner_ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.owners.len()).expect("fewer than 2^32 owners");
        self.owners.push(OwnerSlot {
            name: name.to_owned(),
            count: 0,
            reserved: 0,
            evictions: 0,
        });
        self.owner_ids.insert(name.to_owned(), id);
        id
    }

    /// Installs the weighted partitioning policy: each `(owner, weight)`
    /// pair reserves `capacity × weight / Σweights` entries (floored) for
    /// that owner. Owners absent from `weights` (including the lazily
    /// created default) keep a reserve of zero. Calling this again replaces
    /// the previous reserves wholesale.
    pub fn set_weights(&mut self, weights: &[(String, u64)]) {
        for slot in &mut self.owners {
            slot.reserved = 0;
        }
        let total: u64 = weights.iter().map(|(_, w)| *w).sum();
        if total == 0 {
            return;
        }
        for (name, weight) in weights {
            let id = self.owner_id(name);
            let reserved = (self.capacity as u64).saturating_mul(*weight) / total;
            self.owners[id as usize].reserved = usize::try_from(reserved).unwrap_or(usize::MAX);
        }
    }

    /// Looks up a key, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let stamp = self.stamp();
        match self.map.get_mut(key) {
            Some((value, old_stamp, _)) => {
                self.recency.remove(old_stamp);
                self.recency.insert(stamp, key.clone());
                *old_stamp = stamp;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Picks the eviction victim's recency stamp under the weighted
    /// policy: the oldest entry whose owner is strictly over its reserve;
    /// else the inserting owner's own oldest entry (the owner is about to
    /// grow past what the others will yield, so it eats its own tail);
    /// else — every resident owner at or under reserve, which can only
    /// happen when floors round down — the plain global LRU entry.
    fn pick_victim(&self, inserting: u32) -> Option<u64> {
        let mut own_oldest = None;
        for (&stamp, key) in &self.recency {
            let (_, _, owner) = &self.map[key];
            let slot = &self.owners[*owner as usize];
            if slot.count > slot.reserved {
                return Some(stamp);
            }
            if own_oldest.is_none() && *owner == inserting {
                own_oldest = Some(stamp);
            }
        }
        own_oldest.or_else(|| self.recency.keys().next().copied())
    }

    /// Inserts a value under `owner`, evicting per the weighted policy
    /// when full. Inserting an existing key replaces its value, freshens
    /// it, and transfers it to `owner`.
    ///
    /// Returns the evicted entry, if capacity pressure pushed one out — the
    /// persistent layer tombstones it so disk stays in sync with memory.
    /// (With capacity 0 the inserted entry itself comes straight back.)
    pub fn insert_for(&mut self, owner: &str, key: K, value: V) -> Option<Evicted<K, V>> {
        self.insertions += 1;
        let owner_id = self.owner_id(owner);
        let stamp = self.stamp();
        let mut evicted = None;
        if let Some((_, old_stamp, old_owner)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
            self.owners[old_owner as usize].count -= 1;
        } else if self.map.len() >= self.capacity {
            if let Some(oldest) = self.pick_victim(owner_id) {
                let victim = self.recency.remove(&oldest).expect("stamp just seen");
                let (value, _, victim_owner) =
                    self.map.remove(&victim).expect("victim is resident");
                self.evictions += 1;
                let slot = &mut self.owners[victim_owner as usize];
                slot.count -= 1;
                slot.evictions += 1;
                evicted = Some(Evicted {
                    key: victim,
                    value,
                    owner: slot.name.clone(),
                });
            }
            if self.capacity == 0 {
                // Nothing can be resident; count the insert as an
                // instant eviction so the arithmetic stays honest.
                self.evictions += 1;
                let slot = &mut self.owners[owner_id as usize];
                slot.evictions += 1;
                let owner = slot.name.clone();
                return Some(Evicted { key, value, owner });
            }
        }
        self.map.insert(key.clone(), (value, stamp, owner_id));
        self.owners[owner_id as usize].count += 1;
        self.recency.insert(stamp, key);
        evicted
    }

    /// Inserts a value under the default owner (the pre-tenancy behavior,
    /// kept for single-tenant callers and tests). See [`Self::insert_for`].
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.insert_for(DEFAULT_TENANT, key, value)
            .map(|evicted| (evicted.key, evicted.value))
    }

    /// Whether a key is resident, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// The owner a resident key is accounted under.
    pub fn owner_of(&self, key: &K) -> Option<&str> {
        let (_, _, owner) = self.map.get(key)?;
        Some(&self.owners[*owner as usize].name)
    }

    /// Removes a key outright, returning its value if it was resident.
    ///
    /// This is an externally-driven removal (a follower applying the
    /// leader's replicated tombstone), not capacity pressure, so it does
    /// not count as an eviction.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (value, stamp, owner) = self.map.remove(key)?;
        self.recency.remove(&stamp);
        self.owners[owner as usize].count -= 1;
        Some(value)
    }

    /// Every resident entry in LRU order (least recently used first),
    /// without touching recency or counters. Compaction writes the segment
    /// in this order so a replay reconstructs the same recency ranking.
    pub fn snapshot_lru_order(&self) -> Vec<(K, V)> {
        self.recency
            .values()
            .map(|key| {
                let (value, _, _) = &self.map[key];
                (key.clone(), value.clone())
            })
            .collect()
    }

    /// [`Self::snapshot_lru_order`] with each entry's owner — what the
    /// server's compaction feeds the segment store so the rewritten file
    /// preserves every entry's tenant tag.
    pub fn snapshot_lru_order_with_owners(&self) -> Vec<(K, V, String)> {
        self.recency
            .values()
            .map(|key| {
                let (value, _, owner) = &self.map[key];
                let name = self.owners[*owner as usize].name.clone();
                (key.clone(), value.clone(), name)
            })
            .collect()
    }

    /// Per-owner accounting, in owner-registration order. Owners with no
    /// residency, reserve, or evictions yet still appear once registered
    /// (via an insert or [`Self::set_weights`]).
    pub fn owner_stats(&self) -> Vec<OwnerCacheStats> {
        self.owners
            .iter()
            .map(|slot| OwnerCacheStats {
                name: slot.name.clone(),
                entries: slot.count,
                reserved: slot.reserved,
                evictions: slot.evictions,
            })
            .collect()
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Counter snapshot of a [`SegmentStore`] (part of the `status` payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Entries replayed into the cache at startup.
    pub replayed: u64,
    /// Put records appended since startup.
    pub puts: u64,
    /// Tombstone records appended since startup.
    pub tombstones: u64,
    /// Dead records currently in the file (superseded/evicted puts and
    /// every tombstone) — the compaction pressure gauge.
    pub dead: u64,
    /// Keys the segment currently considers live.
    pub live: u64,
    /// Compactions performed since startup.
    pub compactions: u64,
    /// Current size of the segment file, in bytes.
    pub file_bytes: u64,
    /// Fsync barriers issued since startup (per the [`FsyncPolicy`]).
    pub fsyncs: u64,
    /// Records with an unknown kind skipped during replay — a segment
    /// written by a newer (or older) version stays loadable; the entries
    /// we cannot parse are simply not warmed.
    pub skipped_records: u64,
    /// The replication sequence number recorded by the newest compaction
    /// checkpoint in the file, if any (0 when none) — lets a restarted
    /// leader resume its publication counter past everything compacted.
    pub checkpoint_seq: u64,
}

/// The write-through persistent half of the result cache: an append-only
/// segment file of `P`ut and `D`elete records, plus tenant-tagged `T` puts.
///
/// Record framing is a header line with length prefixes, then the exact
/// payload bytes (which may themselves contain anything):
///
/// ```text
/// P <view-hash-hex> <params-bytes> <result-bytes>\n<params>\n<result>\n
/// D <view-hash-hex> <params-bytes>\n<params>\n
/// C <seq>\n
/// T <view-hash-hex> <blob-bytes>\n<tenant>\n<params>\n<result>\n
/// ```
///
/// `C` is a compaction checkpoint: appended right after a compaction (and
/// streamed to replication followers), it carries the replication sequence
/// number at that point so a restarted leader resumes its counter instead
/// of reissuing sequence numbers followers have already seen. Replay treats
/// it as metadata — it neither adds an entry nor counts as dead weight.
///
/// `T` is a put owned by a non-default tenant: its single length prefix
/// covers the whole `tenant\nparams\nresult` blob, so even a reader that
/// predates the kind can skip the record wholesale. Default-tenant puts
/// keep the legacy `P` encoding — a single-tenant deployment's segment is
/// byte-identical before and after tenancy, in both directions.
///
/// Replay is forward compatible: an *unknown* record kind whose framing is
/// intact (a header whose final field is the payload length, or a bare
/// metadata line) is skipped and counted in
/// [`PersistStats::skipped_records`] rather than treated as corruption;
/// only a record that cannot be framed truncates the tail.
///
/// The store tracks which keys are live so it can count dead records; the
/// in-memory [`LruCache`] stays the authority on residency, and the server
/// keeps the two in lockstep (insert → put, evict → tombstone).
#[derive(Debug)]
pub struct SegmentStore {
    path: PathBuf,
    file: File,
    live: HashSet<CacheKey>,
    dead_threshold: u64,
    replayed: u64,
    puts: u64,
    tombstones: u64,
    dead: u64,
    compactions: u64,
    file_bytes: u64,
    policy: FsyncPolicy,
    /// Whether bytes have been appended since the last sync barrier.
    dirty: bool,
    last_sync: Instant,
    fsyncs: u64,
    skipped: u64,
    checkpoint_seq: u64,
}

/// One entry surviving a segment replay: `(key, result, tenant)`, in
/// append order — ready for [`LruCache::insert_for`].
pub type ReplayedEntry = (CacheKey, String, String);

impl SegmentStore {
    /// Opens (creating if absent) the segment at `path` and replays it,
    /// returning the store plus the surviving [`ReplayedEntry`] rows in
    /// append order — the caller inserts them into its
    /// [`LruCache`] in that order, which reconstructs the pre-restart
    /// recency ranking *and* the per-tenant accounting. A torn tail record
    /// (crash mid-append) is truncated away; whole records of an unknown
    /// kind are skipped and counted, not treated as corruption.
    ///
    /// `dead_threshold` is the number of dead records that triggers
    /// compaction (see [`Self::should_compact`]); `policy` decides when
    /// appends are fsynced (see [`FsyncPolicy`]).
    pub fn open(
        path: impl Into<PathBuf>,
        dead_threshold: u64,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Self, Vec<ReplayedEntry>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        // Replay: keep the *last* put per key (tagged with its record
        // index, so append order — and with it the recency ranking — can
        // be reconstructed by one sort at the end; maintaining an ordered
        // list during the scan would be O(dead × live)), and drop
        // tombstoned keys.
        let mut latest: HashMap<CacheKey, (u64, String, String)> = HashMap::new();
        let mut records: u64 = 0;
        let mut skipped = 0u64;
        let mut checkpoint_seq = 0u64;
        let mut good = 0usize; // offset after the last whole record
        let mut pos = 0usize;
        while pos < bytes.len() {
            match parse_record(&bytes, pos) {
                Parsed::Rec(record, next) => {
                    match record {
                        Record::Put(key, text, tenant) => {
                            records += 1;
                            latest.insert(key, (records, text, tenant));
                        }
                        Record::Delete(key) => {
                            records += 1;
                            latest.remove(&key);
                        }
                        // Metadata, not data: remember the newest one, and
                        // keep it out of the dead-record arithmetic.
                        Record::Checkpoint(seq) => checkpoint_seq = checkpoint_seq.max(seq),
                    }
                    pos = next;
                    good = next;
                }
                // A whole record from a foreign version: step over it.
                Parsed::Skipped(next) => {
                    skipped += 1;
                    pos = next;
                    good = next;
                }
                Parsed::Torn => break, // torn tail
            }
        }
        if good < bytes.len() {
            // Cut the torn record off so the next append starts clean.
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::End(0))?;

        let mut ordered: Vec<(u64, CacheKey, String, String)> = latest
            .into_iter()
            .map(|(key, (seq, text, tenant))| (seq, key, text, tenant))
            .collect();
        ordered.sort_unstable_by_key(|(seq, _, _, _)| *seq);
        let entries: Vec<(CacheKey, String, String)> = ordered
            .into_iter()
            .map(|(_, key, text, tenant)| (key, text, tenant))
            .collect();
        let live: HashSet<CacheKey> = entries.iter().map(|(k, _, _)| k.clone()).collect();
        let store = SegmentStore {
            path,
            file,
            dead_threshold,
            replayed: entries.len() as u64,
            puts: 0,
            tombstones: 0,
            dead: records - entries.len() as u64,
            live,
            compactions: 0,
            file_bytes: good as u64,
            policy,
            dirty: false,
            last_sync: Instant::now(),
            fsyncs: 0,
            skipped,
            checkpoint_seq,
        };
        Ok((store, entries))
    }

    /// Issues one fsync barrier (`fdatasync`-grade) and resets the dirty
    /// window. Not a full `sync_all`: the file's length only grows, and
    /// metadata is settled by the shutdown [`Self::flush`].
    fn sync_now(&mut self) -> std::io::Result<()> {
        // Re-arm the window before attempting: a persistently failing
        // fsync (classic post-EIO disk behavior) keeps `dirty` set, and
        // if `last_sync` stayed stale too, [`Self::sync_due_in`] would
        // report permanently-due and the event loop — whose wait timeout
        // it bounds — would spin retrying at full speed. This way a
        // failing barrier is retried once per interval, not per round.
        self.last_sync = Instant::now();
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.dirty = false;
        Ok(())
    }

    /// Applies the fsync policy after an append: `always` syncs here;
    /// `interval` syncs once the window has elapsed (the event loop's
    /// [`Self::tick_sync`] covers the case where writes stop arriving).
    fn after_append(&mut self) -> std::io::Result<()> {
        self.dirty = true;
        match self.policy {
            FsyncPolicy::Always => self.sync_now(),
            FsyncPolicy::Interval(window) if self.last_sync.elapsed() >= window => self.sync_now(),
            FsyncPolicy::Interval(_) | FsyncPolicy::Off => Ok(()),
        }
    }

    /// How long until [`Self::tick_sync`] has work to do; `None` when
    /// nothing is dirty (or the policy never defers). The event loop uses
    /// this to bound its poller wait instead of sweeping on a clock.
    pub fn sync_due_in(&self) -> Option<Duration> {
        match self.policy {
            FsyncPolicy::Interval(window) if self.dirty => {
                Some(window.saturating_sub(self.last_sync.elapsed()))
            }
            _ => None,
        }
    }

    /// Interval-policy maintenance: syncs dirty appends whose window has
    /// elapsed. The server's event loop calls this between rounds so the
    /// last write of a burst is not left waiting for the next request.
    pub fn tick_sync(&mut self) -> std::io::Result<()> {
        if let FsyncPolicy::Interval(window) = self.policy {
            if self.dirty && self.last_sync.elapsed() >= window {
                return self.sync_now();
            }
        }
        Ok(())
    }

    /// Appends a put record (write-through on cache insert) under the
    /// default tenant — the legacy single-tenant entry point, kept so
    /// pre-tenancy callers and tests stay byte-compatible.
    pub fn record_put(&mut self, key: &CacheKey, result_text: &str) -> std::io::Result<()> {
        self.record_put_for(key, result_text, DEFAULT_TENANT)
    }

    /// Appends a put record owned by `tenant` (write-through on cache
    /// insert). The default tenant writes the legacy `P` encoding; any
    /// other tenant writes a self-framing `T` record. Re-putting a live
    /// key supersedes its previous record, which becomes dead weight.
    pub fn record_put_for(
        &mut self,
        key: &CacheKey,
        result_text: &str,
        tenant: &str,
    ) -> std::io::Result<()> {
        if !self.live.insert(key.clone()) {
            self.dead += 1; // the superseded put
        }
        let record = encode_put(key, result_text, tenant);
        self.file.write_all(&record)?;
        self.puts += 1;
        self.file_bytes += record.len() as u64;
        self.after_append()
    }

    /// Appends a tombstone (write-through on cache eviction). Both the
    /// tombstone and the put it kills are dead weight until compaction.
    pub fn record_evict(&mut self, key: &CacheKey) -> std::io::Result<()> {
        if self.live.remove(key) {
            self.dead += 1; // the evicted put
        }
        let record = encode_delete(key);
        self.file.write_all(&record)?;
        self.tombstones += 1;
        self.dead += 1; // the tombstone itself
        self.file_bytes += record.len() as u64;
        self.after_append()
    }

    /// Whether dead records have crossed the threshold (and outnumber the
    /// live entries, so compaction actually shrinks the file).
    pub fn should_compact(&self) -> bool {
        self.dead >= self.dead_threshold && self.dead > self.live.len() as u64
    }

    /// Rewrites the segment with only `entries` (the caller's live set as
    /// `(key, result, tenant)`, in the order replay should re-insert them
    /// — LRU first), atomically replacing the old file via a sibling temp
    /// file and rename, then appends a `C` checkpoint carrying
    /// `checkpoint_seq` (the replication publication counter at this
    /// point; pass 0 when replication is off). Unknown-kind records that
    /// replay skipped are dropped by the rewrite.
    pub fn compact<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (&'a CacheKey, &'a str, &'a str)>,
        checkpoint_seq: u64,
    ) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("compact");
        let mut tmp = File::create(&tmp_path)?;
        let mut live = HashSet::new();
        let mut written = 0u64;
        for (key, text, tenant) in entries {
            let record = encode_put(key, text, tenant);
            tmp.write_all(&record)?;
            written += record.len() as u64;
            live.insert(key.clone());
        }
        let checkpoint = encode_checkpoint(checkpoint_seq);
        tmp.write_all(&checkpoint)?;
        written += checkpoint.len() as u64;
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen the handle on the new file; the old one points at the
        // unlinked inode.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.live = live;
        self.dead = 0;
        self.compactions += 1;
        self.file_bytes = written;
        self.dirty = false;
        self.last_sync = Instant::now();
        self.checkpoint_seq = self.checkpoint_seq.max(checkpoint_seq);
        Ok(())
    }

    /// Flushes and fsyncs the segment (the graceful-shutdown barrier).
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        self.fsyncs += 1;
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            replayed: self.replayed,
            puts: self.puts,
            tombstones: self.tombstones,
            dead: self.dead,
            live: self.live.len() as u64,
            compactions: self.compactions,
            file_bytes: self.file_bytes,
            fsyncs: self.fsyncs,
            skipped_records: self.skipped,
            checkpoint_seq: self.checkpoint_seq,
        }
    }
}

enum Record {
    /// A put: key, serialized result, owning tenant.
    Put(CacheKey, String, String),
    Delete(CacheKey),
    Checkpoint(u64),
}

/// The outcome of parsing one record during replay.
enum Parsed {
    /// A record this version understands, and the offset just past it.
    Rec(Record, usize),
    /// A whole record of an unknown kind (foreign version); the offset
    /// just past it. Replay steps over it and counts it.
    Skipped(usize),
    /// A torn or corrupt record — replay stops and truncates here.
    Torn,
}

fn encode_put(key: &CacheKey, result_text: &str, tenant: &str) -> Vec<u8> {
    if tenant == DEFAULT_TENANT {
        // Legacy encoding: a default-tenant segment stays byte-identical
        // to one written before tenancy existed.
        let mut out = Vec::with_capacity(key.params.len() + result_text.len() + 64);
        out.extend_from_slice(
            format!(
                "P {:032x} {} {}\n",
                key.view,
                key.params.len(),
                result_text.len()
            )
            .as_bytes(),
        );
        out.extend_from_slice(key.params.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(result_text.as_bytes());
        out.push(b'\n');
        return out;
    }
    // Tenant-tagged put. One length prefix covers the whole
    // tenant\nparams\nresult blob, so the header's *final* field is the
    // payload length — exactly the shape the unknown-kind skipper
    // understands, which is what makes `T` backward compatible: an old
    // reader skips it instead of truncating.
    let blob_len = tenant.len() + 1 + key.params.len() + 1 + result_text.len();
    let mut out = Vec::with_capacity(blob_len + 48);
    out.extend_from_slice(format!("T {:032x} {blob_len}\n", key.view).as_bytes());
    out.extend_from_slice(tenant.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(key.params.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(result_text.as_bytes());
    out.push(b'\n');
    out
}

fn encode_delete(key: &CacheKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.params.len() + 48);
    out.extend_from_slice(format!("D {:032x} {}\n", key.view, key.params.len()).as_bytes());
    out.extend_from_slice(key.params.as_bytes());
    out.push(b'\n');
    out
}

fn encode_checkpoint(seq: u64) -> Vec<u8> {
    format!("C {seq}\n").into_bytes()
}

/// Parses one record starting at `pos`: a known record, a skippable
/// unknown one, or a torn/corrupt record (replay stops and truncates).
fn parse_record(bytes: &[u8], pos: usize) -> Parsed {
    let Some(newline) = bytes[pos..].iter().position(|&b| b == b'\n') else {
        return Parsed::Torn;
    };
    let header_end = pos + newline;
    let Ok(header) = std::str::from_utf8(&bytes[pos..header_end]) else {
        return Parsed::Torn;
    };
    let kind = header.split(' ').next().unwrap_or("");
    match kind {
        "P" | "D" | "C" | "T" => match parse_known(kind, header, bytes, header_end) {
            Some(parsed) => Parsed::Rec(parsed.0, parsed.1),
            None => Parsed::Torn,
        },
        _ => parse_unknown(kind, header, bytes, header_end),
    }
}

/// Parses the body of a record whose kind this version understands.
fn parse_known(
    kind: &str,
    header: &str,
    bytes: &[u8],
    header_end: usize,
) -> Option<(Record, usize)> {
    let mut fields = header.split(' ');
    fields.next(); // the kind, already dispatched on
    if kind == "C" {
        let seq: u64 = fields.next()?.parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        return Some((Record::Checkpoint(seq), header_end + 1));
    }
    let view = u128::from_str_radix(fields.next()?, 16).ok()?;
    let first_len: usize = fields.next()?.parse().ok()?;
    let take = |start: usize, len: usize| -> Option<(String, usize)> {
        let end = start.checked_add(len)?;
        if end >= bytes.len() || bytes[end] != b'\n' {
            return None;
        }
        let text = String::from_utf8(bytes[start..end].to_vec()).ok()?;
        Some((text, end + 1))
    };
    match kind {
        "P" => {
            let result_len: usize = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None;
            }
            let (params, after_params) = take(header_end + 1, first_len)?;
            let (result, next) = take(after_params, result_len)?;
            Some((
                Record::Put(CacheKey { view, params }, result, DEFAULT_TENANT.to_owned()),
                next,
            ))
        }
        "D" => {
            if fields.next().is_some() {
                return None;
            }
            let (params, next) = take(header_end + 1, first_len)?;
            Some((Record::Delete(CacheKey { view, params }), next))
        }
        "T" => {
            if fields.next().is_some() {
                return None;
            }
            let (blob, next) = take(header_end + 1, first_len)?;
            let (tenant, rest) = blob.split_once('\n')?;
            let (params, result) = rest.split_once('\n')?;
            Some((
                Record::Put(
                    CacheKey {
                        view,
                        params: params.to_owned(),
                    },
                    result.to_owned(),
                    tenant.to_owned(),
                ),
                next,
            ))
        }
        _ => None,
    }
}

/// Decides whether an unknown record kind can be stepped over. The rule
/// every future kind must honor (and `T` does): an alphabetic kind tag,
/// and either a header whose *final* field is the byte length of a single
/// newline-terminated payload, or a bare header line with no payload
/// (non-numeric fields — metadata like `C`). Anything else is
/// indistinguishable from corruption and truncates as a torn tail.
fn parse_unknown(kind: &str, header: &str, bytes: &[u8], header_end: usize) -> Parsed {
    if kind.is_empty() || !kind.chars().all(|c| c.is_ascii_alphabetic()) {
        return Parsed::Torn;
    }
    let last = header.split(' ').next_back().unwrap_or("");
    if last != kind {
        if let Ok(len) = last.parse::<usize>() {
            let start = header_end + 1;
            let Some(end) = start.checked_add(len) else {
                return Parsed::Torn;
            };
            if end < bytes.len() && bytes[end] == b'\n' {
                return Parsed::Skipped(end + 1);
            }
            return Parsed::Torn;
        }
    }
    // No payload length to honor: a metadata-style header-only record.
    Parsed::Skipped(header_end + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        assert_eq!(cache.get(&"a"), None);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"b"), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        let mut cache: LruCache<&str, i32> = LruCache::new(3);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        // Touch "a" so "b" is now the least recently used.
        assert_eq!(cache.get(&"a"), Some(1));
        cache.insert("d", 4);
        assert!(!cache.contains(&"b"), "b was LRU and must be evicted");
        assert!(cache.contains(&"a"));
        assert!(cache.contains(&"c"));
        assert!(cache.contains(&"d"));
        assert_eq!(cache.stats().evictions, 1);

        // Next eviction takes "c" (oldest untouched), not "a".
        cache.insert("e", 5);
        assert!(!cache.contains(&"c"));
        assert!(cache.contains(&"a"));
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinserting_replaces_and_freshens() {
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10); // replace, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(&"a"), Some(10));
        // "b" is LRU now ("a" was freshened twice).
        cache.insert("c", 3);
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"a"));
    }

    #[test]
    fn zero_capacity_disables_residency() {
        let mut cache: LruCache<&str, i32> = LruCache::new(0);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn heavy_traffic_keeps_entries_at_capacity() {
        let mut cache: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..1000u32 {
            cache.insert(i, i);
            // The most recent 8 inserts are always resident.
            assert!(cache.contains(&i));
            assert!(cache.stats().entries <= 8);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.evictions, 1000 - 8);
        for survivor in 992..1000 {
            assert!(cache.contains(&survivor));
        }
    }

    #[test]
    fn insert_reports_the_evicted_entry() {
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        assert_eq!(cache.insert("a", 1), None);
        assert_eq!(cache.insert("b", 2), None);
        assert_eq!(cache.insert("a", 10), None, "replacement evicts nothing");
        assert_eq!(cache.insert("c", 3), Some(("b", 2)), "b was LRU");
    }

    #[test]
    fn snapshot_is_in_lru_order() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("c", 3);
        cache.get(&"a"); // freshen: order is now b, c, a
        let order: Vec<&str> = cache
            .snapshot_lru_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(order, vec!["b", "c", "a"]);
    }

    fn key(n: u32) -> CacheKey {
        CacheKey {
            view: 0xfeed_0000 + u128::from(n),
            params: format!("refine|hybrid|cov|{n}|1/2|||"),
        }
    }

    fn temp_segment(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("strudel-segment-{tag}-{}.log", std::process::id()))
    }

    #[test]
    fn segment_replays_puts_in_order_and_drops_tombstoned_keys() {
        let path = temp_segment("replay");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
            assert!(entries.is_empty());
            store.record_put(&key(1), "{\"outcome\":\"one\"}").unwrap();
            store.record_put(&key(2), "{\"outcome\":\"two\"}").unwrap();
            store
                .record_put(&key(3), "{\"outcome\":\"three\"}")
                .unwrap();
            store.record_evict(&key(2)).unwrap();
            // Supersede key 1: the replayed value must be the newest.
            store
                .record_put(&key(1), "{\"outcome\":\"one-v2\"}")
                .unwrap();
            store.flush().unwrap();
            assert_eq!(store.stats().live, 2);
            assert_eq!(store.stats().tombstones, 1);
            // Dead: superseded put of 1, evicted put of 2, the tombstone.
            assert_eq!(store.stats().dead, 3);
        }
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(store.stats().replayed, 2);
        assert_eq!(store.stats().dead, 3, "replay recounts dead records");
        // Key 3 was last untouched, key 1 was re-put after it.
        assert_eq!(entries[0].0, key(3));
        assert_eq!(entries[1].0, key(1));
        assert_eq!(entries[1].1, "{\"outcome\":\"one-v2\"}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_records_are_truncated_on_replay() {
        let path = temp_segment("torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
            store.record_put(&key(1), "{\"ok\":1}").unwrap();
            store.record_put(&key(2), "{\"ok\":2}").unwrap();
            store.flush().unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 1, "the torn record is dropped");
        assert_eq!(entries[0].0, key(1));
        // The file was truncated back to the last whole record, so a fresh
        // append + replay works.
        drop(store);
        let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        store.record_put(&key(3), "{\"ok\":3}").unwrap();
        store.flush().unwrap();
        drop(store);
        let (_, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_dead_weight_and_preserves_live_entries() {
        let path = temp_segment("compact");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        // Churn one key while keeping another live.
        store.record_put(&key(1), "{\"keep\":true}").unwrap();
        for round in 0..5 {
            store
                .record_put(&key(2), &format!("{{\"round\":{round}}}"))
                .unwrap();
            store.record_evict(&key(2)).unwrap();
        }
        assert!(store.should_compact(), "{:?}", store.stats());
        let before = store.stats().file_bytes;

        let live = [(key(1), "{\"keep\":true}"), (key(2), "{\"round\":4}")];
        store
            .compact(live.iter().map(|(k, v)| (k, *v, DEFAULT_TENANT)), 41)
            .unwrap();
        let stats = store.stats();
        assert_eq!(stats.dead, 0);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.live, 2);
        assert!(stats.file_bytes < before, "compaction must shrink the file");
        assert!(!store.should_compact());

        // Appends after compaction land in the renamed file and replay.
        store.record_put(&key(7), "{\"late\":true}").unwrap();
        store.flush().unwrap();
        drop(store);
        let (store, entries) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        let keys: Vec<&CacheKey> = entries.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![&key(1), &key(2), &key(7)]);
        // The checkpoint written by the compaction above replays too.
        assert_eq!(store.stats().checkpoint_seq, 41);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacting_an_empty_segment_is_a_noop_with_a_checkpoint() {
        let path = temp_segment("compact-empty");
        std::fs::remove_file(&path).ok();
        let (mut store, entries) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        assert!(entries.is_empty());
        store.compact(std::iter::empty(), 5).unwrap();
        let stats = store.stats();
        assert_eq!(stats.live, 0);
        assert_eq!(stats.dead, 0);
        assert_eq!(stats.compactions, 1);
        drop(store);
        // The file holds only the checkpoint; replay yields no entries and
        // the checkpoint's sequence number.
        let (store, entries) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        assert!(entries.is_empty());
        assert_eq!(store.stats().checkpoint_seq, 5);
        assert_eq!(store.stats().dead, 0, "a checkpoint is not dead weight");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_tombstone_segments_compact_to_nothing() {
        let path = temp_segment("compact-tombstones");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 2, FsyncPolicy::Off).unwrap();
        for n in 0..4 {
            store.record_put(&key(n), "{\"gone\":true}").unwrap();
            store.record_evict(&key(n)).unwrap();
        }
        assert_eq!(store.stats().live, 0);
        assert!(store.should_compact(), "{:?}", store.stats());
        store.compact(std::iter::empty(), 8).unwrap();
        let after = store.stats().file_bytes;
        drop(store);
        let (store, entries) = SegmentStore::open(&path, 2, FsyncPolicy::Off).unwrap();
        assert!(entries.is_empty(), "nothing was live");
        assert_eq!(store.stats().file_bytes, after);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_mid_eviction_burst_keeps_disk_and_memory_in_lockstep() {
        // Drive the store exactly the way the server does — every cache
        // insert is a put, every eviction a tombstone — with a compaction
        // landing in the middle of the burst, and check that a replay
        // reconstructs precisely the cache's resident set in LRU order.
        let path = temp_segment("compact-burst");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        let mut cache: LruCache<CacheKey, String> = LruCache::new(3);
        let drive = |store: &mut SegmentStore, cache: &mut LruCache<CacheKey, String>, n| {
            let text = format!("{{\"n\":{n}}}");
            let evicted = cache.insert(key(n), text.clone());
            store.record_put(&key(n), &text).unwrap();
            if let Some((victim, _)) = evicted {
                store.record_evict(&victim).unwrap();
            }
        };
        for n in 0..8 {
            drive(&mut store, &mut cache, n);
        }
        assert!(store.should_compact(), "{:?}", store.stats());
        let snapshot = cache.snapshot_lru_order_with_owners();
        store
            .compact(
                snapshot.iter().map(|(k, v, t)| (k, v.as_str(), t.as_str())),
                8,
            )
            .unwrap();
        // The burst keeps going after the compaction.
        for n in 8..14 {
            drive(&mut store, &mut cache, n);
        }
        store.flush().unwrap();
        assert_eq!(store.stats().live, 3);
        drop(store);
        let (_, entries) = SegmentStore::open(&path, 4, FsyncPolicy::Off).unwrap();
        let replayed: Vec<&CacheKey> = entries.iter().map(|(k, _, _)| k).collect();
        let resident: Vec<CacheKey> = cache
            .snapshot_lru_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(replayed, resident.iter().collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_handles_a_segment_whose_final_record_is_a_checkpoint() {
        let path = temp_segment("final-checkpoint");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        store.record_put(&key(1), "{\"ok\":1}").unwrap();
        store.record_put(&key(2), "{\"ok\":2}").unwrap();
        let live = [(key(1), "{\"ok\":1}"), (key(2), "{\"ok\":2}")];
        // compact() appends the checkpoint last, so the file now *ends* in
        // a C record.
        store
            .compact(live.iter().map(|(k, v)| (k, *v, DEFAULT_TENANT)), 77)
            .unwrap();
        drop(store);
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(store.stats().checkpoint_seq, 77);
        assert_eq!(store.stats().replayed, 2);
        // A torn checkpoint (crash mid-append) truncates cleanly too.
        drop(store);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 2, "the torn checkpoint drops, data stays");
        assert_eq!(store.stats().checkpoint_seq, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policies_count_their_barriers() {
        let path = temp_segment("fsync-always");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Always).unwrap();
        store.record_put(&key(1), "{\"a\":1}").unwrap();
        store.record_put(&key(2), "{\"b\":2}").unwrap();
        store.record_evict(&key(1)).unwrap();
        assert_eq!(store.stats().fsyncs, 3, "always syncs every append");
        drop(store);
        std::fs::remove_file(&path).ok();

        let path = temp_segment("fsync-interval");
        std::fs::remove_file(&path).ok();
        let (mut store, _) =
            SegmentStore::open(&path, 1024, FsyncPolicy::Interval(Duration::from_millis(5)))
                .unwrap();
        store.record_put(&key(1), "{\"a\":1}").unwrap();
        assert_eq!(store.stats().fsyncs, 0, "inside the window: no barrier");
        std::thread::sleep(Duration::from_millis(10));
        store.tick_sync().unwrap();
        assert_eq!(store.stats().fsyncs, 1, "the tick flushes the dirty window");
        store.tick_sync().unwrap();
        assert_eq!(store.stats().fsyncs, 1, "a clean store does not re-sync");
        std::thread::sleep(Duration::from_millis(10));
        store.record_put(&key(2), "{\"b\":2}").unwrap();
        assert_eq!(store.stats().fsyncs, 2, "an elapsed window syncs on write");
        drop(store);
        std::fs::remove_file(&path).ok();

        let path = temp_segment("fsync-off");
        std::fs::remove_file(&path).ok();
        let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        store.record_put(&key(1), "{\"a\":1}").unwrap();
        store.tick_sync().unwrap();
        assert_eq!(store.stats().fsyncs, 0, "off never syncs in steady state");
        store.flush().unwrap();
        assert_eq!(store.stats().fsyncs, 1, "the shutdown barrier still runs");
        drop(store);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policies_parse_and_render_the_cli_notation() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(
            FsyncPolicy::default(),
            FsyncPolicy::Interval(Duration::from_millis(100))
        );
        for bad in ["", "sometimes", "interval:", "interval:x", "interval:0"] {
            assert!(FsyncPolicy::parse(bad).is_err(), "must reject '{bad}'");
        }
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(100)).to_string(),
            "interval:100"
        );
        assert_eq!(FsyncPolicy::Off.to_string(), "off");
    }

    #[test]
    fn remove_drops_residency_without_counting_an_eviction() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.remove(&"a"), Some(1));
        assert_eq!(cache.remove(&"a"), None);
        assert!(!cache.contains(&"a"));
        assert!(cache.contains(&"b"));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().entries, 1);
        // The recency index shrank with the map: a full refill works.
        cache.insert("c", 3);
        cache.insert("d", 4);
        cache.insert("e", 5);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn unweighted_owners_share_one_global_lru() {
        // Without set_weights every reserve is 0, so multi-owner traffic
        // must evict in exact global LRU order — the pre-tenancy policy.
        let mut cache: LruCache<&str, i32> = LruCache::new(2);
        cache.insert_for("alpha", "a1", 1);
        cache.insert_for("beta", "b1", 2);
        let evicted = cache.insert_for("beta", "b2", 3).expect("cache was full");
        assert_eq!(evicted.key, "a1", "global LRU ignores owners");
        assert_eq!(evicted.owner, "alpha");
        let evicted = cache.insert_for("alpha", "a2", 4).expect("cache was full");
        assert_eq!(evicted.key, "b1");
        assert_eq!(evicted.owner, "beta");
    }

    #[test]
    fn weighted_eviction_protects_a_reserved_share() {
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        cache.set_weights(&[("alpha".to_owned(), 1), ("beta".to_owned(), 1)]);
        // Beta fills its reserve (2 of 4), then alpha fills the rest.
        cache.insert_for("beta", "b1", 1);
        cache.insert_for("beta", "b2", 2);
        cache.insert_for("alpha", "a1", 3);
        cache.insert_for("alpha", "a2", 4);
        // Alpha floods: every victim must be alpha's own entry, because
        // beta sits exactly at its reserve. Beta's oldest entry "b1" is
        // the global LRU and would be the victim under the old policy.
        for (n, key) in ["a3", "a4", "a5"].iter().enumerate() {
            let evicted = cache
                .insert_for("alpha", key, 10 + n as i32)
                .expect("cache stays full");
            assert_eq!(
                evicted.owner, "alpha",
                "beta is at reserve; alpha eats its own tail"
            );
        }
        assert!(
            cache.contains(&"b1"),
            "beta's working set survives the flood"
        );
        assert!(cache.contains(&"b2"));
        let alpha = cache
            .owner_stats()
            .into_iter()
            .find(|s| s.name == "alpha")
            .unwrap();
        assert_eq!(alpha.evictions, 3, "alpha was charged its own evictions");

        // Conversely, an owner holding *more* than its reserve is the
        // eviction target even when its entries are not globally LRU.
        let mut cache: LruCache<&str, i32> = LruCache::new(4);
        cache.set_weights(&[("alpha".to_owned(), 3), ("beta".to_owned(), 1)]);
        cache.insert_for("beta", "b1", 1);
        cache.insert_for("beta", "b2", 2);
        cache.insert_for("alpha", "a1", 3);
        cache.insert_for("alpha", "a2", 4);
        let evicted = cache.insert_for("alpha", "a3", 5).expect("cache was full");
        assert_eq!(evicted.owner, "beta", "beta is over its reserve of 1");
        assert_eq!(evicted.key, "b1", "beta yields its own LRU entry");
    }

    #[test]
    fn weighted_eviction_invariant_holds_under_random_traffic() {
        // Property: whenever an eviction happens while *some* owner is
        // over its reserve, the victim's owner must itself be over its
        // reserve — a protected tenant is never pushed below its floor to
        // make room for a noisy one.
        use strudel_rdf::rng::StdRng;
        let owners = ["alpha", "beta", "gamma"];
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0x7e0a_0000 + seed);
            let mut cache: LruCache<u32, u32> = LruCache::new(12);
            cache.set_weights(&[
                ("alpha".to_owned(), 2),
                ("beta".to_owned(), 1),
                ("gamma".to_owned(), 1),
            ]);
            let mut next_key = 0u32;
            for _ in 0..600 {
                let owner = owners[rng.gen_range(0..owners.len())];
                if rng.gen_bool(0.3) {
                    // Touch a random (possibly absent) key: recency churn.
                    let probe = rng.gen_range(0..next_key.max(1));
                    cache.get(&probe);
                    continue;
                }
                let before = cache.owner_stats();
                let key = next_key;
                next_key += 1;
                if let Some(evicted) = cache.insert_for(owner, key, key) {
                    let any_over = before.iter().any(|s| s.entries > s.reserved);
                    if any_over {
                        let victim = before
                            .iter()
                            .find(|s| s.name == evicted.owner)
                            .expect("victim owner is registered");
                        assert!(
                            victim.entries > victim.reserved,
                            "seed {seed}: evicted {} (entries {} ≤ reserve {}) while another owner was over",
                            evicted.owner,
                            victim.entries,
                            victim.reserved
                        );
                    }
                }
                let stats = cache.stats();
                assert!(stats.entries <= 12);
            }
            // The reserves themselves are honored at rest: total reserve
            // never exceeds capacity, so everyone can hold their floor.
            let reserved: usize = cache.owner_stats().iter().map(|s| s.reserved).sum();
            assert!(reserved <= 12);
        }
    }

    #[test]
    fn tenant_tagged_records_roundtrip_and_survive_compaction() {
        let path = temp_segment("tenant-roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
            store
                .record_put_for(&key(1), "{\"who\":\"acme\"}", "acme")
                .unwrap();
            store.record_put(&key(2), "{\"who\":\"default\"}").unwrap();
            store
                .record_put_for(&key(3), "{\"who\":\"beta\"}", "beta-corp")
                .unwrap();
            store.flush().unwrap();
        }
        // Default-tenant puts keep the legacy P framing on disk.
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("\nP "), "default put uses the legacy kind");
        assert!(raw.starts_with("T "), "non-default put uses the T kind");

        let (mut store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        let tenants: Vec<&str> = entries.iter().map(|(_, _, t)| t.as_str()).collect();
        assert_eq!(tenants, vec!["acme", "default", "beta-corp"]);
        assert_eq!(entries[0].1, "{\"who\":\"acme\"}");
        assert_eq!(store.stats().skipped_records, 0);

        // Compaction rewrites each entry under its own tenant.
        store
            .compact(
                entries.iter().map(|(k, v, t)| (k, v.as_str(), t.as_str())),
                9,
            )
            .unwrap();
        drop(store);
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        let tenants: Vec<&str> = entries.iter().map(|(_, _, t)| t.as_str()).collect();
        assert_eq!(tenants, vec!["acme", "default", "beta-corp"]);
        assert_eq!(store.stats().checkpoint_seq, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_record_kinds_are_skipped_and_counted_not_fatal() {
        let path = temp_segment("unknown-kinds");
        std::fs::remove_file(&path).ok();
        {
            let (mut store, _) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
            store.record_put(&key(1), "{\"ok\":1}").unwrap();
            store.flush().unwrap();
        }
        // Splice in two records from an imaginary future version: one
        // payload-framed (final header field = payload length), one a
        // bare metadata line — then a record this version does know.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"X 00000000000000000000000000000042 5\nhello\n");
        bytes.extend_from_slice(b"Z lease holder-a\n");
        std::fs::write(&path, &bytes).unwrap();
        {
            let (mut store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
            assert_eq!(
                entries.len(),
                1,
                "known records replay around the foreign ones"
            );
            assert_eq!(store.stats().skipped_records, 2);
            // The file was NOT truncated: appends land after the foreign
            // records, which stay intact for the version that wrote them.
            assert_eq!(store.stats().file_bytes, bytes.len() as u64);
            store.record_put(&key(2), "{\"ok\":2}").unwrap();
            store.flush().unwrap();
        }
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 2, "records after the skipped ones replay");
        assert_eq!(entries[1].0, key(2));
        assert_eq!(store.stats().skipped_records, 2);

        // An unknown kind with *broken* framing is still a torn tail.
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        let whole = bytes.len();
        bytes.extend_from_slice(b"Q 999\nshort");
        std::fs::write(&path, &bytes).unwrap();
        let (store, entries) = SegmentStore::open(&path, 1024, FsyncPolicy::Off).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(
            store.stats().file_bytes,
            whole as u64,
            "the unframeable record is truncated away"
        );
        std::fs::remove_file(&path).ok();
    }
}
