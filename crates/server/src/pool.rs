//! A fixed-size compute pool.
//!
//! The event loop handles all I/O on one thread; solving is CPU-bound and
//! must not run there. Every solve is submitted through this pool as a
//! fire-and-forget job that reports back through the server's completion
//! queue (plus an unpark), so at most `workers` ILP/greedy searches run
//! concurrently no matter how many clients are connected — the pool is the
//! server's admission control.

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing submitted closures.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|idx| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("strudel-worker-{idx}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("worker queue lock");
                            guard.recv()
                        };
                        match job {
                            // A panicking job must not take the worker
                            // thread with it: swallow the unwind (the job's
                            // result channel is dropped, which the submitter
                            // observes as a failure) and keep serving.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // all senders dropped: shut down
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            handles,
            workers,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queues a fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is alive until dropped")
            .send(Box::new(job))
            .expect("workers outlive the pool handle");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker's recv() fail and exit.
        drop(self.sender.take());
        for handle in self.handles.drain(..) {
            // A worker that panicked is already gone; joining its handle
            // yields Err, which is fine during teardown.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::Receiver;
    use std::time::Duration;

    /// Submit-and-wait, the way the server composes `submit` with its
    /// completion channel. `None` means the job panicked (the sender is
    /// dropped without a send).
    fn run<R: Send + 'static>(
        pool: &WorkerPool,
        job: impl FnOnce() -> R + Send + 'static,
    ) -> Option<R> {
        let (tx, rx): (Sender<R>, Receiver<R>) = channel();
        pool.submit(move || {
            let result = job();
            let _ = tx.send(result);
        });
        rx.recv().ok()
    }

    #[test]
    fn jobs_run_and_return_results() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        assert_eq!(run(&pool, || 2 + 2), Some(4));
        assert_eq!(run(&pool, || "hello".to_owned()), Some("hello".to_owned()));
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(run(&pool, || 1), Some(1));
    }

    #[test]
    fn concurrency_is_bounded_by_the_pool_size() {
        let pool = Arc::new(WorkerPool::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let in_flight = Arc::clone(&in_flight);
            let peak = Arc::clone(&peak);
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                run(&pool, move || {
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            }));
        }
        for join in joins {
            join.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "at most 2 jobs may run concurrently, saw {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn a_panicking_job_reports_none_and_spares_the_worker() {
        // Even with a single worker, a panicking job is contained: the
        // submitter sees None and the worker thread keeps serving.
        let pool = WorkerPool::new(1);
        assert_eq!(run(&pool, || -> i32 { panic!("job explodes") }), None);
        assert_eq!(run(&pool, || 7), Some(7));
    }
}
