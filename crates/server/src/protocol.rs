//! The line-delimited JSON protocol of the refinement service.
//!
//! Every request and every response is one JSON object on one line. Five
//! operations exist:
//!
//! * `refine` — decide one `(view, σ, k, θ)` instance and return the witness
//!   refinement if one exists,
//! * `highest-theta` — the highest threshold reachable with at most `k`
//!   implicit sorts (Section 7's first search strategy),
//! * `lowest-k` — the smallest `k` meeting a threshold (the second),
//! * `status` — server counters: per-op request totals, cache
//!   hit/miss/eviction counts, single-flight shares, worker count,
//! * `shutdown` — stop accepting connections and exit.
//!
//! A solve request looks like:
//!
//! ```json
//! {"op":"refine","view":{"properties":["http://ex/name","http://ex/email"],
//!  "signatures":[[[0],9],[[0,1],1]]},"rule":"cov","engine":"hybrid",
//!  "k":2,"theta":"1/2"}
//! ```
//!
//! and every response is `{"ok":true,"op":…,"source":…,"result":…}` or
//! `{"ok":false,"error":…}`. `source` is `"solved"` (computed by a worker),
//! `"cache"` (replayed from the result cache), or `"coalesced"` (shared a
//! concurrent identical solve via single-flight). The `result` bytes of a
//! cache or coalesced response are byte-identical to the cold response's,
//! because the server caches the serialized text, not the value.
//!
//! ## The batch envelope
//!
//! One line may carry many requests, amortizing framing and syscalls:
//!
//! ```json
//! {"op":"batch","requests":[{"op":"refine",…},{"op":"status"}]}
//! ```
//!
//! The response is `{"ok":true,"op":"batch","results":[…]}` with one
//! element per request **in request order**, each element being exactly
//! the envelope the request would have received on its own line. Elements
//! are decoded, cache-looked-up, and single-flighted independently, so a
//! malformed or failing element yields an `{"ok":false,…}` element without
//! poisoning its siblings, and a mixed hit/miss batch serves the hits
//! immediately while the misses solve. Batches do not nest, `shutdown` is
//! not allowed inside one (its connection-and-server-wide effect has no
//! per-element meaning), and at most [`MAX_BATCH_REQUESTS`] elements are
//! accepted per envelope.
//!
//! Numbers are integers only; exact rationals (σ values, thresholds) travel
//! as canonical strings like `"3/4"`. Requests normalise before keying the
//! cache — `"0.5"` and `"1/2"`, or a rule spelled `COV`, all map to the same
//! entry.

use std::fmt;
use std::time::Duration;

use strudel_core::engine::{
    GreedyEngine, HybridEngine, IlpEngine, IlpEngineConfig, RefinementEngine,
};
use strudel_core::sigma::{parse_spec, SigmaSpec};
use strudel_core::wire::{
    WireEnvelope, WireHighestTheta, WireLowestK, WireOutcome, WireRefinement, WireSort,
};

pub use strudel_core::wire::{
    validate_tenant, NotLeader, OverQuota, ReplRecord, ShardRing, ShardSpec, ShardStamp, Source,
    WrongShard, DEFAULT_TENANT,
};
use strudel_rdf::signature::SignatureView;
use strudel_rules::prelude::Ratio;

use crate::json::{self, Json};

/// The three operations that run a solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveOp {
    /// Decide one `(view, σ, k, θ)` instance.
    Refine,
    /// Highest θ with at most `k` sorts.
    HighestTheta,
    /// Lowest `k` meeting θ.
    LowestK,
}

impl SolveOp {
    /// The wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            SolveOp::Refine => "refine",
            SolveOp::HighestTheta => "highest-theta",
            SolveOp::LowestK => "lowest-k",
        }
    }
}

/// Which engine family solves the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Greedy first, ILP to confirm infeasibility (the default).
    Hybrid,
    /// The paper's ILP encoding and branch & bound, exact.
    Ilp,
    /// The greedy baseline only; cannot prove infeasibility.
    Greedy,
}

impl EngineKind {
    /// The wire name of the engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Hybrid => "hybrid",
            EngineKind::Ilp => "ilp",
            EngineKind::Greedy => "greedy",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Result<Self, ProtocolError> {
        match text.to_ascii_lowercase().as_str() {
            "hybrid" => Ok(EngineKind::Hybrid),
            "ilp" => Ok(EngineKind::Ilp),
            "greedy" => Ok(EngineKind::Greedy),
            other => Err(ProtocolError::new(format!(
                "unknown engine '{other}'; expected hybrid, ilp, or greedy"
            ))),
        }
    }

    /// Builds a fresh engine instance. Engines are cheap stateless structs;
    /// the server constructs one per job inside the worker thread.
    pub fn build(self, time_limit: Option<Duration>) -> Box<dyn RefinementEngine> {
        let ilp_config = IlpEngineConfig {
            time_limit,
            ..IlpEngineConfig::default()
        };
        match self {
            EngineKind::Hybrid => Box::new(HybridEngine::with_engines(
                GreedyEngine::new(),
                IlpEngine::with_config(ilp_config),
            )),
            EngineKind::Ilp => Box::new(IlpEngine::with_config(ilp_config)),
            EngineKind::Greedy => Box::new(GreedyEngine::new()),
        }
    }
}

/// A fully decoded, validated solve request.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Which search to run.
    pub op: SolveOp,
    /// The signature view of the dataset.
    pub view: SignatureView,
    /// The structuredness function.
    pub spec: SigmaSpec,
    /// The engine family.
    pub engine: EngineKind,
    /// `k` — required for `refine` and `highest-theta`.
    pub k: Option<usize>,
    /// θ — required for `refine` and `lowest-k`.
    pub theta: Option<Ratio>,
    /// Threshold increment for `highest-theta` (defaults to 1/100).
    pub step: Option<Ratio>,
    /// Sweep bound for `lowest-k` (defaults to the signature count).
    pub max_k: Option<usize>,
    /// Per-instance engine time limit.
    pub time_limit: Option<Duration>,
    /// Shard-routing metadata a cluster router stamps on the request
    /// (`"shard"`/`"epoch"` wire fields). Not part of the cache key — it
    /// describes where the request travels, not what it asks — and ignored
    /// by unsharded servers; a sharded server validates it on dispatch.
    pub routing: Option<ShardStamp>,
    /// The tenant issuing the request (`"tenant"` wire field). `None` is
    /// the default tenant — decode normalises an explicit `"default"` to
    /// `None`, so the two spellings are one identity everywhere. Unlike
    /// the routing stamp this *is* part of the cache key: tenants are
    /// namespaces, and two tenants asking the same question own separate
    /// entries (and separate single-flights).
    pub tenant: Option<String>,
}

/// The key of a solve request in the result cache: the content hash of the
/// view plus the canonical text of every solver-relevant parameter. The
/// params string is kept verbatim, so two requests collide only when their
/// parameters are genuinely equal *and* their views share the 128-bit
/// content hash — exact except for an accidental hash collision, which the
/// 128-bit width makes negligible (see [`SignatureView::cache_key`] for the
/// trust caveat).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`SignatureView::cache_key`] of the request's view.
    pub view: u128,
    /// Canonical `op|engine|rule|k|theta|step|max_k|time_limit` text, with
    /// a `|tenant=<id>` suffix for non-default tenants (the default tenant
    /// keeps the bare form, so pre-tenancy keys — and the segments built
    /// from them — stay byte-identical).
    pub params: String,
}

impl SolveRequest {
    /// The request's cache key, built from canonical forms so spelling
    /// variants (`"0.5"` vs `"1/2"`, `COV` vs `cov`) share one entry.
    pub fn cache_key(&self) -> CacheKey {
        let fmt_ratio = |r: &Option<Ratio>| r.map(|r| r.to_string()).unwrap_or_default();
        let fmt_usize = |n: &Option<usize>| n.map(|n| n.to_string()).unwrap_or_default();
        let mut params = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.op.name(),
            self.engine.name(),
            self.spec.spec_string(),
            fmt_usize(&self.k),
            fmt_ratio(&self.theta),
            fmt_ratio(&self.step),
            fmt_usize(&self.max_k),
            self.time_limit
                .map(|d| d.as_millis().to_string())
                .unwrap_or_default(),
        );
        if let Some(tenant) = &self.tenant {
            // Tenants are namespaces: the suffix keeps their entries
            // apart. The default tenant stays suffix-free so existing
            // segments replay onto the same keys.
            params.push_str("|tenant=");
            params.push_str(tenant);
        }
        CacheKey {
            view: self.view.cache_key(),
            params,
        }
    }

    /// Encodes the request as its wire object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("op".to_owned(), Json::str(self.op.name())),
            ("view".to_owned(), view_to_json(&self.view)),
            ("rule".to_owned(), Json::str(self.spec.spec_string())),
            ("engine".to_owned(), Json::str(self.engine.name())),
        ];
        if let Some(k) = self.k {
            members.push(("k".to_owned(), Json::Int(k as i64)));
        }
        if let Some(theta) = self.theta {
            members.push(("theta".to_owned(), Json::str(theta.to_string())));
        }
        if let Some(step) = self.step {
            members.push(("step".to_owned(), Json::str(step.to_string())));
        }
        if let Some(max_k) = self.max_k {
            members.push(("max_k".to_owned(), Json::Int(max_k as i64)));
        }
        if let Some(limit) = self.time_limit {
            members.push((
                "time_limit_ms".to_owned(),
                Json::Int(limit.as_millis() as i64),
            ));
        }
        if let Some(stamp) = self.routing {
            members.push(("shard".to_owned(), Json::Int(i64::from(stamp.shard))));
            members.push(("epoch".to_owned(), Json::Int(stamp.epoch as i64)));
        }
        if let Some(tenant) = &self.tenant {
            members.push(("tenant".to_owned(), Json::str(tenant.clone())));
        }
        Json::Obj(members)
    }
}

/// Any decoded request.
#[derive(Clone, Debug)]
pub enum Request {
    /// One of the three solver operations (boxed: a solve request carries a
    /// whole signature view, the control variants carry nothing).
    Solve(Box<SolveRequest>),
    /// Counter snapshot.
    Status,
    /// Stop the server.
    Shutdown,
    /// A follower's replication handshake: turn this connection into a
    /// record feed (snapshot first, then live records). The optional shard
    /// spec must match the leader's — a follower built for a different
    /// topology would replay the wrong arc of the key space.
    ReplSubscribe {
        /// The follower's shard identity, if it runs sharded.
        shard: Option<ShardSpec>,
    },
    /// Promote this server (a follower) to leader: bump the replication
    /// epoch and start accepting writes.
    Promote,
}

/// A malformed or invalid request.
#[derive(Debug, Clone)]
pub struct ProtocolError {
    /// Human-readable description, sent back verbatim in the error response.
    pub message: String,
}

impl ProtocolError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<json::JsonError> for ProtocolError {
    fn from(err: json::JsonError) -> Self {
        ProtocolError::new(format!("invalid JSON: {err}"))
    }
}

/// Upper bound on elements per batch envelope: enough to amortize framing
/// thousands of times over, small enough that one hostile line cannot queue
/// unbounded work.
pub const MAX_BATCH_REQUESTS: usize = 1024;

/// A decoded request line: either one request or a batch of independently
/// decoded elements (a bad element is an `Err` in place, never a reason to
/// reject its siblings).
#[derive(Debug)]
pub enum Decoded {
    /// The line carried a single request (or failed outright).
    Single(Result<Request, ProtocolError>),
    /// The line was a batch envelope; one result per element, in order.
    Batch(Vec<Result<Request, ProtocolError>>),
}

/// Decodes one request line, recognising the batch envelope. Malformed
/// JSON, a bad batch container, or an oversized batch yield
/// `Single(Err(…))` — one error response for the whole line.
pub fn decode_line(line: &str) -> Decoded {
    let value = match json::parse(line) {
        Ok(value) => value,
        Err(err) => return Decoded::Single(Err(err.into())),
    };
    if value.get("op").and_then(Json::as_str) != Some("batch") {
        return Decoded::Single(decode_request_value(&value));
    }
    let Some(requests) = value.get("requests").and_then(Json::as_arr) else {
        return Decoded::Single(Err(ProtocolError::new(
            "a batch request needs a 'requests' array",
        )));
    };
    if requests.len() > MAX_BATCH_REQUESTS {
        return Decoded::Single(Err(ProtocolError::new(format!(
            "batch of {} requests exceeds the limit of {MAX_BATCH_REQUESTS}",
            requests.len()
        ))));
    }
    Decoded::Batch(requests.iter().map(decode_batch_element).collect())
}

fn decode_batch_element(value: &Json) -> Result<Request, ProtocolError> {
    match value.get("op").and_then(Json::as_str) {
        Some("batch") => Err(ProtocolError::new("batch envelopes cannot nest")),
        Some("shutdown") => Err(ProtocolError::new(
            "'shutdown' is not allowed inside a batch; send it on its own line",
        )),
        // Both rebind connection- or server-wide state, which has no
        // per-element meaning inside an envelope.
        Some("repl_subscribe") => Err(ProtocolError::new(
            "'repl_subscribe' is not allowed inside a batch; send it on its own line",
        )),
        Some("promote") => Err(ProtocolError::new(
            "'promote' is not allowed inside a batch; send it on its own line",
        )),
        _ => decode_request_value(value),
    }
}

/// Decodes one request line (no batch envelope).
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    decode_request_value(&json::parse(line)?)
}

/// Decodes one parsed request object.
pub fn decode_request_value(value: &Json) -> Result<Request, ProtocolError> {
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("request needs a string 'op' field"))?;
    match op {
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "promote" => Ok(Request::Promote),
        "repl_subscribe" => {
            let shard = match value.get("shard") {
                None | Some(Json::Null) => None,
                Some(Json::Str(text)) => Some(ShardSpec::parse(text).map_err(|err| {
                    ProtocolError::new(format!("invalid 'shard' in repl_subscribe: {err}"))
                })?),
                Some(_) => {
                    return Err(ProtocolError::new(
                        "'shard' in repl_subscribe must be an \"i/n\" string",
                    ))
                }
            };
            Ok(Request::ReplSubscribe { shard })
        }
        "refine" => decode_solve(value, SolveOp::Refine),
        "highest-theta" => decode_solve(value, SolveOp::HighestTheta),
        "lowest-k" => decode_solve(value, SolveOp::LowestK),
        other => Err(ProtocolError::new(format!(
            "unknown op '{other}'; expected refine, highest-theta, lowest-k, batch, \
             status, shutdown, promote, or repl_subscribe"
        ))),
    }
}

/// Encodes a batch request line from request objects (the client side of
/// the batch envelope).
pub fn encode_batch_request(requests: &[Json]) -> String {
    let mut out = String::from("{\"op\":\"batch\",\"requests\":[");
    for (idx, request) in requests.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        request.write_into(&mut out);
    }
    out.push_str("]}");
    out
}

fn decode_solve(value: &Json, op: SolveOp) -> Result<Request, ProtocolError> {
    let view = view_from_json(
        value
            .get("view")
            .ok_or_else(|| ProtocolError::new("solve request needs a 'view' field"))?,
    )?;
    let spec = match value.get("rule") {
        None => SigmaSpec::Coverage,
        Some(rule) => {
            let text = rule
                .as_str()
                .ok_or_else(|| ProtocolError::new("'rule' must be a string"))?;
            parse_spec(text).map_err(|err| ProtocolError::new(err.to_string()))?
        }
    };
    let engine = match value.get("engine") {
        None => EngineKind::Hybrid,
        Some(engine) => EngineKind::parse(
            engine
                .as_str()
                .ok_or_else(|| ProtocolError::new("'engine' must be a string"))?,
        )?,
    };
    let k = get_usize(value, "k")?;
    let theta = get_ratio(value, "theta")?;
    let step = get_ratio(value, "step")?;
    if let Some(step) = step {
        // A non-positive step would keep the highest-theta sweep at the
        // same threshold forever; refuse before a worker is committed.
        if step <= strudel_rules::prelude::Ratio::ZERO {
            return Err(ProtocolError::new(
                "'step' must be strictly positive (e.g. \"1/100\")",
            ));
        }
    }
    let max_k = get_usize(value, "max_k")?;
    let time_limit = get_usize(value, "time_limit_ms")?.map(|ms| Duration::from_millis(ms as u64));
    // The routing stamp travels as a pair: a shard without an epoch (or
    // vice versa) is a malformed router, not a tolerable omission. The
    // epoch is a u64 fingerprint carried through the integer-only JSON as
    // its two's-complement i64.
    let routing = match (get_usize(value, "shard")?, value.get("epoch")) {
        (None, None) => None,
        (Some(shard), Some(Json::Int(epoch))) => Some(ShardStamp {
            shard: u32::try_from(shard)
                .map_err(|_| ProtocolError::new("'shard' is out of range"))?,
            epoch: *epoch as u64,
        }),
        (_, Some(other)) if !matches!(other, Json::Int(_)) => {
            return Err(ProtocolError::new("'epoch' must be an integer"))
        }
        _ => {
            return Err(ProtocolError::new(
                "'shard' and 'epoch' must be given together (a routing stamp)",
            ))
        }
    };

    // The tenant identity. A missing field and an explicit "default" are
    // the same tenant, normalised to `None` so every later comparison
    // (cache key, registry lookup, segment encoding) sees one spelling.
    let tenant = match value.get("tenant") {
        None | Some(Json::Null) => None,
        Some(Json::Str(id)) => {
            validate_tenant(id).map_err(|err| ProtocolError::new(format!("'tenant': {err}")))?;
            if id == DEFAULT_TENANT {
                None
            } else {
                Some(id.clone())
            }
        }
        Some(_) => return Err(ProtocolError::new("'tenant' must be a string")),
    };

    // Op-specific required parameters.
    match op {
        SolveOp::Refine => {
            if k.is_none() || theta.is_none() {
                return Err(ProtocolError::new("'refine' needs both 'k' and 'theta'"));
            }
        }
        SolveOp::HighestTheta => {
            if k.is_none() {
                return Err(ProtocolError::new("'highest-theta' needs 'k'"));
            }
        }
        SolveOp::LowestK => {
            if theta.is_none() {
                return Err(ProtocolError::new("'lowest-k' needs 'theta'"));
            }
        }
    }

    Ok(Request::Solve(Box::new(SolveRequest {
        op,
        view,
        spec,
        engine,
        k,
        theta,
        step,
        max_k,
        time_limit,
        routing,
        tenant,
    })))
}

fn get_usize(value: &Json, field: &str) -> Result<Option<usize>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(n)) if *n >= 0 => Ok(Some(*n as usize)),
        Some(_) => Err(ProtocolError::new(format!(
            "'{field}' must be a non-negative integer"
        ))),
    }
}

fn get_ratio(value: &Json, field: &str) -> Result<Option<Ratio>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(text)) => Ratio::parse(text)
            .map(Some)
            .map_err(|err| ProtocolError::new(format!("invalid '{field}': {err}"))),
        Some(Json::Int(n)) => Ok(Some(Ratio::from_integer(i128::from(*n)))),
        Some(_) => Err(ProtocolError::new(format!(
            "'{field}' must be a ratio string like \"1/2\" (or an integer)"
        ))),
    }
}

/// Encodes a signature view as its wire object.
pub fn view_to_json(view: &SignatureView) -> Json {
    Json::obj(vec![
        (
            "properties",
            Json::Arr(
                view.properties()
                    .iter()
                    .map(|p| Json::str(p.clone()))
                    .collect(),
            ),
        ),
        (
            "signatures",
            Json::Arr(
                view.entries()
                    .iter()
                    .map(|entry| {
                        Json::Arr(vec![
                            Json::Arr(
                                entry
                                    .support()
                                    .into_iter()
                                    .map(|col| Json::Int(col as i64))
                                    .collect(),
                            ),
                            Json::Int(entry.count as i64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a signature view from its wire object, validating dimensions.
pub fn view_from_json(value: &Json) -> Result<SignatureView, ProtocolError> {
    let properties: Vec<String> = value
        .get("properties")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtocolError::new("'view.properties' must be an array of strings"))?
        .iter()
        .map(|p| {
            p.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ProtocolError::new("'view.properties' must be an array of strings"))
        })
        .collect::<Result<_, _>>()?;
    let signatures_json = value
        .get("signatures")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            ProtocolError::new("'view.signatures' must be an array of [[indexes],count] pairs")
        })?;
    let mut signatures = Vec::with_capacity(signatures_json.len());
    for pair in signatures_json {
        let invalid =
            || ProtocolError::new("'view.signatures' entries must be [[indexes],count] pairs");
        let items = pair.as_arr().ok_or_else(invalid)?;
        if items.len() != 2 {
            return Err(invalid());
        }
        let indexes: Vec<usize> = items[0]
            .as_arr()
            .ok_or_else(invalid)?
            .iter()
            .map(|idx| match idx {
                Json::Int(n) if *n >= 0 => Ok(*n as usize),
                _ => Err(invalid()),
            })
            .collect::<Result<_, _>>()?;
        let count = match items[1] {
            Json::Int(n) if n >= 0 => n as usize,
            _ => return Err(invalid()),
        };
        signatures.push((indexes, count));
    }
    SignatureView::from_counts(properties, signatures)
        .map_err(|err| ProtocolError::new(format!("invalid view: {err}")))
}

/// Encodes a wire refinement as its JSON object.
pub fn refinement_to_json(refinement: &WireRefinement) -> Json {
    Json::obj(vec![
        ("spec", Json::str(refinement.spec.clone())),
        ("threshold", Json::str(refinement.threshold.clone())),
        (
            "sorts",
            Json::Arr(
                refinement
                    .sorts
                    .iter()
                    .map(|sort| {
                        Json::obj(vec![
                            (
                                "signatures",
                                Json::Arr(
                                    sort.signatures
                                        .iter()
                                        .map(|&sig| Json::Int(sig as i64))
                                        .collect(),
                                ),
                            ),
                            ("subjects", Json::Int(sort.subjects as i64)),
                            ("sigma", Json::str(sort.sigma.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a wire refinement from its JSON object.
pub fn refinement_from_json(value: &Json) -> Result<WireRefinement, ProtocolError> {
    let invalid = |what: &str| ProtocolError::new(format!("invalid refinement: {what}"));
    let spec = value
        .get("spec")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("missing 'spec'"))?
        .to_owned();
    let threshold = value
        .get("threshold")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("missing 'threshold'"))?
        .to_owned();
    let mut sorts = Vec::new();
    for sort in value
        .get("sorts")
        .and_then(Json::as_arr)
        .ok_or_else(|| invalid("missing 'sorts'"))?
    {
        let signatures = sort
            .get("signatures")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing 'signatures'"))?
            .iter()
            .map(|sig| match sig {
                Json::Int(n) if *n >= 0 => Ok(*n as usize),
                _ => Err(invalid("signature indexes must be non-negative integers")),
            })
            .collect::<Result<_, _>>()?;
        let subjects = sort
            .get("subjects")
            .and_then(Json::as_int)
            .filter(|&n| n >= 0)
            .ok_or_else(|| invalid("missing 'subjects'"))? as usize;
        let sigma = sort
            .get("sigma")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing 'sigma'"))?
            .to_owned();
        sorts.push(WireSort {
            signatures,
            subjects,
            sigma,
        });
    }
    Ok(WireRefinement {
        spec,
        threshold,
        sorts,
    })
}

/// Encodes a `refine` answer as the response `result` object.
pub fn outcome_to_json(outcome: &WireOutcome) -> Json {
    match outcome {
        WireOutcome::Refinement(refinement) => Json::obj(vec![
            ("outcome", Json::str("refinement")),
            ("refinement", refinement_to_json(refinement)),
        ]),
        WireOutcome::Infeasible => Json::obj(vec![("outcome", Json::str("infeasible"))]),
        WireOutcome::Unknown => Json::obj(vec![("outcome", Json::str("unknown"))]),
    }
}

/// Encodes a `highest-theta` answer as the response `result` object.
pub fn highest_theta_to_json(result: &WireHighestTheta) -> Json {
    Json::obj(vec![
        ("theta", Json::str(result.theta.clone())),
        ("hit_budget", Json::Bool(result.hit_budget)),
        ("probes", Json::Int(result.probes as i64)),
        (
            "refinement",
            result
                .refinement
                .as_ref()
                .map(refinement_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Encodes a `lowest-k` answer as the response `result` object.
pub fn lowest_k_to_json(result: &WireLowestK) -> Json {
    Json::obj(vec![
        (
            "k",
            result.k.map(|k| Json::Int(k as i64)).unwrap_or(Json::Null),
        ),
        ("hit_budget", Json::Bool(result.hit_budget)),
        ("probes", Json::Int(result.probes as i64)),
        (
            "refinement",
            result
                .refinement
                .as_ref()
                .map(refinement_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Builds a success response line. `result_text` must be the canonical
/// serialization of the result object; it is spliced in verbatim, which is
/// what makes cache replays byte-identical to the original response body.
pub fn encode_success(op: &str, source: Source, result_text: &str) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"{op}\",\"source\":\"{}\",\"result\":{result_text}}}",
        source.name()
    )
}

/// Builds an error response line.
pub fn encode_error(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 24);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push('}');
    out
}

/// Builds the structured `wrong_shard` error line a shard sends when it
/// receives a request it does not own (or a request stamped with a
/// different ring epoch): the plain error fields plus a machine-readable
/// `code` and the shard/owner/epoch triple a router needs to re-route.
pub fn encode_wrong_shard(message: &str, detail: &WrongShard) -> String {
    let mut out = String::with_capacity(message.len() + 96);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(&format!(
        ",\"code\":\"wrong_shard\",\"shard\":{},\"owner\":{},\"epoch\":{}}}",
        detail.shard, detail.owner, detail.epoch as i64
    ));
    out
}

/// Reads the structured `wrong_shard` detail out of a parsed error
/// response, if the `code` marks one.
pub fn wrong_shard_from_json(value: &Json) -> Option<WrongShard> {
    if value.get("code").and_then(Json::as_str) != Some("wrong_shard") {
        return None;
    }
    let int = |field: &str| value.get(field).and_then(Json::as_int);
    Some(WrongShard {
        shard: u32::try_from(int("shard")?).ok()?,
        owner: u32::try_from(int("owner")?).ok()?,
        epoch: int("epoch")? as u64,
    })
}

/// Builds the structured `not_leader` error line a replication follower
/// sends when asked to do anything it cannot serve from its replicated
/// cache: the plain error fields plus a machine-readable `code` and the
/// leader's address, so clients redirect instead of guessing.
pub fn encode_not_leader(message: &str, detail: &NotLeader) -> String {
    let mut out = String::with_capacity(message.len() + detail.leader.len() + 64);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(",\"code\":\"not_leader\",\"leader\":");
    Json::str(detail.leader.clone()).write_into(&mut out);
    out.push('}');
    out
}

/// Reads the structured `not_leader` detail out of a parsed error response,
/// if the `code` marks one.
pub fn not_leader_from_json(value: &Json) -> Option<NotLeader> {
    if value.get("code").and_then(Json::as_str) != Some("not_leader") {
        return None;
    }
    Some(NotLeader {
        leader: value.get("leader").and_then(Json::as_str)?.to_owned(),
    })
}

/// Builds the structured `over_quota` error line admission control sends
/// when a tenant's token bucket runs dry: the plain error fields plus a
/// machine-readable `code`, the refused tenant, and the deterministic
/// retry hint. Per-request (and per-batch-element), never connection-fatal.
pub fn encode_over_quota(message: &str, detail: &OverQuota) -> String {
    let mut out = String::with_capacity(message.len() + detail.tenant.len() + 80);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(",\"code\":\"over_quota\",\"tenant\":");
    Json::str(detail.tenant.clone()).write_into(&mut out);
    out.push_str(&format!(
        ",\"retry_after_ms\":{}}}",
        detail.retry_after_ms as i64
    ));
    out
}

/// Reads the structured `over_quota` detail out of a parsed error response,
/// if the `code` marks one.
pub fn over_quota_from_json(value: &Json) -> Option<OverQuota> {
    if value.get("code").and_then(Json::as_str) != Some("over_quota") {
        return None;
    }
    Some(OverQuota {
        tenant: value.get("tenant").and_then(Json::as_str)?.to_owned(),
        retry_after_ms: value.get("retry_after_ms").and_then(Json::as_int)? as u64,
    })
}

/// Encodes the replication subscribe handshake line a follower opens its
/// feed connection with.
pub fn encode_repl_subscribe(shard: Option<&ShardSpec>) -> String {
    match shard {
        None => "{\"op\":\"repl_subscribe\"}".to_owned(),
        Some(spec) => format!("{{\"op\":\"repl_subscribe\",\"shard\":\"{spec}\"}}"),
    }
}

/// Encodes one replication stream record as its wire line.
///
/// The 128-bit view hash travels as 32 hex digits (it does not fit the
/// integer-only JSON); the epoch and sequence numbers as two's-complement
/// i64, like the routing stamp. The result text is carried as a JSON
/// *string* (escaped), and decoding restores the exact original bytes —
/// the follower's cache entry is byte-identical to the leader's.
pub fn encode_repl_record(record: &ReplRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"op\":\"repl_record\",\"kind\":\"");
    out.push_str(record.kind());
    out.push_str(&format!(
        "\",\"seq\":{},\"epoch\":{}",
        record.seq() as i64,
        record.epoch() as i64
    ));
    match record {
        ReplRecord::Put {
            view,
            params,
            result,
            tenant,
            ..
        } => {
            out.push_str(&format!(",\"view\":\"{view:032x}\",\"params\":"));
            Json::str(params.clone()).write_into(&mut out);
            out.push_str(",\"result\":");
            Json::str(result.clone()).write_into(&mut out);
            // The tenant travels only when it is not the default — an old
            // follower decoding a default-tenant stream sees the exact
            // pre-tenancy line bytes.
            if tenant != DEFAULT_TENANT {
                out.push_str(",\"tenant\":");
                Json::str(tenant.clone()).write_into(&mut out);
            }
        }
        ReplRecord::Evict { view, params, .. } => {
            out.push_str(&format!(",\"view\":\"{view:032x}\",\"params\":"));
            Json::str(params.clone()).write_into(&mut out);
        }
        ReplRecord::Checkpoint { live, .. } => {
            out.push_str(&format!(",\"live\":{}", *live as i64));
        }
    }
    out.push('}');
    out
}

/// Decodes one replication stream line back into its record.
pub fn repl_record_from_json(value: &Json) -> Result<ReplRecord, ProtocolError> {
    if value.get("op").and_then(Json::as_str) != Some("repl_record") {
        return Err(ProtocolError::new("not a repl_record line"));
    }
    let int = |field: &'static str| -> Result<u64, ProtocolError> {
        value
            .get(field)
            .and_then(Json::as_int)
            .map(|n| n as u64)
            .ok_or_else(|| ProtocolError::new(format!("repl_record lacks '{field}'")))
    };
    let seq = int("seq")?;
    let epoch = int("epoch")?;
    let view = || -> Result<u128, ProtocolError> {
        let text = value
            .get("view")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtocolError::new("repl_record lacks 'view'"))?;
        u128::from_str_radix(text, 16)
            .map_err(|_| ProtocolError::new("repl_record 'view' is not a hex hash"))
    };
    let text = |field: &'static str| -> Result<String, ProtocolError> {
        value
            .get(field)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProtocolError::new(format!("repl_record lacks '{field}'")))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("put") => Ok(ReplRecord::Put {
            seq,
            epoch,
            view: view()?,
            params: text("params")?,
            result: text("result")?,
            // Absent on pre-tenancy (and default-tenant) streams; a
            // missing field is the default tenant, never a decode error —
            // the follower feed treats decode errors as a lost feed.
            tenant: value
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or(DEFAULT_TENANT)
                .to_owned(),
        }),
        Some("evict") => Ok(ReplRecord::Evict {
            seq,
            epoch,
            view: view()?,
            params: text("params")?,
        }),
        Some("checkpoint") => Ok(ReplRecord::Checkpoint {
            seq,
            epoch,
            live: int("live")?,
        }),
        other => Err(ProtocolError::new(format!(
            "unknown repl_record kind {other:?}"
        ))),
    }
}

/// Builds a batch response line from already-encoded element envelopes
/// (each exactly what the element would have been as a standalone response
/// line). Splicing the pre-encoded elements is the batch-level analogue of
/// [`encode_success`]'s verbatim `result_text`: cached elements keep their
/// byte-identity guarantee inside a batch.
pub fn encode_batch(items: &[String]) -> String {
    let total: usize = items.iter().map(|item| item.len() + 1).sum();
    let mut out = String::with_capacity(total + 40);
    out.push_str("{\"ok\":true,\"op\":\"batch\",\"results\":[");
    for (idx, item) in items.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push_str("]}");
    out
}

/// Encodes any wire envelope to its response line.
pub fn encode_envelope(envelope: &WireEnvelope) -> String {
    match envelope {
        WireEnvelope::Success {
            op,
            source,
            result_text,
        } => encode_success(op, *source, result_text),
        WireEnvelope::Error {
            message,
            wrong_shard: None,
        } => encode_error(message),
        WireEnvelope::Error {
            message,
            wrong_shard: Some(detail),
        } => encode_wrong_shard(message, detail),
        WireEnvelope::Batch { items } => {
            let encoded: Vec<String> = items.iter().map(encode_envelope).collect();
            encode_batch(&encoded)
        }
    }
}

/// Decodes a parsed response value back into its wire envelope (the
/// client-side inverse of [`encode_envelope`]). The `result_text` of a
/// success element is recovered by canonical re-serialization, which is
/// byte-faithful because the protocol serializer is deterministic.
pub fn envelope_from_json(value: &Json) -> Result<WireEnvelope, ProtocolError> {
    match value.get("ok").and_then(Json::as_bool) {
        Some(false) => Ok(WireEnvelope::Error {
            message: value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_owned(),
            wrong_shard: wrong_shard_from_json(value),
        }),
        Some(true) => {
            let op = value
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::new("response lacks an 'op' field"))?
                .to_owned();
            if op == "batch" {
                let items = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtocolError::new("batch response lacks 'results'"))?
                    .iter()
                    .map(envelope_from_json)
                    .collect::<Result<_, _>>()?;
                return Ok(WireEnvelope::Batch { items });
            }
            let source = value
                .get("source")
                .and_then(Json::as_str)
                .and_then(Source::parse)
                .ok_or_else(|| ProtocolError::new("response lacks a valid 'source' field"))?;
            let result_text = value
                .get("result")
                .ok_or_else(|| ProtocolError::new("response lacks a 'result' field"))?
                .to_text();
            Ok(WireEnvelope::Success {
                op,
                source,
                result_text,
            })
        }
        None => Err(ProtocolError::new("response lacks an 'ok' field")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> SignatureView {
        SignatureView::from_counts(
            vec!["http://ex/name".into(), "http://ex/email".into()],
            vec![(vec![0], 9), (vec![0, 1], 1)],
        )
        .unwrap()
    }

    #[test]
    fn views_round_trip() {
        let view = sample_view();
        let back = view_from_json(&view_to_json(&view)).unwrap();
        assert_eq!(back.cache_key(), view.cache_key());
        assert_eq!(back.properties(), view.properties());
        assert_eq!(back.subject_count(), view.subject_count());
    }

    #[test]
    fn solve_requests_round_trip() {
        let request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Similarity,
            engine: EngineKind::Ilp,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: Some(Duration::from_millis(1500)),
            routing: Some(ShardStamp {
                shard: 2,
                epoch: u64::MAX - 17, // exercises the i64 wire crossing
            }),
            tenant: Some("acme".to_owned()),
        };
        let line = request.to_json().to_text();
        let Request::Solve(back) = decode_request(&line).unwrap() else {
            panic!("expected a solve request");
        };
        assert_eq!(back.op, SolveOp::Refine);
        assert_eq!(back.engine, EngineKind::Ilp);
        assert_eq!(back.spec, SigmaSpec::Similarity);
        assert_eq!(back.k, Some(2));
        assert_eq!(back.theta, Some(Ratio::new(1, 2)));
        assert_eq!(back.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(back.routing, request.routing);
        assert_eq!(back.tenant, request.tenant);
        assert_eq!(back.cache_key(), request.cache_key());
    }

    #[test]
    fn routing_stamps_do_not_perturb_the_cache_key() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let bare = request.cache_key();
        request.routing = Some(ShardStamp {
            shard: 1,
            epoch: 42,
        });
        assert_eq!(
            request.cache_key(),
            bare,
            "routing metadata describes the journey, not the question"
        );
    }

    #[test]
    fn tenants_partition_the_cache_key_space() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let bare = request.cache_key();
        assert!(
            !bare.params.contains("tenant="),
            "the default tenant keeps the pre-tenancy key bytes"
        );
        request.tenant = Some("acme".to_owned());
        let acme = request.cache_key();
        assert_ne!(acme, bare, "a tenant is a namespace, not metadata");
        assert!(acme.params.ends_with("|tenant=acme"));
        request.tenant = Some("globex".to_owned());
        assert_ne!(request.cache_key(), acme, "tenants do not share entries");

        // Decode normalises the explicit default spelling away.
        let view_json = view_to_json(&sample_view()).to_text();
        let line = format!(
            "{{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\",\
             \"tenant\":\"default\"}}"
        );
        let Ok(Request::Solve(solve)) = decode_request(&line) else {
            panic!("expected a solve request");
        };
        assert_eq!(solve.tenant, None);
        assert_eq!(solve.cache_key(), bare);

        // Invalid tenant ids are refused at decode time.
        for bad in ["\"\"", "\"a b\"", "\"a|b\"", "\"café\"", "7"] {
            let line = format!(
                "{{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\",\
                 \"tenant\":{bad}}}"
            );
            assert!(decode_request(&line).is_err(), "must reject tenant {bad}");
        }
    }

    #[test]
    fn over_quota_errors_round_trip_their_structure() {
        let detail = OverQuota {
            tenant: "acme".into(),
            retry_after_ms: 125,
        };
        let line = encode_over_quota("tenant 'acme' is over its rate limit", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("code").and_then(Json::as_str), Some("over_quota"));
        assert_eq!(over_quota_from_json(&value), Some(detail));
        // Plain errors (and the other structured codes) carry no detail.
        assert_eq!(
            over_quota_from_json(&json::parse(&encode_error("boom")).unwrap()),
            None
        );
        let other = encode_not_leader(
            "nope",
            &NotLeader {
                leader: "x:1".into(),
            },
        );
        assert_eq!(over_quota_from_json(&json::parse(&other).unwrap()), None);
    }

    #[test]
    fn partial_routing_stamps_are_rejected() {
        let view_json = view_to_json(&sample_view()).to_text();
        for fragment in ["\"shard\":1", "\"epoch\":7", "\"shard\":1,\"epoch\":\"x\""] {
            let line = format!(
                "{{\"op\":\"refine\",\"view\":{view_json},\"k\":1,\"theta\":\"1/2\",{fragment}}}"
            );
            assert!(decode_request(&line).is_err(), "must reject: {fragment}");
        }
    }

    #[test]
    fn wrong_shard_errors_round_trip_their_structure() {
        let detail = WrongShard {
            shard: 1,
            owner: 2,
            epoch: u64::MAX - 3,
        };
        let line = encode_wrong_shard("key belongs to shard 2", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("wrong_shard")
        );
        assert_eq!(wrong_shard_from_json(&value), Some(detail));
        // And through the envelope type, byte-identically.
        let envelope = envelope_from_json(&value).unwrap();
        assert_eq!(
            envelope,
            WireEnvelope::Error {
                message: "key belongs to shard 2".into(),
                wrong_shard: Some(detail),
            }
        );
        assert_eq!(encode_envelope(&envelope), line);
        // A plain error carries no detail.
        let plain = envelope_from_json(&json::parse(&encode_error("boom")).unwrap()).unwrap();
        assert_eq!(
            plain,
            WireEnvelope::Error {
                message: "boom".into(),
                wrong_shard: None,
            }
        );
    }

    #[test]
    fn cache_keys_normalise_spelling_variants() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::parse("0.5").unwrap()),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let decimal = request.cache_key();
        request.theta = Some(Ratio::parse("1/2").unwrap());
        assert_eq!(request.cache_key(), decimal);
        request.theta = Some(Ratio::parse("2/3").unwrap());
        assert_ne!(request.cache_key(), decimal);
        // And the view content participates.
        request.theta = Some(Ratio::parse("1/2").unwrap());
        request.view = SignatureView::from_counts(
            vec!["http://ex/name".into(), "http://ex/email".into()],
            vec![(vec![0], 8), (vec![0, 1], 2)],
        )
        .unwrap();
        assert_ne!(request.cache_key(), decimal);
    }

    #[test]
    fn op_specific_requirements_are_enforced() {
        let view_json = view_to_json(&sample_view()).to_text();
        let must_fail = [
            format!("{{\"op\":\"refine\",\"view\":{view_json},\"k\":2}}"),
            format!("{{\"op\":\"refine\",\"view\":{view_json},\"theta\":\"1/2\"}}"),
            format!("{{\"op\":\"highest-theta\",\"view\":{view_json}}}"),
            format!("{{\"op\":\"lowest-k\",\"view\":{view_json}}}"),
            "{\"op\":\"refine\"}".to_owned(),
            "{\"op\":\"frobnicate\"}".to_owned(),
            "{\"no\":\"op\"}".to_owned(),
            "not json at all".to_owned(),
        ];
        for line in &must_fail {
            assert!(decode_request(line).is_err(), "should reject: {line}");
        }
        let ok =
            format!("{{\"op\":\"highest-theta\",\"view\":{view_json},\"k\":2,\"step\":\"1/10\"}}");
        match decode_request(&ok) {
            Ok(Request::Solve(solve)) => assert_eq!(solve.op, SolveOp::HighestTheta),
            other => panic!("expected a solve request, got {other:?}"),
        }
        assert!(matches!(
            decode_request("{\"op\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            decode_request("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn non_positive_steps_are_rejected_at_decode() {
        let view_json = view_to_json(&sample_view()).to_text();
        for step in ["0", "-1/100", "0.0"] {
            let line = format!(
                "{{\"op\":\"highest-theta\",\"view\":{view_json},\"k\":2,\"step\":\"{step}\"}}"
            );
            let err = decode_request(&line).unwrap_err();
            assert!(
                err.message.contains("strictly positive"),
                "step {step}: {err}"
            );
        }
    }

    #[test]
    fn refinements_round_trip_through_json() {
        let refinement = WireRefinement {
            spec: "cov".into(),
            threshold: "1/2".into(),
            sorts: vec![
                WireSort {
                    signatures: vec![0, 2],
                    subjects: 40,
                    sigma: "3/4".into(),
                },
                WireSort {
                    signatures: vec![1],
                    subjects: 2,
                    sigma: "1".into(),
                },
            ],
        };
        let back = refinement_from_json(&refinement_to_json(&refinement)).unwrap();
        assert_eq!(back, refinement);
    }

    #[test]
    fn batch_lines_decode_element_wise_in_order() {
        let view_json = view_to_json(&sample_view()).to_text();
        let line = format!(
            "{{\"op\":\"batch\",\"requests\":[\
             {{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\"}},\
             {{\"op\":\"frobnicate\"}},\
             {{\"op\":\"status\"}},\
             {{\"op\":\"shutdown\"}},\
             {{\"op\":\"batch\",\"requests\":[]}},\
             {{\"op\":\"lowest-k\",\"view\":{view_json},\"theta\":\"2/3\"}}]}}"
        );
        let Decoded::Batch(elements) = decode_line(&line) else {
            panic!("expected a batch");
        };
        assert_eq!(elements.len(), 6);
        assert!(matches!(&elements[0], Ok(Request::Solve(s)) if s.op == SolveOp::Refine));
        assert!(elements[1].is_err(), "unknown op fails alone");
        assert!(matches!(elements[2], Ok(Request::Status)));
        assert!(
            elements[3].is_err(),
            "shutdown is rejected inside a batch: {:?}",
            elements[3]
        );
        assert!(elements[4].is_err(), "batches cannot nest");
        assert!(
            matches!(&elements[5], Ok(Request::Solve(s)) if s.op == SolveOp::LowestK),
            "an error element must not poison later elements"
        );
    }

    #[test]
    fn bad_batch_containers_fail_as_one_line() {
        for line in [
            "{\"op\":\"batch\"}".to_owned(),
            "{\"op\":\"batch\",\"requests\":7}".to_owned(),
            format!(
                "{{\"op\":\"batch\",\"requests\":[{}]}}",
                vec!["{\"op\":\"status\"}"; MAX_BATCH_REQUESTS + 1].join(",")
            ),
        ] {
            assert!(
                matches!(decode_line(&line), Decoded::Single(Err(_))),
                "must reject outright: {}",
                &line[..line.len().min(80)]
            );
        }
        // A plain request still decodes as Single(Ok).
        assert!(matches!(
            decode_line("{\"op\":\"status\"}"),
            Decoded::Single(Ok(Request::Status))
        ));
        // An empty batch is a valid envelope with zero elements.
        assert!(
            matches!(decode_line("{\"op\":\"batch\",\"requests\":[]}"), Decoded::Batch(v) if v.is_empty())
        );
    }

    #[test]
    fn batch_responses_splice_elements_verbatim() {
        let items = vec![
            encode_success("refine", Source::Cache, "{\"outcome\":\"infeasible\"}"),
            encode_error("bad element"),
            encode_success("status", Source::Solved, "{\"workers\":4}"),
        ];
        let line = encode_batch(&items);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("op").unwrap().as_str(), Some("batch"));
        let results = value.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        // Canonical serialization means each parsed element re-encodes to
        // the exact bytes that were spliced in.
        for (element, original) in results.iter().zip(&items) {
            assert_eq!(&element.to_text(), original);
        }
        // And the whole line round-trips through the envelope type.
        let envelope = envelope_from_json(&value).unwrap();
        assert_eq!(encode_envelope(&envelope), line);
    }

    #[test]
    fn envelopes_round_trip_from_wire_form() {
        let envelope = WireEnvelope::Batch {
            items: vec![
                WireEnvelope::Success {
                    op: "refine".into(),
                    source: Source::Coalesced,
                    result_text: "{\"outcome\":\"unknown\"}".into(),
                },
                WireEnvelope::Error {
                    message: "nope \"quoted\"".into(),
                    wrong_shard: None,
                },
                WireEnvelope::Error {
                    message: "not yours".into(),
                    wrong_shard: Some(WrongShard {
                        shard: 0,
                        owner: 2,
                        epoch: 99,
                    }),
                },
            ],
        };
        let line = encode_envelope(&envelope);
        let back = envelope_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn repl_records_round_trip_byte_identically() {
        let records = [
            ReplRecord::Put {
                seq: 3,
                epoch: u64::MAX - 5, // exercises the i64 wire crossing
                view: 0xdead_beef_dead_beef_dead_beef_dead_beef,
                params: "refine|hybrid|cov|2|1/2|||".into(),
                result: "{\"outcome\":\"infeasible\",\"note\":\"quoted \\\"x\\\"\"}".into(),
                tenant: DEFAULT_TENANT.into(),
            },
            ReplRecord::Put {
                seq: 5,
                epoch: 9,
                view: 7,
                params: "refine|hybrid|cov|2|1/2||||tenant=acme".into(),
                result: "{\"outcome\":\"unknown\"}".into(),
                tenant: "acme".into(),
            },
            ReplRecord::Evict {
                seq: 4,
                epoch: 9,
                view: 1,
                params: "p|q".into(),
            },
            ReplRecord::Checkpoint {
                seq: 4,
                epoch: 9,
                live: 17,
            },
        ];
        for record in &records {
            let line = encode_repl_record(record);
            let value = json::parse(&line).unwrap();
            let back = repl_record_from_json(&value).unwrap();
            assert_eq!(&back, record, "line: {line}");
        }
        // A default-tenant put omits the field (pre-tenancy line bytes),
        // a non-default one carries it, and a stream from a version that
        // predates tenancy decodes to the default tenant, not an error.
        assert!(!encode_repl_record(&records[0]).contains("\"tenant\""));
        assert!(encode_repl_record(&records[1]).contains("\"tenant\":\"acme\""));
        // The result payload survives escaping verbatim — the byte-identity
        // guarantee crosses the replication stream.
        let ReplRecord::Put { result, .. } = &records[0] else {
            unreachable!()
        };
        let line = encode_repl_record(&records[0]);
        let ReplRecord::Put { result: back, .. } =
            repl_record_from_json(&json::parse(&line).unwrap()).unwrap()
        else {
            panic!("expected a put")
        };
        assert_eq!(&back, result);
    }

    #[test]
    fn repl_subscribe_lines_decode_with_and_without_a_shard() {
        let line = encode_repl_subscribe(None);
        assert!(matches!(
            decode_request(&line),
            Ok(Request::ReplSubscribe { shard: None })
        ));
        let spec = ShardSpec { index: 1, count: 3 };
        let line = encode_repl_subscribe(Some(&spec));
        assert!(matches!(
            decode_request(&line),
            Ok(Request::ReplSubscribe { shard: Some(s) }) if s == spec
        ));
        assert!(decode_request("{\"op\":\"repl_subscribe\",\"shard\":\"9/3\"}").is_err());
        assert!(decode_request("{\"op\":\"repl_subscribe\",\"shard\":7}").is_err());
        assert!(matches!(
            decode_request("{\"op\":\"promote\"}"),
            Ok(Request::Promote)
        ));
    }

    #[test]
    fn replication_control_ops_are_rejected_inside_batches() {
        for op in ["repl_subscribe", "promote"] {
            let line = format!("{{\"op\":\"batch\",\"requests\":[{{\"op\":\"{op}\"}}]}}");
            let Decoded::Batch(elements) = decode_line(&line) else {
                panic!("expected a batch");
            };
            assert!(
                elements[0].is_err(),
                "'{op}' must be refused inside a batch"
            );
        }
    }

    #[test]
    fn not_leader_errors_round_trip_their_structure() {
        let detail = NotLeader {
            leader: "127.0.0.1:7464".into(),
        };
        let line = encode_not_leader("this shard is a follower", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("code").and_then(Json::as_str), Some("not_leader"));
        assert_eq!(not_leader_from_json(&value), Some(detail));
        // A plain error (and a wrong_shard error) carry no leader.
        assert_eq!(
            not_leader_from_json(&json::parse(&encode_error("boom")).unwrap()),
            None
        );
    }

    #[test]
    fn response_envelopes_are_well_formed() {
        let line = encode_success("refine", Source::Cache, "{\"outcome\":\"infeasible\"}");
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("source").unwrap().as_str(), Some("cache"));
        assert_eq!(
            value
                .get("result")
                .unwrap()
                .get("outcome")
                .unwrap()
                .as_str(),
            Some("infeasible")
        );

        let line = encode_error("boom \"quoted\"");
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            value.get("error").unwrap().as_str(),
            Some("boom \"quoted\"")
        );
    }
}
