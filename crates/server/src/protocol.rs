//! The line-delimited JSON protocol of the refinement service.
//!
//! Every request and every response is one JSON object on one line. Five
//! operations exist:
//!
//! * `refine` — decide one `(view, σ, k, θ)` instance and return the witness
//!   refinement if one exists,
//! * `highest-theta` — the highest threshold reachable with at most `k`
//!   implicit sorts (Section 7's first search strategy),
//! * `lowest-k` — the smallest `k` meeting a threshold (the second),
//! * `status` — server counters: per-op request totals, cache
//!   hit/miss/eviction counts, single-flight shares, worker count,
//! * `shutdown` — stop accepting connections and exit.
//!
//! A solve request looks like:
//!
//! ```json
//! {"op":"refine","view":{"properties":["http://ex/name","http://ex/email"],
//!  "signatures":[[[0],9],[[0,1],1]]},"rule":"cov","engine":"hybrid",
//!  "k":2,"theta":"1/2"}
//! ```
//!
//! and every response is `{"ok":true,"op":…,"source":…,"result":…}` or
//! `{"ok":false,"error":…}`. `source` is `"solved"` (computed by a worker),
//! `"cache"` (replayed from the result cache), or `"coalesced"` (shared a
//! concurrent identical solve via single-flight). The `result` bytes of a
//! cache or coalesced response are byte-identical to the cold response's,
//! because the server caches the serialized text, not the value.
//!
//! ## The batch envelope
//!
//! One line may carry many requests, amortizing framing and syscalls:
//!
//! ```json
//! {"op":"batch","requests":[{"op":"refine",…},{"op":"status"}]}
//! ```
//!
//! The response is `{"ok":true,"op":"batch","results":[…]}` with one
//! element per request **in request order**, each element being exactly
//! the envelope the request would have received on its own line. Elements
//! are decoded, cache-looked-up, and single-flighted independently, so a
//! malformed or failing element yields an `{"ok":false,…}` element without
//! poisoning its siblings, and a mixed hit/miss batch serves the hits
//! immediately while the misses solve. Batches do not nest, `shutdown` is
//! not allowed inside one (its connection-and-server-wide effect has no
//! per-element meaning), and at most [`MAX_BATCH_REQUESTS`] elements are
//! accepted per envelope.
//!
//! Numbers are integers only; exact rationals (σ values, thresholds) travel
//! as canonical strings like `"3/4"`. Requests normalise before keying the
//! cache — `"0.5"` and `"1/2"`, or a rule spelled `COV`, all map to the same
//! entry.

use std::fmt;
use std::time::Duration;

use strudel_core::engine::{
    GreedyConfig, GreedyEngine, HybridEngine, IlpEngine, IlpEngineConfig, RefinementEngine,
};
use strudel_core::sigma::{parse_spec, SigmaSpec};
use strudel_core::wire::{
    read_varint, write_varint, WireEnvelope, WireHighestTheta, WireLowestK, WireOutcome,
    WireRefinement, WireSort,
};

pub use strudel_core::wire::{
    encode_frame_header, encode_frame_into, try_decode_frame, validate_tenant, FrameKind,
    FrameView, NotLeader, OverQuota, ReplRecord, ShardRing, ShardSpec, ShardStamp, Source,
    WrongShard, DEFAULT_TENANT, FRAME_MAGIC, FRAME_VERSION,
};
use strudel_rdf::signature::SignatureView;
use strudel_rules::prelude::Ratio;

use crate::json::{self, Json};

/// The two wire framings a connection can speak.
///
/// Every connection starts in [`Framing::Json`] — one JSON object per
/// line, the debug and interop surface. A client may negotiate
/// [`Framing::Bin1`] with `{"op":"hello","framing":"bin1"}`: from the
/// byte after the hello line onward, both directions carry length-prefixed
/// `bin1` frames (see `strudel_core::wire::try_decode_frame` for the
/// layout). Request frames carry a compact binary payload decoded in a
/// single zero-copy pass; response frames carry the *canonical JSON
/// response line* as their payload, so a response is byte-identical across
/// framings — the byte-identity guarantee of the cache does not fork per
/// framing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// Line-delimited JSON (the default).
    Json,
    /// Length-prefixed binary frames, negotiated via `hello`.
    Bin1,
}

impl Framing {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Framing::Json => "json",
            Framing::Bin1 => "bin1",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Result<Self, ProtocolError> {
        match text {
            "json" => Ok(Framing::Json),
            "bin1" => Ok(Framing::Bin1),
            other => Err(ProtocolError::new(format!(
                "unknown framing '{other}'; expected json or bin1"
            ))),
        }
    }
}

impl fmt::Display for Framing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three operations that run a solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveOp {
    /// Decide one `(view, σ, k, θ)` instance.
    Refine,
    /// Highest θ with at most `k` sorts.
    HighestTheta,
    /// Lowest `k` meeting θ.
    LowestK,
}

impl SolveOp {
    /// The wire name of the operation.
    pub fn name(self) -> &'static str {
        match self {
            SolveOp::Refine => "refine",
            SolveOp::HighestTheta => "highest-theta",
            SolveOp::LowestK => "lowest-k",
        }
    }
}

/// Which engine family solves the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Greedy first, ILP to confirm infeasibility (the default).
    Hybrid,
    /// The paper's ILP encoding and branch & bound, exact.
    Ilp,
    /// The greedy baseline only; cannot prove infeasibility.
    Greedy,
}

impl EngineKind {
    /// The wire name of the engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Hybrid => "hybrid",
            EngineKind::Ilp => "ilp",
            EngineKind::Greedy => "greedy",
        }
    }

    /// Parses a wire name.
    pub fn parse(text: &str) -> Result<Self, ProtocolError> {
        match text.to_ascii_lowercase().as_str() {
            "hybrid" => Ok(EngineKind::Hybrid),
            "ilp" => Ok(EngineKind::Ilp),
            "greedy" => Ok(EngineKind::Greedy),
            other => Err(ProtocolError::new(format!(
                "unknown engine '{other}'; expected hybrid, ilp, or greedy"
            ))),
        }
    }

    /// Builds a fresh engine instance. Engines are cheap stateless structs;
    /// the server constructs one per job inside the worker thread. The time
    /// limit reaches *every* family: the ILP engine's branch & bound budget,
    /// the greedy engine's construction/improvement deadline, and the hybrid
    /// engine's shared two-phase budget (it used to stop at the ILP config,
    /// so `serve --time-limit` silently ignored greedy-side work).
    pub fn build(self, time_limit: Option<Duration>) -> Box<dyn RefinementEngine> {
        let ilp_config = IlpEngineConfig {
            time_limit,
            ..IlpEngineConfig::default()
        };
        match self {
            EngineKind::Hybrid => {
                let hybrid = HybridEngine::with_engines(
                    GreedyEngine::new(),
                    IlpEngine::with_config(ilp_config),
                );
                match time_limit {
                    Some(limit) => Box::new(hybrid.with_time_limit(limit)),
                    None => Box::new(hybrid),
                }
            }
            EngineKind::Ilp => Box::new(IlpEngine::with_config(ilp_config)),
            EngineKind::Greedy => {
                let config = GreedyConfig {
                    time_limit,
                    ..GreedyConfig::default()
                };
                Box::new(GreedyEngine::with_config(config))
            }
        }
    }
}

/// A fully decoded, validated solve request.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Which search to run.
    pub op: SolveOp,
    /// The signature view of the dataset.
    pub view: SignatureView,
    /// The structuredness function.
    pub spec: SigmaSpec,
    /// The engine family.
    pub engine: EngineKind,
    /// `k` — required for `refine` and `highest-theta`.
    pub k: Option<usize>,
    /// θ — required for `refine` and `lowest-k`.
    pub theta: Option<Ratio>,
    /// Threshold increment for `highest-theta` (defaults to 1/100).
    pub step: Option<Ratio>,
    /// Sweep bound for `lowest-k` (defaults to the signature count).
    pub max_k: Option<usize>,
    /// Per-instance engine time limit.
    pub time_limit: Option<Duration>,
    /// Shard-routing metadata a cluster router stamps on the request
    /// (`"shard"`/`"epoch"` wire fields). Not part of the cache key — it
    /// describes where the request travels, not what it asks — and ignored
    /// by unsharded servers; a sharded server validates it on dispatch.
    pub routing: Option<ShardStamp>,
    /// The tenant issuing the request (`"tenant"` wire field). `None` is
    /// the default tenant — decode normalises an explicit `"default"` to
    /// `None`, so the two spellings are one identity everywhere. Unlike
    /// the routing stamp this *is* part of the cache key: tenants are
    /// namespaces, and two tenants asking the same question own separate
    /// entries (and separate single-flights).
    pub tenant: Option<String>,
}

/// The key of a solve request in the result cache: the content hash of the
/// view plus the canonical text of every solver-relevant parameter. The
/// params string is kept verbatim, so two requests collide only when their
/// parameters are genuinely equal *and* their views share the 128-bit
/// content hash — exact except for an accidental hash collision, which the
/// 128-bit width makes negligible (see [`SignatureView::cache_key`] for the
/// trust caveat).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`SignatureView::cache_key`] of the request's view.
    pub view: u128,
    /// Canonical `op|engine|rule|k|theta|step|max_k|time_limit` text, with
    /// a `|tenant=<id>` suffix for non-default tenants (the default tenant
    /// keeps the bare form, so pre-tenancy keys — and the segments built
    /// from them — stay byte-identical).
    pub params: String,
}

impl SolveRequest {
    /// The request's cache key, built from canonical forms so spelling
    /// variants (`"0.5"` vs `"1/2"`, `COV` vs `cov`) share one entry.
    pub fn cache_key(&self) -> CacheKey {
        let fmt_ratio = |r: &Option<Ratio>| r.map(|r| r.to_string()).unwrap_or_default();
        let fmt_usize = |n: &Option<usize>| n.map(|n| n.to_string()).unwrap_or_default();
        let mut params = format!(
            "{}|{}|{}|{}|{}|{}|{}|{}",
            self.op.name(),
            self.engine.name(),
            self.spec.spec_string(),
            fmt_usize(&self.k),
            fmt_ratio(&self.theta),
            fmt_ratio(&self.step),
            fmt_usize(&self.max_k),
            self.time_limit
                .map(|d| d.as_millis().to_string())
                .unwrap_or_default(),
        );
        if let Some(tenant) = &self.tenant {
            // Tenants are namespaces: the suffix keeps their entries
            // apart. The default tenant stays suffix-free so existing
            // segments replay onto the same keys.
            params.push_str("|tenant=");
            params.push_str(tenant);
        }
        CacheKey {
            view: self.view.cache_key(),
            params,
        }
    }

    /// Encodes the request as its wire object.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("op".to_owned(), Json::str(self.op.name())),
            ("view".to_owned(), view_to_json(&self.view)),
            ("rule".to_owned(), Json::str(self.spec.spec_string())),
            ("engine".to_owned(), Json::str(self.engine.name())),
        ];
        if let Some(k) = self.k {
            members.push(("k".to_owned(), Json::Int(k as i64)));
        }
        if let Some(theta) = self.theta {
            members.push(("theta".to_owned(), Json::str(theta.to_string())));
        }
        if let Some(step) = self.step {
            members.push(("step".to_owned(), Json::str(step.to_string())));
        }
        if let Some(max_k) = self.max_k {
            members.push(("max_k".to_owned(), Json::Int(max_k as i64)));
        }
        if let Some(limit) = self.time_limit {
            members.push((
                "time_limit_ms".to_owned(),
                Json::Int(limit.as_millis() as i64),
            ));
        }
        if let Some(stamp) = self.routing {
            members.push(("shard".to_owned(), Json::Int(i64::from(stamp.shard))));
            members.push(("epoch".to_owned(), Json::Int(stamp.epoch as i64)));
        }
        if let Some(tenant) = &self.tenant {
            members.push(("tenant".to_owned(), Json::str(tenant.clone())));
        }
        Json::Obj(members)
    }
}

/// Any decoded request.
#[derive(Clone, Debug)]
pub enum Request {
    /// One of the three solver operations (boxed: a solve request carries a
    /// whole signature view, the control variants carry nothing).
    Solve(Box<SolveRequest>),
    /// Counter snapshot.
    Status,
    /// Stop the server.
    Shutdown,
    /// A follower's replication handshake: turn this connection into a
    /// record feed (snapshot first, then live records). The optional shard
    /// spec must match the leader's — a follower built for a different
    /// topology would replay the wrong arc of the key space.
    ReplSubscribe {
        /// The follower's shard identity, if it runs sharded.
        shard: Option<ShardSpec>,
    },
    /// Promote this server (a follower) to leader: bump the replication
    /// epoch and start accepting writes.
    Promote,
    /// Dump the flight recorder: the most recent traced request spans,
    /// optionally restricted to slow-log promotions and/or one tenant.
    Trace {
        /// Only spans promoted by the slow-request log.
        slow_only: bool,
        /// Only spans of this tenant.
        tenant: Option<String>,
    },
    /// Negotiate the connection's wire framing. Asking for the framing the
    /// connection already speaks is a no-op; switching a `bin1` connection
    /// back to `json` is refused (frame boundaries and line boundaries
    /// cannot be re-synchronized mid-stream).
    Hello {
        /// The framing the client wants to switch to.
        framing: Framing,
    },
}

/// A malformed or invalid request.
#[derive(Debug, Clone)]
pub struct ProtocolError {
    /// Human-readable description, sent back verbatim in the error response.
    pub message: String,
}

impl ProtocolError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        ProtocolError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<json::JsonError> for ProtocolError {
    fn from(err: json::JsonError) -> Self {
        ProtocolError::new(format!("invalid JSON: {err}"))
    }
}

/// Upper bound on elements per batch envelope: enough to amortize framing
/// thousands of times over, small enough that one hostile line cannot queue
/// unbounded work.
pub const MAX_BATCH_REQUESTS: usize = 1024;

/// A decoded request line: either one request or a batch of independently
/// decoded elements (a bad element is an `Err` in place, never a reason to
/// reject its siblings).
#[derive(Debug)]
pub enum Decoded {
    /// The line carried a single request (or failed outright).
    Single(Result<Request, ProtocolError>),
    /// The line was a batch envelope; one result per element, in order.
    Batch(Vec<Result<Request, ProtocolError>>),
}

/// Decodes one request line, recognising the batch envelope. Malformed
/// JSON, a bad batch container, or an oversized batch yield
/// `Single(Err(…))` — one error response for the whole line.
///
/// This is a single pass: the text is parsed once and the `op` of every
/// object is extracted once, routing both the envelope decision (batch or
/// not) and the parameter decode. The binary framing's [`decode_payload`]
/// lowers into the same request layer.
pub fn decode_line(line: &str) -> Decoded {
    let value = match json::parse(line) {
        Ok(value) => value,
        Err(err) => return Decoded::Single(Err(err.into())),
    };
    decode_value(&value)
}

/// Decodes one parsed request object, recognising the batch envelope.
pub fn decode_value(value: &Json) -> Decoded {
    let op = match request_op(value) {
        Ok(op) => op,
        Err(err) => return Decoded::Single(Err(err)),
    };
    if op != "batch" {
        return Decoded::Single(decode_request_with_op(op, value));
    }
    let Some(requests) = value.get("requests").and_then(Json::as_arr) else {
        return Decoded::Single(Err(ProtocolError::new(
            "a batch request needs a 'requests' array",
        )));
    };
    if requests.len() > MAX_BATCH_REQUESTS {
        return Decoded::Single(Err(ProtocolError::new(format!(
            "batch of {} requests exceeds the limit of {MAX_BATCH_REQUESTS}",
            requests.len()
        ))));
    }
    Decoded::Batch(requests.iter().map(decode_batch_element).collect())
}

/// Extracts the `op` of a request object — done exactly once per object.
fn request_op(value: &Json) -> Result<&str, ProtocolError> {
    value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("request needs a string 'op' field"))
}

/// The ops refused inside a batch envelope, with the refusal message. All
/// of them rebind connection- or server-wide state, which has no
/// per-element meaning inside an envelope.
fn refuse_in_batch(op: &str) -> Option<ProtocolError> {
    match op {
        "batch" => Some(ProtocolError::new("batch envelopes cannot nest")),
        "shutdown" | "repl_subscribe" | "promote" | "hello" => Some(ProtocolError::new(format!(
            "'{op}' is not allowed inside a batch; send it on its own line"
        ))),
        _ => None,
    }
}

fn decode_batch_element(value: &Json) -> Result<Request, ProtocolError> {
    let op = request_op(value)?;
    if let Some(err) = refuse_in_batch(op) {
        return Err(err);
    }
    decode_request_with_op(op, value)
}

/// Decodes one request line (no batch envelope).
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    decode_request_value(&json::parse(line)?)
}

/// Decodes one parsed request object.
pub fn decode_request_value(value: &Json) -> Result<Request, ProtocolError> {
    decode_request_with_op(request_op(value)?, value)
}

/// Decodes one parsed request object whose `op` was already extracted.
fn decode_request_with_op(op: &str, value: &Json) -> Result<Request, ProtocolError> {
    match op {
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "promote" => Ok(Request::Promote),
        "trace" => {
            let slow_only = match value.get("slow") {
                None | Some(Json::Null) => false,
                Some(Json::Bool(flag)) => *flag,
                Some(_) => return Err(ProtocolError::new("'slow' in trace must be a boolean")),
            };
            let tenant = match value.get("tenant") {
                None | Some(Json::Null) => None,
                Some(Json::Str(name)) => Some(name.clone()),
                Some(_) => return Err(ProtocolError::new("'tenant' in trace must be a string")),
            };
            Ok(Request::Trace { slow_only, tenant })
        }
        "hello" => {
            let framing = match value.get("framing") {
                None | Some(Json::Null) => Framing::Json,
                Some(Json::Str(name)) => Framing::parse(name)?,
                Some(_) => return Err(ProtocolError::new("'framing' must be a string")),
            };
            Ok(Request::Hello { framing })
        }
        "repl_subscribe" => {
            let shard = match value.get("shard") {
                None | Some(Json::Null) => None,
                Some(Json::Str(text)) => Some(ShardSpec::parse(text).map_err(|err| {
                    ProtocolError::new(format!("invalid 'shard' in repl_subscribe: {err}"))
                })?),
                Some(_) => {
                    return Err(ProtocolError::new(
                        "'shard' in repl_subscribe must be an \"i/n\" string",
                    ))
                }
            };
            Ok(Request::ReplSubscribe { shard })
        }
        "refine" => decode_solve(value, SolveOp::Refine),
        "highest-theta" => decode_solve(value, SolveOp::HighestTheta),
        "lowest-k" => decode_solve(value, SolveOp::LowestK),
        other => Err(ProtocolError::new(format!(
            "unknown op '{other}'; expected refine, highest-theta, lowest-k, batch, \
             status, trace, shutdown, promote, repl_subscribe, or hello"
        ))),
    }
}

/// Encodes a batch request line from request objects (the client side of
/// the batch envelope).
pub fn encode_batch_request(requests: &[Json]) -> String {
    let mut out = String::from("{\"op\":\"batch\",\"requests\":[");
    for (idx, request) in requests.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        request.write_into(&mut out);
    }
    out.push_str("]}");
    out
}

fn decode_solve(value: &Json, op: SolveOp) -> Result<Request, ProtocolError> {
    let view = view_from_json(
        value
            .get("view")
            .ok_or_else(|| ProtocolError::new("solve request needs a 'view' field"))?,
    )?;
    let spec = match value.get("rule") {
        None => SigmaSpec::Coverage,
        Some(rule) => {
            let text = rule
                .as_str()
                .ok_or_else(|| ProtocolError::new("'rule' must be a string"))?;
            parse_spec(text).map_err(|err| ProtocolError::new(err.to_string()))?
        }
    };
    let engine = match value.get("engine") {
        None => EngineKind::Hybrid,
        Some(engine) => EngineKind::parse(
            engine
                .as_str()
                .ok_or_else(|| ProtocolError::new("'engine' must be a string"))?,
        )?,
    };
    let k = get_usize(value, "k")?;
    let theta = get_ratio(value, "theta")?;
    let step = get_ratio(value, "step")?;
    require_positive_step(step)?;
    let max_k = get_usize(value, "max_k")?;
    let time_limit = get_usize(value, "time_limit_ms")?.map(|ms| Duration::from_millis(ms as u64));
    // The routing stamp travels as a pair: a shard without an epoch (or
    // vice versa) is a malformed router, not a tolerable omission. The
    // epoch is a u64 fingerprint carried through the integer-only JSON as
    // its two's-complement i64.
    let routing = match (get_usize(value, "shard")?, value.get("epoch")) {
        (None, None) => None,
        (Some(shard), Some(Json::Int(epoch))) => Some(ShardStamp {
            shard: u32::try_from(shard)
                .map_err(|_| ProtocolError::new("'shard' is out of range"))?,
            epoch: *epoch as u64,
        }),
        (_, Some(other)) if !matches!(other, Json::Int(_)) => {
            return Err(ProtocolError::new("'epoch' must be an integer"))
        }
        _ => {
            return Err(ProtocolError::new(
                "'shard' and 'epoch' must be given together (a routing stamp)",
            ))
        }
    };

    // The tenant identity. A missing field and an explicit "default" are
    // the same tenant, normalised to `None` so every later comparison
    // (cache key, registry lookup, segment encoding) sees one spelling.
    let tenant = match value.get("tenant") {
        None | Some(Json::Null) => None,
        Some(Json::Str(id)) => {
            validate_tenant(id).map_err(|err| ProtocolError::new(format!("'tenant': {err}")))?;
            if id == DEFAULT_TENANT {
                None
            } else {
                Some(id.clone())
            }
        }
        Some(_) => return Err(ProtocolError::new("'tenant' must be a string")),
    };

    require_solve_params(op, k, theta)?;

    Ok(Request::Solve(Box::new(SolveRequest {
        op,
        view,
        spec,
        engine,
        k,
        theta,
        step,
        max_k,
        time_limit,
        routing,
        tenant,
    })))
}

/// A non-positive step would keep the highest-theta sweep at the same
/// threshold forever; refuse before a worker is committed. Shared by both
/// framings' decoders.
fn require_positive_step(step: Option<Ratio>) -> Result<(), ProtocolError> {
    if let Some(step) = step {
        if step <= Ratio::ZERO {
            return Err(ProtocolError::new(
                "'step' must be strictly positive (e.g. \"1/100\")",
            ));
        }
    }
    Ok(())
}

/// Op-specific required parameters, shared by both framings' decoders.
fn require_solve_params(
    op: SolveOp,
    k: Option<usize>,
    theta: Option<Ratio>,
) -> Result<(), ProtocolError> {
    match op {
        SolveOp::Refine => {
            if k.is_none() || theta.is_none() {
                return Err(ProtocolError::new("'refine' needs both 'k' and 'theta'"));
            }
        }
        SolveOp::HighestTheta => {
            if k.is_none() {
                return Err(ProtocolError::new("'highest-theta' needs 'k'"));
            }
        }
        SolveOp::LowestK => {
            if theta.is_none() {
                return Err(ProtocolError::new("'lowest-k' needs 'theta'"));
            }
        }
    }
    Ok(())
}

fn get_usize(value: &Json, field: &str) -> Result<Option<usize>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(n)) if *n >= 0 => Ok(Some(*n as usize)),
        Some(_) => Err(ProtocolError::new(format!(
            "'{field}' must be a non-negative integer"
        ))),
    }
}

fn get_ratio(value: &Json, field: &str) -> Result<Option<Ratio>, ProtocolError> {
    match value.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(text)) => Ratio::parse(text)
            .map(Some)
            .map_err(|err| ProtocolError::new(format!("invalid '{field}': {err}"))),
        Some(Json::Int(n)) => Ok(Some(Ratio::from_integer(i128::from(*n)))),
        Some(_) => Err(ProtocolError::new(format!(
            "'{field}' must be a ratio string like \"1/2\" (or an integer)"
        ))),
    }
}

// ---------------------------------------------------------------------
// The `bin1` request payload codec.
//
// A request frame's payload starts with a kind byte:
//
// | byte | payload after it                                         |
// |------|----------------------------------------------------------|
// | 1–3  | a solve body (`refine`, `highest-theta`, `lowest-k`)     |
// | 4–6  | nothing (`status`, `shutdown`, `promote`)                |
// | 7    | a batch: varint count, then per element varint length +  |
// |      | a nested request payload (same kind bytes, minus the     |
// |      | ops refused inside batches)                              |
// | 8    | a canonical JSON request object, verbatim — the escape   |
// |      | hatch that keeps the binary framing fully general        |
//
// A solve body is `engine byte · flags byte · view · spec · optionals in
// flag order`. Strings are varint-length-prefixed UTF-8; integers are
// varints; ratios travel as their canonical text (exactness is the
// protocol's contract, and the text is already the canonical form the
// cache key is built from). The decoder is a single forward pass over the
// payload slice, borrowing every string until it materialises the
// `SolveRequest` — no intermediate `Json` tree, no per-element `String`.
// ---------------------------------------------------------------------

/// Kind byte of a binary `refine` request payload.
const BIN_REFINE: u8 = 1;
/// Kind byte of a binary `highest-theta` request payload.
const BIN_HIGHEST_THETA: u8 = 2;
/// Kind byte of a binary `lowest-k` request payload.
const BIN_LOWEST_K: u8 = 3;
/// Kind byte of a binary `status` request payload.
const BIN_STATUS: u8 = 4;
/// Kind byte of a binary `shutdown` request payload.
const BIN_SHUTDOWN: u8 = 5;
/// Kind byte of a binary `promote` request payload.
const BIN_PROMOTE: u8 = 6;
/// Kind byte of a binary batch payload.
const BIN_BATCH: u8 = 7;
/// Kind byte of an embedded-JSON request payload.
const BIN_JSON: u8 = 8;

/// Flag bits marking which optional fields a binary solve body carries.
const SF_K: u8 = 1;
const SF_THETA: u8 = 2;
const SF_STEP: u8 = 4;
const SF_MAX_K: u8 = 8;
const SF_TIME_LIMIT: u8 = 16;
const SF_ROUTING: u8 = 32;
const SF_TENANT: u8 = 64;
const SF_ALL: u8 = SF_K | SF_THETA | SF_STEP | SF_MAX_K | SF_TIME_LIMIT | SF_ROUTING | SF_TENANT;

fn engine_byte(engine: EngineKind) -> u8 {
    match engine {
        EngineKind::Hybrid => 1,
        EngineKind::Ilp => 2,
        EngineKind::Greedy => 3,
    }
}

fn engine_from_byte(byte: u8) -> Result<EngineKind, ProtocolError> {
    match byte {
        1 => Ok(EngineKind::Hybrid),
        2 => Ok(EngineKind::Ilp),
        3 => Ok(EngineKind::Greedy),
        other => Err(ProtocolError::new(format!(
            "unknown engine byte {other}; expected 1 (hybrid), 2 (ilp), or 3 (greedy)"
        ))),
    }
}

/// Appends a varint-length-prefixed UTF-8 string.
fn put_str(out: &mut Vec<u8>, text: &str) {
    write_varint(out, text.len() as u64);
    out.extend_from_slice(text.as_bytes());
}

/// A forward-only cursor over a frame payload. Every read is
/// bounds-checked against the slice; claimed lengths are additionally
/// bounded by the bytes actually remaining, so a hostile length prefix can
/// never drive allocation past the frame it arrived in.
struct BinCursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> BinCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BinCursor { buf, at: 0 }
    }

    fn varint(&mut self) -> Result<u64, ProtocolError> {
        match read_varint(&self.buf[self.at..]) {
            Ok(Some((value, used))) => {
                self.at += used;
                Ok(value)
            }
            Ok(None) => Err(ProtocolError::new("truncated binary payload")),
            Err(message) => Err(ProtocolError::new(message)),
        }
    }

    fn usize_value(&mut self) -> Result<usize, ProtocolError> {
        usize::try_from(self.varint()?)
            .map_err(|_| ProtocolError::new("binary integer is out of range"))
    }

    /// A varint announcing upcoming items or bytes, each at least one byte
    /// wide — so any claim beyond the remaining payload is malformed.
    fn bounded_len(&mut self) -> Result<usize, ProtocolError> {
        let value = self.varint()?;
        if value > (self.buf.len() - self.at) as u64 {
            return Err(ProtocolError::new(
                "binary length prefix overruns the payload",
            ));
        }
        Ok(value as usize)
    }

    fn byte(&mut self) -> Result<u8, ProtocolError> {
        let byte = *self
            .buf
            .get(self.at)
            .ok_or_else(|| ProtocolError::new("truncated binary payload"))?;
        self.at += 1;
        Ok(byte)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| ProtocolError::new("truncated binary payload"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// A varint-length-prefixed UTF-8 string, borrowed from the payload.
    fn str_slice(&mut self) -> Result<&'a str, ProtocolError> {
        let len = self.bounded_len()?;
        std::str::from_utf8(self.bytes(len)?)
            .map_err(|_| ProtocolError::new("binary string is not valid UTF-8"))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Encodes a solve request as its binary payload (kind byte included).
pub fn encode_solve_bin(solve: &SolveRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.push(match solve.op {
        SolveOp::Refine => BIN_REFINE,
        SolveOp::HighestTheta => BIN_HIGHEST_THETA,
        SolveOp::LowestK => BIN_LOWEST_K,
    });
    out.push(engine_byte(solve.engine));
    let mut flags = 0u8;
    let set = |present: bool, bit: u8| if present { bit } else { 0 };
    flags |= set(solve.k.is_some(), SF_K);
    flags |= set(solve.theta.is_some(), SF_THETA);
    flags |= set(solve.step.is_some(), SF_STEP);
    flags |= set(solve.max_k.is_some(), SF_MAX_K);
    flags |= set(solve.time_limit.is_some(), SF_TIME_LIMIT);
    flags |= set(solve.routing.is_some(), SF_ROUTING);
    flags |= set(solve.tenant.is_some(), SF_TENANT);
    out.push(flags);
    let properties = solve.view.properties();
    write_varint(&mut out, properties.len() as u64);
    for property in properties {
        put_str(&mut out, property);
    }
    let entries = solve.view.entries();
    write_varint(&mut out, entries.len() as u64);
    for entry in entries {
        let support = entry.support();
        write_varint(&mut out, support.len() as u64);
        for index in support {
            write_varint(&mut out, index as u64);
        }
        write_varint(&mut out, entry.count as u64);
    }
    put_str(&mut out, &solve.spec.spec_string());
    if let Some(k) = solve.k {
        write_varint(&mut out, k as u64);
    }
    if let Some(theta) = solve.theta {
        put_str(&mut out, &theta.to_string());
    }
    if let Some(step) = solve.step {
        put_str(&mut out, &step.to_string());
    }
    if let Some(max_k) = solve.max_k {
        write_varint(&mut out, max_k as u64);
    }
    if let Some(limit) = solve.time_limit {
        write_varint(&mut out, limit.as_millis() as u64);
    }
    if let Some(stamp) = solve.routing {
        write_varint(&mut out, u64::from(stamp.shard));
        write_varint(&mut out, stamp.epoch);
    }
    if let Some(tenant) = &solve.tenant {
        put_str(&mut out, tenant);
    }
    out
}

/// Encodes any decoded request as its binary payload. Requests with no
/// compact form (`repl_subscribe`, `hello`) ride the embedded-JSON escape
/// hatch.
pub fn encode_request_bin(request: &Request) -> Vec<u8> {
    match request {
        Request::Solve(solve) => encode_solve_bin(solve),
        Request::Status => vec![BIN_STATUS],
        Request::Shutdown => vec![BIN_SHUTDOWN],
        Request::Promote => vec![BIN_PROMOTE],
        Request::ReplSubscribe { shard } => {
            encode_json_payload(&encode_repl_subscribe(shard.as_ref()))
        }
        Request::Hello { framing } => encode_json_payload(&encode_hello(*framing)),
        Request::Trace { slow_only, tenant } => {
            encode_json_payload(&encode_trace(*slow_only, tenant.as_deref()))
        }
    }
}

/// Wraps a canonical JSON request object as an embedded-JSON payload.
pub fn encode_json_payload(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len() + 1);
    out.push(BIN_JSON);
    out.extend_from_slice(text.as_bytes());
    out
}

/// Builds a binary batch payload from already-encoded element payloads.
pub fn encode_batch_bin(elements: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = elements.iter().map(|el| el.len() + 10).sum();
    let mut out = Vec::with_capacity(total + 11);
    out.push(BIN_BATCH);
    write_varint(&mut out, elements.len() as u64);
    for element in elements {
        write_varint(&mut out, element.len() as u64);
        out.extend_from_slice(element);
    }
    out
}

/// Decodes a `bin1` request frame's payload, recognising the batch
/// payload — the binary mirror of [`decode_line`], lowering into the same
/// request layer and the same per-element error isolation.
pub fn decode_payload(payload: &[u8]) -> Decoded {
    match payload.first() {
        None => Decoded::Single(Err(ProtocolError::new("empty request frame"))),
        Some(&BIN_BATCH) => {
            let mut cur = BinCursor::new(&payload[1..]);
            let count = match cur.usize_value() {
                Ok(count) => count,
                Err(err) => return Decoded::Single(Err(err)),
            };
            if count > MAX_BATCH_REQUESTS {
                return Decoded::Single(Err(ProtocolError::new(format!(
                    "batch of {count} requests exceeds the limit of {MAX_BATCH_REQUESTS}"
                ))));
            }
            let mut elements = Vec::with_capacity(count);
            for _ in 0..count {
                match cur.bounded_len().and_then(|len| cur.bytes(len)) {
                    Ok(element) => elements.push(decode_request_bin(element, true)),
                    Err(err) => return Decoded::Single(Err(err)),
                }
            }
            if !cur.done() {
                return Decoded::Single(Err(ProtocolError::new(
                    "trailing bytes after the batch payload",
                )));
            }
            Decoded::Batch(elements)
        }
        // The embedded-JSON escape hatch keeps full decode_line semantics,
        // batch envelopes included.
        Some(&BIN_JSON) => match std::str::from_utf8(&payload[1..]) {
            Ok(text) => decode_line(text),
            Err(_) => Decoded::Single(Err(ProtocolError::new(
                "embedded JSON payload is not valid UTF-8",
            ))),
        },
        Some(_) => Decoded::Single(decode_request_bin(payload, false)),
    }
}

/// Decodes one binary request payload (a whole frame's, or one batch
/// element's — `in_batch` applies the same op refusals as JSON batches).
fn decode_request_bin(payload: &[u8], in_batch: bool) -> Result<Request, ProtocolError> {
    let Some((&kind, body)) = payload.split_first() else {
        return Err(ProtocolError::new("empty request payload"));
    };
    let expect_empty = |body: &[u8], op: &str| {
        if body.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::new(format!(
                "trailing bytes after the '{op}' payload"
            )))
        }
    };
    let refused = |op: &str| refuse_in_batch(op).expect("op is refused in batches");
    match kind {
        BIN_REFINE => decode_solve_bin(SolveOp::Refine, body),
        BIN_HIGHEST_THETA => decode_solve_bin(SolveOp::HighestTheta, body),
        BIN_LOWEST_K => decode_solve_bin(SolveOp::LowestK, body),
        BIN_STATUS => {
            expect_empty(body, "status")?;
            Ok(Request::Status)
        }
        BIN_SHUTDOWN => {
            if in_batch {
                return Err(refused("shutdown"));
            }
            expect_empty(body, "shutdown")?;
            Ok(Request::Shutdown)
        }
        BIN_PROMOTE => {
            if in_batch {
                return Err(refused("promote"));
            }
            expect_empty(body, "promote")?;
            Ok(Request::Promote)
        }
        BIN_BATCH => Err(refused("batch")),
        BIN_JSON => {
            let text = std::str::from_utf8(body)
                .map_err(|_| ProtocolError::new("embedded JSON payload is not valid UTF-8"))?;
            let value = json::parse(text)?;
            let op = request_op(&value)?;
            if in_batch {
                if let Some(err) = refuse_in_batch(op) {
                    return Err(err);
                }
            }
            decode_request_with_op(op, &value)
        }
        other => Err(ProtocolError::new(format!(
            "unknown binary request kind {other}"
        ))),
    }
}

/// Decodes a binary solve body in one forward pass, borrowing every
/// string from the payload until the final materialisation.
fn decode_solve_bin(op: SolveOp, body: &[u8]) -> Result<Request, ProtocolError> {
    let mut cur = BinCursor::new(body);
    let engine = engine_from_byte(cur.byte()?)?;
    let flags = cur.byte()?;
    if flags & !SF_ALL != 0 {
        return Err(ProtocolError::new(format!(
            "unknown solve flag bits 0x{:02X}",
            flags & !SF_ALL
        )));
    }
    let nprops = cur.bounded_len()?;
    let mut properties = Vec::with_capacity(nprops);
    for _ in 0..nprops {
        properties.push(cur.str_slice()?.to_owned());
    }
    let nsigs = cur.bounded_len()?;
    let mut signatures = Vec::with_capacity(nsigs);
    for _ in 0..nsigs {
        let nidx = cur.bounded_len()?;
        let mut indexes = Vec::with_capacity(nidx);
        for _ in 0..nidx {
            indexes.push(cur.usize_value()?);
        }
        let count = cur.usize_value()?;
        signatures.push((indexes, count));
    }
    let view = SignatureView::from_counts(properties, signatures)
        .map_err(|err| ProtocolError::new(format!("invalid view: {err}")))?;
    let spec = parse_spec(cur.str_slice()?).map_err(|err| ProtocolError::new(err.to_string()))?;
    let ratio_field = |text: &str, field: &str| {
        Ratio::parse(text).map_err(|err| ProtocolError::new(format!("invalid '{field}': {err}")))
    };
    let k = if flags & SF_K != 0 {
        Some(cur.usize_value()?)
    } else {
        None
    };
    let theta = if flags & SF_THETA != 0 {
        Some(ratio_field(cur.str_slice()?, "theta")?)
    } else {
        None
    };
    let step = if flags & SF_STEP != 0 {
        Some(ratio_field(cur.str_slice()?, "step")?)
    } else {
        None
    };
    require_positive_step(step)?;
    let max_k = if flags & SF_MAX_K != 0 {
        Some(cur.usize_value()?)
    } else {
        None
    };
    let time_limit = if flags & SF_TIME_LIMIT != 0 {
        Some(Duration::from_millis(cur.varint()?))
    } else {
        None
    };
    let routing = if flags & SF_ROUTING != 0 {
        Some(ShardStamp {
            shard: u32::try_from(cur.varint()?)
                .map_err(|_| ProtocolError::new("'shard' is out of range"))?,
            epoch: cur.varint()?,
        })
    } else {
        None
    };
    let tenant = if flags & SF_TENANT != 0 {
        let id = cur.str_slice()?;
        validate_tenant(id).map_err(|err| ProtocolError::new(format!("'tenant': {err}")))?;
        if id == DEFAULT_TENANT {
            None
        } else {
            Some(id.to_owned())
        }
    } else {
        None
    };
    if !cur.done() {
        return Err(ProtocolError::new("trailing bytes after the solve payload"));
    }
    require_solve_params(op, k, theta)?;
    Ok(Request::Solve(Box::new(SolveRequest {
        op,
        view,
        spec,
        engine,
        k,
        theta,
        step,
        max_k,
        time_limit,
        routing,
        tenant,
    })))
}

/// Encodes the `hello` negotiation request line.
pub fn encode_hello(framing: Framing) -> String {
    format!("{{\"op\":\"hello\",\"framing\":\"{}\"}}", framing.name())
}

/// Encodes the server's `hello` acknowledgement. It travels in the *newly
/// negotiated* framing (as a frame payload when switching to `bin1`), so a
/// client can classify the reply by its first byte: `0xB5` means the
/// switch happened, `{` means a JSON answer — either the acknowledgement
/// of `"framing":"json"` or an old server's unknown-op error.
pub fn encode_hello_ok(framing: Framing) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"hello\",\"framing\":\"{}\"}}",
        framing.name()
    )
}

/// Encodes a signature view as its wire object.
pub fn view_to_json(view: &SignatureView) -> Json {
    Json::obj(vec![
        (
            "properties",
            Json::Arr(
                view.properties()
                    .iter()
                    .map(|p| Json::str(p.clone()))
                    .collect(),
            ),
        ),
        (
            "signatures",
            Json::Arr(
                view.entries()
                    .iter()
                    .map(|entry| {
                        Json::Arr(vec![
                            Json::Arr(
                                entry
                                    .support()
                                    .into_iter()
                                    .map(|col| Json::Int(col as i64))
                                    .collect(),
                            ),
                            Json::Int(entry.count as i64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a signature view from its wire object, validating dimensions.
pub fn view_from_json(value: &Json) -> Result<SignatureView, ProtocolError> {
    let properties: Vec<String> = value
        .get("properties")
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtocolError::new("'view.properties' must be an array of strings"))?
        .iter()
        .map(|p| {
            p.as_str()
                .map(str::to_owned)
                .ok_or_else(|| ProtocolError::new("'view.properties' must be an array of strings"))
        })
        .collect::<Result<_, _>>()?;
    let signatures_json = value
        .get("signatures")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            ProtocolError::new("'view.signatures' must be an array of [[indexes],count] pairs")
        })?;
    let mut signatures = Vec::with_capacity(signatures_json.len());
    for pair in signatures_json {
        let invalid =
            || ProtocolError::new("'view.signatures' entries must be [[indexes],count] pairs");
        let items = pair.as_arr().ok_or_else(invalid)?;
        if items.len() != 2 {
            return Err(invalid());
        }
        let indexes: Vec<usize> = items[0]
            .as_arr()
            .ok_or_else(invalid)?
            .iter()
            .map(|idx| match idx {
                Json::Int(n) if *n >= 0 => Ok(*n as usize),
                _ => Err(invalid()),
            })
            .collect::<Result<_, _>>()?;
        let count = match items[1] {
            Json::Int(n) if n >= 0 => n as usize,
            _ => return Err(invalid()),
        };
        signatures.push((indexes, count));
    }
    SignatureView::from_counts(properties, signatures)
        .map_err(|err| ProtocolError::new(format!("invalid view: {err}")))
}

/// Encodes a wire refinement as its JSON object.
pub fn refinement_to_json(refinement: &WireRefinement) -> Json {
    Json::obj(vec![
        ("spec", Json::str(refinement.spec.clone())),
        ("threshold", Json::str(refinement.threshold.clone())),
        (
            "sorts",
            Json::Arr(
                refinement
                    .sorts
                    .iter()
                    .map(|sort| {
                        Json::obj(vec![
                            (
                                "signatures",
                                Json::Arr(
                                    sort.signatures
                                        .iter()
                                        .map(|&sig| Json::Int(sig as i64))
                                        .collect(),
                                ),
                            ),
                            ("subjects", Json::Int(sort.subjects as i64)),
                            ("sigma", Json::str(sort.sigma.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a wire refinement from its JSON object.
pub fn refinement_from_json(value: &Json) -> Result<WireRefinement, ProtocolError> {
    let invalid = |what: &str| ProtocolError::new(format!("invalid refinement: {what}"));
    let spec = value
        .get("spec")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("missing 'spec'"))?
        .to_owned();
    let threshold = value
        .get("threshold")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("missing 'threshold'"))?
        .to_owned();
    let mut sorts = Vec::new();
    for sort in value
        .get("sorts")
        .and_then(Json::as_arr)
        .ok_or_else(|| invalid("missing 'sorts'"))?
    {
        let signatures = sort
            .get("signatures")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("missing 'signatures'"))?
            .iter()
            .map(|sig| match sig {
                Json::Int(n) if *n >= 0 => Ok(*n as usize),
                _ => Err(invalid("signature indexes must be non-negative integers")),
            })
            .collect::<Result<_, _>>()?;
        let subjects = sort
            .get("subjects")
            .and_then(Json::as_int)
            .filter(|&n| n >= 0)
            .ok_or_else(|| invalid("missing 'subjects'"))? as usize;
        let sigma = sort
            .get("sigma")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing 'sigma'"))?
            .to_owned();
        sorts.push(WireSort {
            signatures,
            subjects,
            sigma,
        });
    }
    Ok(WireRefinement {
        spec,
        threshold,
        sorts,
    })
}

/// Encodes a `refine` answer as the response `result` object.
pub fn outcome_to_json(outcome: &WireOutcome) -> Json {
    match outcome {
        WireOutcome::Refinement(refinement) => Json::obj(vec![
            ("outcome", Json::str("refinement")),
            ("refinement", refinement_to_json(refinement)),
        ]),
        WireOutcome::Infeasible => Json::obj(vec![("outcome", Json::str("infeasible"))]),
        WireOutcome::Unknown => Json::obj(vec![("outcome", Json::str("unknown"))]),
    }
}

/// Encodes a `highest-theta` answer as the response `result` object.
pub fn highest_theta_to_json(result: &WireHighestTheta) -> Json {
    Json::obj(vec![
        ("theta", Json::str(result.theta.clone())),
        ("hit_budget", Json::Bool(result.hit_budget)),
        ("probes", Json::Int(result.probes as i64)),
        (
            "refinement",
            result
                .refinement
                .as_ref()
                .map(refinement_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Encodes a `lowest-k` answer as the response `result` object.
pub fn lowest_k_to_json(result: &WireLowestK) -> Json {
    Json::obj(vec![
        (
            "k",
            result.k.map(|k| Json::Int(k as i64)).unwrap_or(Json::Null),
        ),
        ("hit_budget", Json::Bool(result.hit_budget)),
        ("probes", Json::Int(result.probes as i64)),
        (
            "refinement",
            result
                .refinement
                .as_ref()
                .map(refinement_to_json)
                .unwrap_or(Json::Null),
        ),
    ])
}

/// The success envelope split around its `result` slot: an owned prefix
/// and the closing suffix. The server's vectored writer splices the cached
/// result text between the two without copying it; joining the parts with
/// the result in the middle is byte-identical to [`encode_success`].
pub fn encode_success_parts(op: &str, source: Source) -> (String, &'static str) {
    (
        format!(
            "{{\"ok\":true,\"op\":\"{op}\",\"source\":\"{}\",\"result\":",
            source.name()
        ),
        "}",
    )
}

/// Builds a success response line. `result_text` must be the canonical
/// serialization of the result object; it is spliced in verbatim, which is
/// what makes cache replays byte-identical to the original response body.
pub fn encode_success(op: &str, source: Source, result_text: &str) -> String {
    let (mut out, suffix) = encode_success_parts(op, source);
    out.reserve(result_text.len() + suffix.len());
    out.push_str(result_text);
    out.push_str(suffix);
    out
}

/// Builds an error response line.
pub fn encode_error(message: &str) -> String {
    let mut out = String::with_capacity(message.len() + 24);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push('}');
    out
}

/// Builds the structured `wrong_shard` error line a shard sends when it
/// receives a request it does not own (or a request stamped with a
/// different ring epoch): the plain error fields plus a machine-readable
/// `code` and the shard/owner/epoch triple a router needs to re-route.
pub fn encode_wrong_shard(message: &str, detail: &WrongShard) -> String {
    let mut out = String::with_capacity(message.len() + 96);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(&format!(
        ",\"code\":\"wrong_shard\",\"shard\":{},\"owner\":{},\"epoch\":{}}}",
        detail.shard, detail.owner, detail.epoch as i64
    ));
    out
}

/// Reads the structured `wrong_shard` detail out of a parsed error
/// response, if the `code` marks one.
pub fn wrong_shard_from_json(value: &Json) -> Option<WrongShard> {
    if value.get("code").and_then(Json::as_str) != Some("wrong_shard") {
        return None;
    }
    let int = |field: &str| value.get(field).and_then(Json::as_int);
    Some(WrongShard {
        shard: u32::try_from(int("shard")?).ok()?,
        owner: u32::try_from(int("owner")?).ok()?,
        epoch: int("epoch")? as u64,
    })
}

/// Builds the structured `not_leader` error line a replication follower
/// sends when asked to do anything it cannot serve from its replicated
/// cache: the plain error fields plus a machine-readable `code` and the
/// leader's address, so clients redirect instead of guessing.
pub fn encode_not_leader(message: &str, detail: &NotLeader) -> String {
    let mut out = String::with_capacity(message.len() + detail.leader.len() + 64);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(",\"code\":\"not_leader\",\"leader\":");
    Json::str(detail.leader.clone()).write_into(&mut out);
    out.push('}');
    out
}

/// Reads the structured `not_leader` detail out of a parsed error response,
/// if the `code` marks one.
pub fn not_leader_from_json(value: &Json) -> Option<NotLeader> {
    if value.get("code").and_then(Json::as_str) != Some("not_leader") {
        return None;
    }
    Some(NotLeader {
        leader: value.get("leader").and_then(Json::as_str)?.to_owned(),
    })
}

/// Builds the structured `over_quota` error line admission control sends
/// when a tenant's token bucket runs dry: the plain error fields plus a
/// machine-readable `code`, the refused tenant, and the deterministic
/// retry hint. Per-request (and per-batch-element), never connection-fatal.
pub fn encode_over_quota(message: &str, detail: &OverQuota) -> String {
    let mut out = String::with_capacity(message.len() + detail.tenant.len() + 80);
    out.push_str("{\"ok\":false,\"error\":");
    Json::str(message).write_into(&mut out);
    out.push_str(",\"code\":\"over_quota\",\"tenant\":");
    Json::str(detail.tenant.clone()).write_into(&mut out);
    out.push_str(&format!(
        ",\"retry_after_ms\":{}}}",
        detail.retry_after_ms as i64
    ));
    out
}

/// Reads the structured `over_quota` detail out of a parsed error response,
/// if the `code` marks one.
pub fn over_quota_from_json(value: &Json) -> Option<OverQuota> {
    if value.get("code").and_then(Json::as_str) != Some("over_quota") {
        return None;
    }
    Some(OverQuota {
        tenant: value.get("tenant").and_then(Json::as_str)?.to_owned(),
        retry_after_ms: value.get("retry_after_ms").and_then(Json::as_int)? as u64,
    })
}

/// Encodes a `trace` request (the client side of the flight-recorder dump).
pub fn encode_trace(slow_only: bool, tenant: Option<&str>) -> String {
    let mut members = vec![("op", Json::str("trace"))];
    if slow_only {
        members.push(("slow", Json::Bool(true)));
    }
    if let Some(tenant) = tenant {
        members.push(("tenant", Json::str(tenant)));
    }
    Json::obj(members).to_text()
}

/// Encodes the replication subscribe handshake line a follower opens its
/// feed connection with.
pub fn encode_repl_subscribe(shard: Option<&ShardSpec>) -> String {
    match shard {
        None => "{\"op\":\"repl_subscribe\"}".to_owned(),
        Some(spec) => format!("{{\"op\":\"repl_subscribe\",\"shard\":\"{spec}\"}}"),
    }
}

/// Encodes one replication stream record as its wire line.
///
/// The 128-bit view hash travels as 32 hex digits (it does not fit the
/// integer-only JSON); the epoch and sequence numbers as two's-complement
/// i64, like the routing stamp. The result text is carried as a JSON
/// *string* (escaped), and decoding restores the exact original bytes —
/// the follower's cache entry is byte-identical to the leader's.
pub fn encode_repl_record(record: &ReplRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"op\":\"repl_record\",\"kind\":\"");
    out.push_str(record.kind());
    out.push_str(&format!(
        "\",\"seq\":{},\"epoch\":{}",
        record.seq() as i64,
        record.epoch() as i64
    ));
    match record {
        ReplRecord::Put {
            view,
            params,
            result,
            tenant,
            ..
        } => {
            out.push_str(&format!(",\"view\":\"{view:032x}\",\"params\":"));
            Json::str(params.clone()).write_into(&mut out);
            out.push_str(",\"result\":");
            Json::str(result.clone()).write_into(&mut out);
            // The tenant travels only when it is not the default — an old
            // follower decoding a default-tenant stream sees the exact
            // pre-tenancy line bytes.
            if tenant != DEFAULT_TENANT {
                out.push_str(",\"tenant\":");
                Json::str(tenant.clone()).write_into(&mut out);
            }
        }
        ReplRecord::Evict { view, params, .. } => {
            out.push_str(&format!(",\"view\":\"{view:032x}\",\"params\":"));
            Json::str(params.clone()).write_into(&mut out);
        }
        ReplRecord::Checkpoint { live, .. } => {
            out.push_str(&format!(",\"live\":{}", *live as i64));
        }
    }
    out.push('}');
    out
}

/// Decodes one replication stream line back into its record.
pub fn repl_record_from_json(value: &Json) -> Result<ReplRecord, ProtocolError> {
    if value.get("op").and_then(Json::as_str) != Some("repl_record") {
        return Err(ProtocolError::new("not a repl_record line"));
    }
    let int = |field: &'static str| -> Result<u64, ProtocolError> {
        value
            .get(field)
            .and_then(Json::as_int)
            .map(|n| n as u64)
            .ok_or_else(|| ProtocolError::new(format!("repl_record lacks '{field}'")))
    };
    let seq = int("seq")?;
    let epoch = int("epoch")?;
    let view = || -> Result<u128, ProtocolError> {
        let text = value
            .get("view")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtocolError::new("repl_record lacks 'view'"))?;
        u128::from_str_radix(text, 16)
            .map_err(|_| ProtocolError::new("repl_record 'view' is not a hex hash"))
    };
    let text = |field: &'static str| -> Result<String, ProtocolError> {
        value
            .get(field)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProtocolError::new(format!("repl_record lacks '{field}'")))
    };
    match value.get("kind").and_then(Json::as_str) {
        Some("put") => Ok(ReplRecord::Put {
            seq,
            epoch,
            view: view()?,
            params: text("params")?,
            result: text("result")?,
            // Absent on pre-tenancy (and default-tenant) streams; a
            // missing field is the default tenant, never a decode error —
            // the follower feed treats decode errors as a lost feed.
            tenant: value
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or(DEFAULT_TENANT)
                .to_owned(),
        }),
        Some("evict") => Ok(ReplRecord::Evict {
            seq,
            epoch,
            view: view()?,
            params: text("params")?,
        }),
        Some("checkpoint") => Ok(ReplRecord::Checkpoint {
            seq,
            epoch,
            live: int("live")?,
        }),
        other => Err(ProtocolError::new(format!(
            "unknown repl_record kind {other:?}"
        ))),
    }
}

/// Builds a batch response line from already-encoded element envelopes
/// (each exactly what the element would have been as a standalone response
/// line). Splicing the pre-encoded elements is the batch-level analogue of
/// [`encode_success`]'s verbatim `result_text`: cached elements keep their
/// byte-identity guarantee inside a batch.
pub fn encode_batch(items: &[String]) -> String {
    let total: usize = items.iter().map(|item| item.len() + 1).sum();
    let mut out = String::with_capacity(total + 40);
    out.push_str(BATCH_ENVELOPE_PREFIX);
    for (idx, item) in items.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push_str(BATCH_ENVELOPE_SUFFIX);
    out
}

/// The batch envelope split around its `results` array, for chunk-splicing
/// assemblers: `prefix + items.join(",") + suffix` is byte-identical to
/// [`encode_batch`].
pub const BATCH_ENVELOPE_PREFIX: &str = "{\"ok\":true,\"op\":\"batch\",\"results\":[";
/// See [`BATCH_ENVELOPE_PREFIX`].
pub const BATCH_ENVELOPE_SUFFIX: &str = "]}";

/// Encodes any wire envelope to its response line.
pub fn encode_envelope(envelope: &WireEnvelope) -> String {
    match envelope {
        WireEnvelope::Success {
            op,
            source,
            result_text,
        } => encode_success(op, *source, result_text),
        WireEnvelope::Error {
            message,
            wrong_shard: None,
        } => encode_error(message),
        WireEnvelope::Error {
            message,
            wrong_shard: Some(detail),
        } => encode_wrong_shard(message, detail),
        WireEnvelope::Batch { items } => {
            let encoded: Vec<String> = items.iter().map(encode_envelope).collect();
            encode_batch(&encoded)
        }
    }
}

/// Decodes a parsed response value back into its wire envelope (the
/// client-side inverse of [`encode_envelope`]). The `result_text` of a
/// success element is recovered by canonical re-serialization, which is
/// byte-faithful because the protocol serializer is deterministic.
pub fn envelope_from_json(value: &Json) -> Result<WireEnvelope, ProtocolError> {
    match value.get("ok").and_then(Json::as_bool) {
        Some(false) => Ok(WireEnvelope::Error {
            message: value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified server error")
                .to_owned(),
            wrong_shard: wrong_shard_from_json(value),
        }),
        Some(true) => {
            let op = value
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| ProtocolError::new("response lacks an 'op' field"))?
                .to_owned();
            if op == "batch" {
                let items = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtocolError::new("batch response lacks 'results'"))?
                    .iter()
                    .map(envelope_from_json)
                    .collect::<Result<_, _>>()?;
                return Ok(WireEnvelope::Batch { items });
            }
            let source = value
                .get("source")
                .and_then(Json::as_str)
                .and_then(Source::parse)
                .ok_or_else(|| ProtocolError::new("response lacks a valid 'source' field"))?;
            let result_text = value
                .get("result")
                .ok_or_else(|| ProtocolError::new("response lacks a 'result' field"))?
                .to_text();
            Ok(WireEnvelope::Success {
                op,
                source,
                result_text,
            })
        }
        None => Err(ProtocolError::new("response lacks an 'ok' field")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> SignatureView {
        SignatureView::from_counts(
            vec!["http://ex/name".into(), "http://ex/email".into()],
            vec![(vec![0], 9), (vec![0, 1], 1)],
        )
        .unwrap()
    }

    #[test]
    fn views_round_trip() {
        let view = sample_view();
        let back = view_from_json(&view_to_json(&view)).unwrap();
        assert_eq!(back.cache_key(), view.cache_key());
        assert_eq!(back.properties(), view.properties());
        assert_eq!(back.subject_count(), view.subject_count());
    }

    #[test]
    fn solve_requests_round_trip() {
        let request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Similarity,
            engine: EngineKind::Ilp,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: Some(Duration::from_millis(1500)),
            routing: Some(ShardStamp {
                shard: 2,
                epoch: u64::MAX - 17, // exercises the i64 wire crossing
            }),
            tenant: Some("acme".to_owned()),
        };
        let line = request.to_json().to_text();
        let Request::Solve(back) = decode_request(&line).unwrap() else {
            panic!("expected a solve request");
        };
        assert_eq!(back.op, SolveOp::Refine);
        assert_eq!(back.engine, EngineKind::Ilp);
        assert_eq!(back.spec, SigmaSpec::Similarity);
        assert_eq!(back.k, Some(2));
        assert_eq!(back.theta, Some(Ratio::new(1, 2)));
        assert_eq!(back.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(back.routing, request.routing);
        assert_eq!(back.tenant, request.tenant);
        assert_eq!(back.cache_key(), request.cache_key());
    }

    #[test]
    fn routing_stamps_do_not_perturb_the_cache_key() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let bare = request.cache_key();
        request.routing = Some(ShardStamp {
            shard: 1,
            epoch: 42,
        });
        assert_eq!(
            request.cache_key(),
            bare,
            "routing metadata describes the journey, not the question"
        );
    }

    #[test]
    fn tenants_partition_the_cache_key_space() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let bare = request.cache_key();
        assert!(
            !bare.params.contains("tenant="),
            "the default tenant keeps the pre-tenancy key bytes"
        );
        request.tenant = Some("acme".to_owned());
        let acme = request.cache_key();
        assert_ne!(acme, bare, "a tenant is a namespace, not metadata");
        assert!(acme.params.ends_with("|tenant=acme"));
        request.tenant = Some("globex".to_owned());
        assert_ne!(request.cache_key(), acme, "tenants do not share entries");

        // Decode normalises the explicit default spelling away.
        let view_json = view_to_json(&sample_view()).to_text();
        let line = format!(
            "{{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\",\
             \"tenant\":\"default\"}}"
        );
        let Ok(Request::Solve(solve)) = decode_request(&line) else {
            panic!("expected a solve request");
        };
        assert_eq!(solve.tenant, None);
        assert_eq!(solve.cache_key(), bare);

        // Invalid tenant ids are refused at decode time.
        for bad in ["\"\"", "\"a b\"", "\"a|b\"", "\"café\"", "7"] {
            let line = format!(
                "{{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\",\
                 \"tenant\":{bad}}}"
            );
            assert!(decode_request(&line).is_err(), "must reject tenant {bad}");
        }
    }

    #[test]
    fn over_quota_errors_round_trip_their_structure() {
        let detail = OverQuota {
            tenant: "acme".into(),
            retry_after_ms: 125,
        };
        let line = encode_over_quota("tenant 'acme' is over its rate limit", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("code").and_then(Json::as_str), Some("over_quota"));
        assert_eq!(over_quota_from_json(&value), Some(detail));
        // Plain errors (and the other structured codes) carry no detail.
        assert_eq!(
            over_quota_from_json(&json::parse(&encode_error("boom")).unwrap()),
            None
        );
        let other = encode_not_leader(
            "nope",
            &NotLeader {
                leader: "x:1".into(),
            },
        );
        assert_eq!(over_quota_from_json(&json::parse(&other).unwrap()), None);
    }

    #[test]
    fn partial_routing_stamps_are_rejected() {
        let view_json = view_to_json(&sample_view()).to_text();
        for fragment in ["\"shard\":1", "\"epoch\":7", "\"shard\":1,\"epoch\":\"x\""] {
            let line = format!(
                "{{\"op\":\"refine\",\"view\":{view_json},\"k\":1,\"theta\":\"1/2\",{fragment}}}"
            );
            assert!(decode_request(&line).is_err(), "must reject: {fragment}");
        }
    }

    #[test]
    fn wrong_shard_errors_round_trip_their_structure() {
        let detail = WrongShard {
            shard: 1,
            owner: 2,
            epoch: u64::MAX - 3,
        };
        let line = encode_wrong_shard("key belongs to shard 2", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            value.get("code").and_then(Json::as_str),
            Some("wrong_shard")
        );
        assert_eq!(wrong_shard_from_json(&value), Some(detail));
        // And through the envelope type, byte-identically.
        let envelope = envelope_from_json(&value).unwrap();
        assert_eq!(
            envelope,
            WireEnvelope::Error {
                message: "key belongs to shard 2".into(),
                wrong_shard: Some(detail),
            }
        );
        assert_eq!(encode_envelope(&envelope), line);
        // A plain error carries no detail.
        let plain = envelope_from_json(&json::parse(&encode_error("boom")).unwrap()).unwrap();
        assert_eq!(
            plain,
            WireEnvelope::Error {
                message: "boom".into(),
                wrong_shard: None,
            }
        );
    }

    #[test]
    fn cache_keys_normalise_spelling_variants() {
        let mut request = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::parse("0.5").unwrap()),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let decimal = request.cache_key();
        request.theta = Some(Ratio::parse("1/2").unwrap());
        assert_eq!(request.cache_key(), decimal);
        request.theta = Some(Ratio::parse("2/3").unwrap());
        assert_ne!(request.cache_key(), decimal);
        // And the view content participates.
        request.theta = Some(Ratio::parse("1/2").unwrap());
        request.view = SignatureView::from_counts(
            vec!["http://ex/name".into(), "http://ex/email".into()],
            vec![(vec![0], 8), (vec![0, 1], 2)],
        )
        .unwrap();
        assert_ne!(request.cache_key(), decimal);
    }

    #[test]
    fn op_specific_requirements_are_enforced() {
        let view_json = view_to_json(&sample_view()).to_text();
        let must_fail = [
            format!("{{\"op\":\"refine\",\"view\":{view_json},\"k\":2}}"),
            format!("{{\"op\":\"refine\",\"view\":{view_json},\"theta\":\"1/2\"}}"),
            format!("{{\"op\":\"highest-theta\",\"view\":{view_json}}}"),
            format!("{{\"op\":\"lowest-k\",\"view\":{view_json}}}"),
            "{\"op\":\"refine\"}".to_owned(),
            "{\"op\":\"frobnicate\"}".to_owned(),
            "{\"no\":\"op\"}".to_owned(),
            "not json at all".to_owned(),
        ];
        for line in &must_fail {
            assert!(decode_request(line).is_err(), "should reject: {line}");
        }
        let ok =
            format!("{{\"op\":\"highest-theta\",\"view\":{view_json},\"k\":2,\"step\":\"1/10\"}}");
        match decode_request(&ok) {
            Ok(Request::Solve(solve)) => assert_eq!(solve.op, SolveOp::HighestTheta),
            other => panic!("expected a solve request, got {other:?}"),
        }
        assert!(matches!(
            decode_request("{\"op\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            decode_request("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn non_positive_steps_are_rejected_at_decode() {
        let view_json = view_to_json(&sample_view()).to_text();
        for step in ["0", "-1/100", "0.0"] {
            let line = format!(
                "{{\"op\":\"highest-theta\",\"view\":{view_json},\"k\":2,\"step\":\"{step}\"}}"
            );
            let err = decode_request(&line).unwrap_err();
            assert!(
                err.message.contains("strictly positive"),
                "step {step}: {err}"
            );
        }
    }

    #[test]
    fn refinements_round_trip_through_json() {
        let refinement = WireRefinement {
            spec: "cov".into(),
            threshold: "1/2".into(),
            sorts: vec![
                WireSort {
                    signatures: vec![0, 2],
                    subjects: 40,
                    sigma: "3/4".into(),
                },
                WireSort {
                    signatures: vec![1],
                    subjects: 2,
                    sigma: "1".into(),
                },
            ],
        };
        let back = refinement_from_json(&refinement_to_json(&refinement)).unwrap();
        assert_eq!(back, refinement);
    }

    #[test]
    fn batch_lines_decode_element_wise_in_order() {
        let view_json = view_to_json(&sample_view()).to_text();
        let line = format!(
            "{{\"op\":\"batch\",\"requests\":[\
             {{\"op\":\"refine\",\"view\":{view_json},\"k\":2,\"theta\":\"1/2\"}},\
             {{\"op\":\"frobnicate\"}},\
             {{\"op\":\"status\"}},\
             {{\"op\":\"shutdown\"}},\
             {{\"op\":\"batch\",\"requests\":[]}},\
             {{\"op\":\"lowest-k\",\"view\":{view_json},\"theta\":\"2/3\"}}]}}"
        );
        let Decoded::Batch(elements) = decode_line(&line) else {
            panic!("expected a batch");
        };
        assert_eq!(elements.len(), 6);
        assert!(matches!(&elements[0], Ok(Request::Solve(s)) if s.op == SolveOp::Refine));
        assert!(elements[1].is_err(), "unknown op fails alone");
        assert!(matches!(elements[2], Ok(Request::Status)));
        assert!(
            elements[3].is_err(),
            "shutdown is rejected inside a batch: {:?}",
            elements[3]
        );
        assert!(elements[4].is_err(), "batches cannot nest");
        assert!(
            matches!(&elements[5], Ok(Request::Solve(s)) if s.op == SolveOp::LowestK),
            "an error element must not poison later elements"
        );
    }

    #[test]
    fn bad_batch_containers_fail_as_one_line() {
        for line in [
            "{\"op\":\"batch\"}".to_owned(),
            "{\"op\":\"batch\",\"requests\":7}".to_owned(),
            format!(
                "{{\"op\":\"batch\",\"requests\":[{}]}}",
                vec!["{\"op\":\"status\"}"; MAX_BATCH_REQUESTS + 1].join(",")
            ),
        ] {
            assert!(
                matches!(decode_line(&line), Decoded::Single(Err(_))),
                "must reject outright: {}",
                &line[..line.len().min(80)]
            );
        }
        // A plain request still decodes as Single(Ok).
        assert!(matches!(
            decode_line("{\"op\":\"status\"}"),
            Decoded::Single(Ok(Request::Status))
        ));
        // An empty batch is a valid envelope with zero elements.
        assert!(
            matches!(decode_line("{\"op\":\"batch\",\"requests\":[]}"), Decoded::Batch(v) if v.is_empty())
        );
    }

    #[test]
    fn batch_responses_splice_elements_verbatim() {
        let items = vec![
            encode_success("refine", Source::Cache, "{\"outcome\":\"infeasible\"}"),
            encode_error("bad element"),
            encode_success("status", Source::Solved, "{\"workers\":4}"),
        ];
        let line = encode_batch(&items);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("op").unwrap().as_str(), Some("batch"));
        let results = value.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        // Canonical serialization means each parsed element re-encodes to
        // the exact bytes that were spliced in.
        for (element, original) in results.iter().zip(&items) {
            assert_eq!(&element.to_text(), original);
        }
        // And the whole line round-trips through the envelope type.
        let envelope = envelope_from_json(&value).unwrap();
        assert_eq!(encode_envelope(&envelope), line);
    }

    #[test]
    fn envelopes_round_trip_from_wire_form() {
        let envelope = WireEnvelope::Batch {
            items: vec![
                WireEnvelope::Success {
                    op: "refine".into(),
                    source: Source::Coalesced,
                    result_text: "{\"outcome\":\"unknown\"}".into(),
                },
                WireEnvelope::Error {
                    message: "nope \"quoted\"".into(),
                    wrong_shard: None,
                },
                WireEnvelope::Error {
                    message: "not yours".into(),
                    wrong_shard: Some(WrongShard {
                        shard: 0,
                        owner: 2,
                        epoch: 99,
                    }),
                },
            ],
        };
        let line = encode_envelope(&envelope);
        let back = envelope_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, envelope);
    }

    #[test]
    fn repl_records_round_trip_byte_identically() {
        let records = [
            ReplRecord::Put {
                seq: 3,
                epoch: u64::MAX - 5, // exercises the i64 wire crossing
                view: 0xdead_beef_dead_beef_dead_beef_dead_beef,
                params: "refine|hybrid|cov|2|1/2|||".into(),
                result: "{\"outcome\":\"infeasible\",\"note\":\"quoted \\\"x\\\"\"}".into(),
                tenant: DEFAULT_TENANT.into(),
            },
            ReplRecord::Put {
                seq: 5,
                epoch: 9,
                view: 7,
                params: "refine|hybrid|cov|2|1/2||||tenant=acme".into(),
                result: "{\"outcome\":\"unknown\"}".into(),
                tenant: "acme".into(),
            },
            ReplRecord::Evict {
                seq: 4,
                epoch: 9,
                view: 1,
                params: "p|q".into(),
            },
            ReplRecord::Checkpoint {
                seq: 4,
                epoch: 9,
                live: 17,
            },
        ];
        for record in &records {
            let line = encode_repl_record(record);
            let value = json::parse(&line).unwrap();
            let back = repl_record_from_json(&value).unwrap();
            assert_eq!(&back, record, "line: {line}");
        }
        // A default-tenant put omits the field (pre-tenancy line bytes),
        // a non-default one carries it, and a stream from a version that
        // predates tenancy decodes to the default tenant, not an error.
        assert!(!encode_repl_record(&records[0]).contains("\"tenant\""));
        assert!(encode_repl_record(&records[1]).contains("\"tenant\":\"acme\""));
        // The result payload survives escaping verbatim — the byte-identity
        // guarantee crosses the replication stream.
        let ReplRecord::Put { result, .. } = &records[0] else {
            unreachable!()
        };
        let line = encode_repl_record(&records[0]);
        let ReplRecord::Put { result: back, .. } =
            repl_record_from_json(&json::parse(&line).unwrap()).unwrap()
        else {
            panic!("expected a put")
        };
        assert_eq!(&back, result);
    }

    #[test]
    fn repl_subscribe_lines_decode_with_and_without_a_shard() {
        let line = encode_repl_subscribe(None);
        assert!(matches!(
            decode_request(&line),
            Ok(Request::ReplSubscribe { shard: None })
        ));
        let spec = ShardSpec { index: 1, count: 3 };
        let line = encode_repl_subscribe(Some(&spec));
        assert!(matches!(
            decode_request(&line),
            Ok(Request::ReplSubscribe { shard: Some(s) }) if s == spec
        ));
        assert!(decode_request("{\"op\":\"repl_subscribe\",\"shard\":\"9/3\"}").is_err());
        assert!(decode_request("{\"op\":\"repl_subscribe\",\"shard\":7}").is_err());
        assert!(matches!(
            decode_request("{\"op\":\"promote\"}"),
            Ok(Request::Promote)
        ));
    }

    #[test]
    fn replication_control_ops_are_rejected_inside_batches() {
        for op in ["repl_subscribe", "promote"] {
            let line = format!("{{\"op\":\"batch\",\"requests\":[{{\"op\":\"{op}\"}}]}}");
            let Decoded::Batch(elements) = decode_line(&line) else {
                panic!("expected a batch");
            };
            assert!(
                elements[0].is_err(),
                "'{op}' must be refused inside a batch"
            );
        }
    }

    #[test]
    fn not_leader_errors_round_trip_their_structure() {
        let detail = NotLeader {
            leader: "127.0.0.1:7464".into(),
        };
        let line = encode_not_leader("this shard is a follower", &detail);
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(value.get("code").and_then(Json::as_str), Some("not_leader"));
        assert_eq!(not_leader_from_json(&value), Some(detail));
        // A plain error (and a wrong_shard error) carry no leader.
        assert_eq!(
            not_leader_from_json(&json::parse(&encode_error("boom")).unwrap()),
            None
        );
    }

    #[test]
    fn hello_lines_negotiate_framings() {
        assert!(matches!(
            decode_request(&encode_hello(Framing::Bin1)),
            Ok(Request::Hello {
                framing: Framing::Bin1
            })
        ));
        assert!(matches!(
            decode_request(&encode_hello(Framing::Json)),
            Ok(Request::Hello {
                framing: Framing::Json
            })
        ));
        // A bare hello defaults to json (a no-op), unknown framings fail.
        assert!(matches!(
            decode_request("{\"op\":\"hello\"}"),
            Ok(Request::Hello {
                framing: Framing::Json
            })
        ));
        assert!(decode_request("{\"op\":\"hello\",\"framing\":\"bin9\"}").is_err());
        assert!(decode_request("{\"op\":\"hello\",\"framing\":7}").is_err());
        // Refused inside a batch like the other connection-rebinding ops.
        let line = "{\"op\":\"batch\",\"requests\":[{\"op\":\"hello\",\"framing\":\"bin1\"}]}";
        let Decoded::Batch(elements) = decode_line(line) else {
            panic!("expected a batch");
        };
        assert!(elements[0].is_err());
        // The acknowledgement parses as a well-formed response object.
        let ack = json::parse(&encode_hello_ok(Framing::Bin1)).unwrap();
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ack.get("framing").and_then(Json::as_str), Some("bin1"));
        // Framing names round-trip.
        for framing in [Framing::Json, Framing::Bin1] {
            assert_eq!(Framing::parse(framing.name()).unwrap(), framing);
        }
    }

    #[test]
    fn binary_solve_payloads_decode_to_the_same_request() {
        let request = SolveRequest {
            op: SolveOp::HighestTheta,
            view: sample_view(),
            spec: SigmaSpec::Similarity,
            engine: EngineKind::Greedy,
            k: Some(3),
            theta: None,
            step: Some(Ratio::new(1, 10)),
            max_k: Some(5),
            time_limit: Some(Duration::from_millis(750)),
            routing: Some(ShardStamp {
                shard: 2,
                epoch: u64::MAX - 17,
            }),
            tenant: Some("acme".to_owned()),
        };
        let payload = encode_solve_bin(&request);
        let Decoded::Single(Ok(Request::Solve(back))) = decode_payload(&payload) else {
            panic!("expected a solve request");
        };
        assert_eq!(back.op, request.op);
        assert_eq!(back.engine, request.engine);
        assert_eq!(back.spec, request.spec);
        assert_eq!(back.k, request.k);
        assert_eq!(back.step, request.step);
        assert_eq!(back.max_k, request.max_k);
        assert_eq!(back.time_limit, request.time_limit);
        assert_eq!(back.routing, request.routing);
        assert_eq!(back.tenant, request.tenant);
        assert_eq!(back.cache_key(), request.cache_key());
        // And it agrees with the JSON framing's decode of the same request.
        let Ok(Request::Solve(via_json)) = decode_request(&request.to_json().to_text()) else {
            panic!("expected a solve request");
        };
        assert_eq!(via_json.cache_key(), back.cache_key());
        // An explicit default tenant normalises to None, like JSON.
        let mut spelled = request.clone();
        spelled.tenant = Some(DEFAULT_TENANT.to_owned());
        let Decoded::Single(Ok(Request::Solve(normalised))) =
            decode_payload(&encode_solve_bin(&spelled))
        else {
            panic!("expected a solve request");
        };
        assert_eq!(normalised.tenant, None);
    }

    #[test]
    fn binary_batches_mirror_json_batch_semantics() {
        let solve = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let payload = encode_batch_bin(&[
            encode_solve_bin(&solve),
            vec![BIN_STATUS],
            vec![BIN_SHUTDOWN],
            vec![BIN_PROMOTE],
            encode_batch_bin(&[]),
            encode_json_payload("{\"op\":\"status\"}"),
            encode_json_payload(&encode_hello(Framing::Bin1)),
        ]);
        let Decoded::Batch(elements) = decode_payload(&payload) else {
            panic!("expected a batch");
        };
        assert_eq!(elements.len(), 7);
        assert!(matches!(&elements[0], Ok(Request::Solve(s)) if s.op == SolveOp::Refine));
        assert!(matches!(elements[1], Ok(Request::Status)));
        assert!(elements[2].is_err(), "shutdown refused inside a batch");
        assert!(elements[3].is_err(), "promote refused inside a batch");
        assert!(elements[4].is_err(), "batches cannot nest");
        assert!(
            matches!(elements[5], Ok(Request::Status)),
            "embedded JSON elements decode like batch elements"
        );
        assert!(elements[6].is_err(), "hello refused inside a batch");
        // The embedded-JSON escape hatch carries whole lines, batch
        // envelopes included, with full decode_line semantics.
        let Decoded::Batch(via_json) =
            decode_payload(&encode_json_payload("{\"op\":\"batch\",\"requests\":[]}"))
        else {
            panic!("expected a batch");
        };
        assert!(via_json.is_empty());
        // Control requests ride the typed kinds; the rest the escape hatch.
        assert_eq!(encode_request_bin(&Request::Status), vec![BIN_STATUS]);
        assert!(matches!(
            decode_payload(&encode_request_bin(&Request::ReplSubscribe { shard: None })),
            Decoded::Single(Ok(Request::ReplSubscribe { shard: None }))
        ));
    }

    #[test]
    fn hostile_binary_payloads_fail_cleanly() {
        let solve = SolveRequest {
            op: SolveOp::Refine,
            view: sample_view(),
            spec: SigmaSpec::Coverage,
            engine: EngineKind::Hybrid,
            k: Some(2),
            theta: Some(Ratio::new(1, 2)),
            step: None,
            max_k: None,
            time_limit: None,
            routing: None,
            tenant: None,
        };
        let good = encode_solve_bin(&solve);
        // Every strict prefix is a truncation error, never a panic.
        for cut in 0..good.len() {
            assert!(
                matches!(decode_payload(&good[..cut.max(1)]), Decoded::Single(Err(_)))
                    || cut == good.len(),
                "cut at {cut}"
            );
        }
        // Trailing garbage is refused (the payload length is authoritative).
        let mut padded = good.clone();
        padded.push(0);
        assert!(matches!(decode_payload(&padded), Decoded::Single(Err(_))));
        // Unknown kind bytes, engines, and flag bits are refused.
        assert!(matches!(decode_payload(&[0xEE]), Decoded::Single(Err(_))));
        let mut bad_engine = good.clone();
        bad_engine[1] = 9;
        assert!(matches!(
            decode_payload(&bad_engine),
            Decoded::Single(Err(_))
        ));
        let mut bad_flags = good.clone();
        bad_flags[2] |= 0x80;
        assert!(matches!(
            decode_payload(&bad_flags),
            Decoded::Single(Err(_))
        ));
        // A length prefix claiming more than the payload holds is refused
        // before any allocation happens.
        let mut hostile = vec![BIN_REFINE, 1, 0];
        write_varint(&mut hostile, u64::MAX);
        assert!(matches!(decode_payload(&hostile), Decoded::Single(Err(_))));
        // Oversized batch counts are refused like their JSON counterpart.
        let mut big = vec![BIN_BATCH];
        write_varint(&mut big, (MAX_BATCH_REQUESTS + 1) as u64);
        assert!(matches!(decode_payload(&big), Decoded::Single(Err(_))));
        // The empty payload is an error, not a panic.
        assert!(matches!(decode_payload(&[]), Decoded::Single(Err(_))));
    }

    #[test]
    fn response_envelopes_are_well_formed() {
        let line = encode_success("refine", Source::Cache, "{\"outcome\":\"infeasible\"}");
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("source").unwrap().as_str(), Some("cache"));
        assert_eq!(
            value
                .get("result")
                .unwrap()
                .get("outcome")
                .unwrap()
                .as_str(),
            Some("infeasible")
        );

        let line = encode_error("boom \"quoted\"");
        let value = json::parse(&line).unwrap();
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            value.get("error").unwrap().as_str(),
            Some("boom \"quoted\"")
        );
    }
}
