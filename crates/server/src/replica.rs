//! Segment-shipping replication: leaders stream their cache records to
//! warm standbys; promotion bumps an epoch instead of consulting anyone.
//!
//! The shard layer (see [`router`](crate::router)) removed the throughput
//! ceiling but left each shard's state a single point of loss: kill a
//! shard's disk and its warm cache — the thing the whole serving stack
//! exists to protect — is gone. This module turns the persistent segment's
//! record stream into a replication feed:
//!
//! ```text
//!   leader (serve --shard 1/3 --persist …)
//!     │ cache insert ──► segment P record ──► repl_record{put}   ─┐
//!     │ cache evict  ──► segment D record ──► repl_record{evict}  ├─► every
//!     │ compaction   ──► segment C record ──► repl_checkpoint    ─┘  subscriber
//!     ▼
//!   follower (serve --shard 1/3 --follow leader:port)
//!     replays records into its own LruCache + SegmentStore
//!     → serves cache hits read-only, refuses writes with `not_leader`
//!     → on leader death: `strudel promote` (or --auto-promote) bumps the
//!       replication epoch and the follower starts accepting writes
//! ```
//!
//! **Transport.** Followers are ordinary clients of the leader's TCP port:
//! a follower connects, sends one `repl_subscribe` line, and the leader
//! converts the connection into a feed — first a snapshot (every resident
//! entry as a `put` record with `seq` 0, closed by a checkpoint), then
//! every live record as it happens, plus heartbeat checkpoints
//! ([`HEARTBEAT_INTERVAL`]) when the stream is idle. Reusing the line-JSON
//! wire protocol means replication traverses exactly the connections,
//! buffers, and framing the event loop already owns — a subscriber is just
//! a connection whose response slots are fed by the server instead of by
//! its own requests.
//!
//! **Byte identity.** Records carry the *serialized* result text verbatim
//! (see [`ReplRecord`]), so a follower's cache entry — and therefore every
//! answer the promoted follower ever gives for it — is byte-identical to
//! the leader's, extending the guarantee that already spans cache replay,
//! single-flight, and warm restart across the failure boundary.
//!
//! **Promotion without coordination.** There is no consensus service. A
//! shard's replication epoch starts at its ring epoch (the same
//! [`ShardRing::epoch`](strudel_core::wire::ShardRing) fingerprint the
//! `wrong_shard` machinery already validates) and each promotion adds one
//! ([`bump_repl_epoch`]). Routers stamp the highest epoch they have seen;
//! a resurrected old leader still runs the previous epoch and refuses the
//! new stamps with the existing structured `wrong_shard` error — stale
//! topology and stale leadership are rejected by one mechanism. The cost
//! of this simplicity is honest: a network partition can yield two
//! writable leaders briefly, and the epoch decides only who is *refused*,
//! not who is *right* — acceptable for a cache, where the worst case is
//! recomputing an answer, never serving a wrong one.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

#[cfg(test)]
use strudel_core::wire::DEFAULT_TENANT;
use strudel_core::wire::{bump_repl_epoch, ReplRecord, ShardSpec};

use crate::json::{self, Json};
use crate::protocol::{self, CacheKey};

/// How often an idle leader sends a heartbeat checkpoint to each
/// subscriber. Auto-promotion windows must comfortably exceed this, or a
/// healthy-but-quiet leader gets deposed.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(100);

/// The follower's socket read timeout: short enough to notice shutdown and
/// manual promotion promptly, long enough that the feed loop is not a busy
/// poll. Two heartbeat intervals means a single on-time heartbeat always
/// lands inside one read.
const FEED_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Reconnect backoff bounds for a follower that lost its feed.
const RECONNECT_MIN: Duration = Duration::from_millis(50);
const RECONNECT_MAX: Duration = Duration::from_millis(500);

/// Which side of the replication pair this server is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts writes; streams records to subscribers.
    Leader,
    /// Replays a leader's stream; read-only until promoted.
    Follower,
}

impl ReplRole {
    /// The wire/status name.
    pub fn name(self) -> &'static str {
        match self {
            ReplRole::Leader => "leader",
            ReplRole::Follower => "follower",
        }
    }
}

/// A point-in-time view of the replication side of a server (the
/// `replication` block of the `status` payload).
#[derive(Clone, Debug)]
pub struct ReplStatus {
    /// This server's current role.
    pub role: ReplRole,
    /// The leader's address, as a follower knows it (`--follow`).
    pub leader: Option<String>,
    /// The current replication epoch (ring epoch + promotions).
    pub epoch: u64,
    /// Leader: last published sequence number. Follower: last applied.
    pub last_seq: u64,
    /// Follower: records the leader has announced but this side has not
    /// applied (0 on leaders and healthy followers).
    pub lag: u64,
    /// Leader: currently connected feed subscribers.
    pub subscribers: u64,
    /// Leader: record lines handed to subscriber connections.
    pub records_sent: u64,
    /// Follower: records applied into the local cache.
    pub records_applied: u64,
    /// Promotions this process has performed (0 or 1 in normal operation).
    pub promotions: u64,
}

/// The shared replication state of one server process: the epoch, the
/// writable flag every solve consults, and the stream counters. Lives in
/// an `Arc` shared by the event loop, the status path, and (on followers)
/// the feed thread.
#[derive(Debug)]
pub struct ReplState {
    epoch: AtomicU64,
    /// 0 = read-only follower, 1 = writable leader. An `AtomicU64` keeps
    /// the struct homogeneous; only 0/1 are stored.
    writable: AtomicU64,
    leader: Mutex<Option<String>>,
    last_seq: AtomicU64,
    leader_seq: AtomicU64,
    records_sent: AtomicU64,
    records_applied: AtomicU64,
    subscribers: AtomicU64,
    promotions: AtomicU64,
}

impl ReplState {
    fn new(base_epoch: u64, writable: bool, leader: Option<String>) -> Self {
        ReplState {
            epoch: AtomicU64::new(base_epoch),
            writable: AtomicU64::new(u64::from(writable)),
            leader: Mutex::new(leader),
            last_seq: AtomicU64::new(0),
            leader_seq: AtomicU64::new(0),
            records_sent: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            subscribers: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
        }
    }

    /// A writable leader starting at its ring epoch (0 when unsharded).
    pub fn leader(base_epoch: u64) -> Self {
        ReplState::new(base_epoch, true, None)
    }

    /// A read-only follower of `leader`, starting at the same base epoch
    /// (it adopts the leader's actual epoch during the handshake).
    pub fn follower(base_epoch: u64, leader: String) -> Self {
        ReplState::new(base_epoch, false, Some(leader))
    }

    /// Whether solves may mutate state here (leaders and promoted
    /// followers).
    pub fn is_writable(&self) -> bool {
        self.writable.load(Ordering::SeqCst) == 1
    }

    /// The current replication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The last published (leader) or applied (follower) sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// The leader address a follower redirects writes to.
    pub fn leader_addr(&self) -> Option<String> {
        self.leader.lock().expect("leader lock").clone()
    }

    /// Resumes the publication counter after a restart (from the newest
    /// compaction checkpoint in the replayed segment), so a leader never
    /// reissues sequence numbers its followers have already seen.
    pub fn resume_seq(&self, seq: u64) {
        self.last_seq.fetch_max(seq, Ordering::SeqCst);
    }

    /// Follower handshake: adopt the leader's epoch and announced sequence
    /// number. A no-op once this server is writable — the `leader` mutex
    /// serializes this against [`Self::promote`], so a promotion landing
    /// between the handshake and the adopt can never be overwritten with
    /// the old leader's (now stale) epoch.
    pub fn adopt(&self, epoch: u64, leader_seq: u64) {
        let _guard = self.leader.lock().expect("leader lock");
        if self.writable.load(Ordering::SeqCst) == 1 {
            return;
        }
        self.epoch.store(epoch, Ordering::SeqCst);
        self.leader_seq.fetch_max(leader_seq, Ordering::SeqCst);
    }

    /// Promotes this server to leader: bump the epoch, accept writes,
    /// forget the upstream. Returns the new epoch. Idempotent only in the
    /// sense that the caller should refuse it on an existing leader —
    /// every call bumps. Holds the `leader` mutex so no concurrent
    /// [`Self::adopt`] can interleave with the epoch transition.
    pub fn promote(&self) -> u64 {
        let mut leader = self.leader.lock().expect("leader lock");
        let epoch = bump_repl_epoch(self.epoch.load(Ordering::SeqCst));
        self.epoch.store(epoch, Ordering::SeqCst);
        self.writable.store(1, Ordering::SeqCst);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        *leader = None;
        epoch
    }

    /// Allocates the next publication sequence number (leader side).
    pub fn next_seq(&self) -> u64 {
        self.last_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Counts `n` record lines handed to a subscriber outside the hub's
    /// fan-out path (the subscription snapshot).
    pub fn note_sent(&self, n: u64) {
        self.records_sent.fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, record: &ReplRecord) {
        // Snapshot records travel with seq 0; only live records advance
        // the applied counter used for lag.
        self.last_seq.fetch_max(record.seq(), Ordering::SeqCst);
        if let ReplRecord::Checkpoint { seq, .. } = record {
            self.leader_seq.fetch_max(*seq, Ordering::SeqCst);
        }
        self.records_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// The current snapshot for the `status` payload.
    pub fn status(&self) -> ReplStatus {
        let role = if self.is_writable() {
            ReplRole::Leader
        } else {
            ReplRole::Follower
        };
        let last_seq = self.last_seq.load(Ordering::SeqCst);
        let leader_seq = self.leader_seq.load(Ordering::SeqCst);
        ReplStatus {
            role,
            leader: self.leader_addr(),
            epoch: self.epoch(),
            last_seq,
            lag: leader_seq.saturating_sub(last_seq),
            subscribers: self.subscribers.load(Ordering::Relaxed),
            records_sent: self.records_sent.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }
}

/// The leader-side subscriber registry, owned by the event loop (like the
/// flight board, it is single-owner data and needs no locks). It tracks
/// which connections are feeds and builds the record lines to fan out;
/// the loop owns the connections and does the actual buffering.
#[derive(Debug)]
pub struct ReplicaHub {
    subscribers: Vec<u64>,
    last_heartbeat: Instant,
}

impl ReplicaHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        ReplicaHub {
            subscribers: Vec::new(),
            last_heartbeat: Instant::now(),
        }
    }

    /// Whether no feed is connected (publishing is free to skip encoding).
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Registers a connection as a feed subscriber.
    pub fn add(&mut self, conn: u64, state: &ReplState) {
        if !self.subscribers.contains(&conn) {
            self.subscribers.push(conn);
            state
                .subscribers
                .store(self.subscribers.len() as u64, Ordering::Relaxed);
        }
    }

    /// Removes a reaped connection; returns whether it was a subscriber.
    pub fn remove(&mut self, conn: u64, state: &ReplState) -> bool {
        let before = self.subscribers.len();
        self.subscribers.retain(|&id| id != conn);
        let removed = self.subscribers.len() != before;
        if removed {
            state
                .subscribers
                .store(self.subscribers.len() as u64, Ordering::Relaxed);
        }
        removed
    }

    /// The current subscriber connection ids (cloned: the caller will
    /// mutate the connection map while delivering).
    pub fn ids(&self) -> Vec<u64> {
        self.subscribers.clone()
    }

    fn fan_out(&mut self, state: &ReplState, record: &ReplRecord) -> Option<(String, Vec<u64>)> {
        if self.subscribers.is_empty() {
            return None;
        }
        state
            .records_sent
            .fetch_add(self.subscribers.len() as u64, Ordering::Relaxed);
        self.last_heartbeat = Instant::now();
        Some((protocol::encode_repl_record(record), self.ids()))
    }

    /// Publishes a cache insert owned by `tenant`. The sequence number
    /// advances whether or not anyone is listening — it is the leader's
    /// publication clock, and late subscribers pick it up from their
    /// snapshot checkpoint.
    pub fn publish_put(
        &mut self,
        state: &ReplState,
        key: &CacheKey,
        result: &str,
        tenant: &str,
    ) -> Option<(String, Vec<u64>)> {
        let record = ReplRecord::Put {
            seq: state.next_seq(),
            epoch: state.epoch(),
            view: key.view,
            params: key.params.clone(),
            result: result.to_owned(),
            tenant: tenant.to_owned(),
        };
        self.fan_out(state, &record)
    }

    /// Publishes a cache eviction.
    pub fn publish_evict(
        &mut self,
        state: &ReplState,
        key: &CacheKey,
    ) -> Option<(String, Vec<u64>)> {
        let record = ReplRecord::Evict {
            seq: state.next_seq(),
            epoch: state.epoch(),
            view: key.view,
            params: key.params.clone(),
        };
        self.fan_out(state, &record)
    }

    /// Publishes a checkpoint (after a compaction, or as a heartbeat).
    /// Checkpoints announce the current sequence number without consuming
    /// one.
    pub fn publish_checkpoint(
        &mut self,
        state: &ReplState,
        live: u64,
    ) -> Option<(String, Vec<u64>)> {
        let record = ReplRecord::Checkpoint {
            seq: state.last_seq(),
            epoch: state.epoch(),
            live,
        };
        self.fan_out(state, &record)
    }

    /// Whether the idle-stream heartbeat is due.
    pub fn heartbeat_due(&self) -> bool {
        !self.subscribers.is_empty() && self.last_heartbeat.elapsed() >= HEARTBEAT_INTERVAL
    }

    /// How long until the next heartbeat is due; `None` with no
    /// subscribers (the event loop uses this to bound its poller wait —
    /// an idle leader with no feeds never needs a timer wake-up).
    pub fn heartbeat_due_in(&self) -> Option<Duration> {
        if self.subscribers.is_empty() {
            return None;
        }
        Some(HEARTBEAT_INTERVAL.saturating_sub(self.last_heartbeat.elapsed()))
    }
}

impl Default for ReplicaHub {
    fn default() -> Self {
        ReplicaHub::new()
    }
}

/// Encodes one snapshot entry for a freshly subscribed follower. Snapshot
/// records carry `seq` 0 — they are a point-in-time copy, not publications;
/// the checkpoint closing the snapshot tells the follower where the live
/// stream stands.
pub fn snapshot_record(epoch: u64, key: &CacheKey, result: &str, tenant: &str) -> String {
    protocol::encode_repl_record(&ReplRecord::Put {
        seq: 0,
        epoch,
        view: key.view,
        params: key.params.clone(),
        result: result.to_owned(),
        tenant: tenant.to_owned(),
    })
}

/// What the follower feed thread needs from the server it lives in. The
/// server's shared state implements this; the indirection keeps the feed
/// loop testable and free of the server's internals.
pub trait FollowerHost: Send + Sync + 'static {
    /// Replays a put record into the local cache (and segment, if any),
    /// accounted under `tenant` — so a later promotion starts with the
    /// leader's per-tenant residency, not a flattened one.
    fn apply_put(&self, key: &CacheKey, result: &str, tenant: &str);
    /// Replays an eviction record.
    fn apply_evict(&self, key: &CacheKey);
    /// Whether the server is shutting down (the thread exits promptly).
    fn stopping(&self) -> bool;
}

/// Configuration of a follower's feed thread.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The leader's address (`serve --follow ADDR`).
    pub leader: String,
    /// This server's shard identity; sent in the handshake so a leader can
    /// refuse a follower built for a different topology.
    pub shard: Option<ShardSpec>,
    /// Auto-promotion window: promote after the leader has been silent
    /// this long (`None` = only `strudel promote` promotes).
    pub auto_promote: Option<Duration>,
}

/// Why one feed connection ended.
enum FeedEnd {
    /// Shutdown or promotion: the thread's work is done.
    Done,
    /// Connection failed or stream went stale: reconnect (or promote).
    Lost,
}

/// Spawns the follower's feed thread: subscribe to the leader, apply the
/// stream, reconnect with bounded backoff on loss, and — with an
/// auto-promotion window — promote once the leader has been silent too
/// long. The thread exits when the host is stopping or this server has
/// become a leader (by auto- or manual promotion).
pub fn spawn_follower<H: FollowerHost>(
    host: Arc<H>,
    state: Arc<ReplState>,
    config: FollowerConfig,
) -> std::io::Result<JoinHandle<()>> {
    thread::Builder::new()
        .name("strudel-follower".to_owned())
        .spawn(move || follower_loop(&*host, &state, &config))
}

fn follower_loop<H: FollowerHost>(host: &H, state: &ReplState, config: &FollowerConfig) {
    // "Silent since": promotion is judged from the last record (or
    // heartbeat) actually received, so a leader that died before we ever
    // connected still ages toward the window.
    let mut last_record = Instant::now();
    let mut backoff = RECONNECT_MIN;
    loop {
        if host.stopping() || state.is_writable() {
            return;
        }
        match run_feed(host, state, config, &mut last_record) {
            FeedEnd::Done => return,
            FeedEnd::Lost => {
                if let Some(window) = config.auto_promote {
                    if last_record.elapsed() >= window {
                        let epoch = state.promote();
                        eprintln!(
                            "strudel-server: leader {} silent for {:?}; auto-promoting \
                             (replication epoch {epoch})",
                            config.leader, window
                        );
                        return;
                    }
                }
                thread::sleep(backoff);
                backoff = (backoff * 2).min(RECONNECT_MAX);
            }
        }
    }
}

/// Runs one feed connection to completion: connect, subscribe, apply
/// records until the stream ends or goes stale.
fn run_feed<H: FollowerHost>(
    host: &H,
    state: &ReplState,
    config: &FollowerConfig,
    last_record: &mut Instant,
) -> FeedEnd {
    let Ok(stream) = TcpStream::connect(&config.leader) else {
        return FeedEnd::Lost;
    };
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(FEED_READ_TIMEOUT)).is_err() {
        return FeedEnd::Lost;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return FeedEnd::Lost;
    };
    let mut reader = BufReader::new(stream);

    // Handshake: one subscribe line out, one response line in.
    let line = protocol::encode_repl_subscribe(config.shard.as_ref());
    if writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_err()
    {
        return FeedEnd::Lost;
    }
    let response = match read_feed_line(&mut reader, host, state, last_record, config) {
        Ok(Some(line)) => line,
        Ok(None) | Err(()) => return feed_end(host, state),
    };
    let Some((epoch, leader_seq)) = parse_subscribe_response(&response) else {
        // The peer is not a willing leader (a follower, a shard mismatch,
        // an older server): log once per connection and retry with backoff
        // — the operator may be mid-rollout.
        eprintln!(
            "strudel-server: {} refused the replication subscription: {}",
            config.leader,
            response.chars().take(200).collect::<String>()
        );
        return FeedEnd::Lost;
    };
    state.adopt(epoch, leader_seq);
    *last_record = Instant::now();

    // The stream proper: every line is a record; apply and account.
    loop {
        match read_feed_line(&mut reader, host, state, last_record, config) {
            Ok(Some(line)) => {
                let Ok(value) = json::parse(&line) else {
                    return FeedEnd::Lost;
                };
                let Ok(record) = protocol::repl_record_from_json(&value) else {
                    return FeedEnd::Lost;
                };
                if record.epoch() != state.epoch() {
                    // The leader changed epochs under us (it was itself
                    // promoted, or restarted differently); resubscribe to
                    // adopt the new stream cleanly.
                    return FeedEnd::Lost;
                }
                *last_record = Instant::now();
                match &record {
                    ReplRecord::Put {
                        view,
                        params,
                        result,
                        tenant,
                        ..
                    } => host.apply_put(
                        &CacheKey {
                            view: *view,
                            params: params.clone(),
                        },
                        result,
                        tenant,
                    ),
                    ReplRecord::Evict { view, params, .. } => host.apply_evict(&CacheKey {
                        view: *view,
                        params: params.clone(),
                    }),
                    ReplRecord::Checkpoint { .. } => {}
                }
                state.observe(&record);
            }
            Ok(None) => return feed_end(host, state),
            Err(()) => return FeedEnd::Lost,
        }
    }
}

fn feed_end<H: FollowerHost>(host: &H, state: &ReplState) -> FeedEnd {
    if host.stopping() || state.is_writable() {
        FeedEnd::Done
    } else {
        FeedEnd::Lost
    }
}

/// Reads one line from the feed, riding out read timeouts while the
/// stream is healthy. Returns `Ok(None)` when the thread should stop
/// (shutdown/promotion), `Err(())` when the connection is lost or the
/// stream has gone stale past the auto-promotion window.
fn read_feed_line<H: FollowerHost>(
    reader: &mut BufReader<TcpStream>,
    host: &H,
    state: &ReplState,
    last_record: &Instant,
    config: &FollowerConfig,
) -> Result<Option<String>, ()> {
    let mut line = String::new();
    loop {
        if host.stopping() || state.is_writable() {
            return Ok(None);
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(()), // leader closed the stream
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                if line.is_empty() {
                    continue;
                }
                return Ok(Some(line));
            }
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // No data inside the read timeout. A healthy leader
                // heartbeats much faster than any sane promotion window,
                // so silence past the window means the stream is dead even
                // if the TCP connection pretends otherwise.
                if let Some(window) = config.auto_promote {
                    if last_record.elapsed() >= window {
                        return Err(());
                    }
                }
            }
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
}

/// Parses the subscribe response, returning `(epoch, leader_seq)` on a
/// successful handshake.
fn parse_subscribe_response(line: &str) -> Option<(u64, u64)> {
    let value = json::parse(line).ok()?;
    if value.get("ok").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    let result = value.get("result")?;
    let epoch = result.get("epoch").and_then(Json::as_int)? as u64;
    let leader_seq = result.get("leader_seq").and_then(Json::as_int)? as u64;
    Some((epoch, leader_seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn key(n: u32) -> CacheKey {
        CacheKey {
            view: 0xabcd_0000 + u128::from(n),
            params: format!("refine|greedy|cov|{n}|1/2|||"),
        }
    }

    #[test]
    fn leaders_are_writable_followers_are_not_until_promoted() {
        let leader = ReplState::leader(100);
        assert!(leader.is_writable());
        assert_eq!(leader.epoch(), 100);
        assert_eq!(leader.status().role, ReplRole::Leader);

        let follower = ReplState::follower(100, "10.0.0.1:7464".into());
        assert!(!follower.is_writable());
        assert_eq!(follower.leader_addr().as_deref(), Some("10.0.0.1:7464"));
        assert_eq!(follower.status().role, ReplRole::Follower);

        let epoch = follower.promote();
        assert_eq!(epoch, 101, "promotion bumps the epoch by one");
        assert!(follower.is_writable());
        assert_eq!(follower.leader_addr(), None);
        assert_eq!(follower.status().promotions, 1);
        assert_eq!(follower.status().role, ReplRole::Leader);
    }

    #[test]
    fn followers_adopt_the_leaders_epoch_and_report_lag() {
        let state = ReplState::follower(7, "x:1".into());
        state.adopt(42, 10);
        assert_eq!(state.epoch(), 42);
        assert_eq!(state.status().lag, 10, "nothing applied yet");
        state.observe(&ReplRecord::Put {
            seq: 9,
            epoch: 42,
            view: 1,
            params: "p".into(),
            result: "{}".into(),
            tenant: DEFAULT_TENANT.into(),
        });
        assert_eq!(state.status().lag, 1);
        assert_eq!(state.status().records_applied, 1);
        state.observe(&ReplRecord::Checkpoint {
            seq: 12,
            epoch: 42,
            live: 3,
        });
        // The checkpoint both announces 12 and (as the newest thing seen)
        // advances the applied high-water mark.
        assert_eq!(state.status().lag, 0);
        assert_eq!(state.last_seq(), 12);
    }

    #[test]
    fn adopt_is_a_noop_once_promoted() {
        // The feed thread may complete a handshake at the very moment an
        // operator promotes this server; the stale leader's epoch must
        // never overwrite the bumped one.
        let state = ReplState::follower(10, "x:1".into());
        let epoch = state.promote();
        state.adopt(10, 5);
        assert_eq!(state.epoch(), epoch, "adopt must not roll the epoch back");
        assert!(state.is_writable());
    }

    #[test]
    fn resume_seq_never_moves_backwards() {
        let state = ReplState::leader(0);
        state.resume_seq(50);
        assert_eq!(state.last_seq(), 50);
        state.resume_seq(20);
        assert_eq!(state.last_seq(), 50);
        assert_eq!(
            state.next_seq(),
            51,
            "publication resumes past the checkpoint"
        );
    }

    #[test]
    fn the_hub_assigns_seqs_even_with_no_subscribers() {
        let state = ReplState::leader(5);
        let mut hub = ReplicaHub::new();
        assert!(hub
            .publish_put(&state, &key(1), "{}", DEFAULT_TENANT)
            .is_none());
        assert!(hub.publish_evict(&state, &key(1)).is_none());
        assert_eq!(
            state.last_seq(),
            2,
            "the publication clock ticks regardless of listeners"
        );
        assert_eq!(state.status().records_sent, 0);
    }

    #[test]
    fn the_hub_fans_records_out_to_every_subscriber() {
        let state = ReplState::leader(5);
        let mut hub = ReplicaHub::new();
        hub.add(3, &state);
        hub.add(9, &state);
        hub.add(3, &state); // duplicate adds are idempotent
        assert_eq!(state.status().subscribers, 2);

        let (line, ids) = hub
            .publish_put(&state, &key(2), "{\"x\":1}", "acme")
            .expect("line");
        assert_eq!(ids, vec![3, 9]);
        let record = protocol::repl_record_from_json(&json::parse(&line).unwrap()).expect("record");
        assert_eq!(record.seq(), 1);
        assert_eq!(record.epoch(), 5);
        assert_eq!(record.kind(), "put");
        let ReplRecord::Put { ref tenant, .. } = record else {
            panic!("expected a put")
        };
        assert_eq!(tenant, "acme", "the owner rides the stream");
        assert_eq!(state.status().records_sent, 2, "one per subscriber");

        assert!(hub.remove(3, &state));
        assert!(!hub.remove(3, &state), "double-remove reports absence");
        assert_eq!(state.status().subscribers, 1);
        let (_, ids) = hub.publish_checkpoint(&state, 7).expect("checkpoint");
        assert_eq!(ids, vec![9]);
    }

    #[test]
    fn checkpoints_announce_without_consuming_a_seq() {
        let state = ReplState::leader(1);
        let mut hub = ReplicaHub::new();
        hub.add(1, &state);
        hub.publish_put(&state, &key(1), "{}", DEFAULT_TENANT);
        let (line, _) = hub.publish_checkpoint(&state, 1).expect("checkpoint");
        let record = protocol::repl_record_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(record.seq(), 1, "checkpoint repeats the current seq");
        assert_eq!(state.last_seq(), 1);
    }

    #[test]
    fn snapshot_records_carry_seq_zero_and_the_payload_verbatim() {
        let line = snapshot_record(9, &key(4), "{\"outcome\":\"unknown\"}", "acme");
        let record = protocol::repl_record_from_json(&json::parse(&line).unwrap()).unwrap();
        let ReplRecord::Put {
            seq,
            epoch,
            result,
            tenant,
            ..
        } = record
        else {
            panic!("snapshot records are puts");
        };
        assert_eq!(seq, 0);
        assert_eq!(epoch, 9);
        assert_eq!(result, "{\"outcome\":\"unknown\"}");
        assert_eq!(tenant, "acme");
    }

    #[test]
    fn subscribe_responses_parse_their_epoch_and_seq() {
        assert_eq!(
            parse_subscribe_response(
                "{\"ok\":true,\"op\":\"repl_subscribe\",\"source\":\"solved\",\
                 \"result\":{\"epoch\":33,\"leader_seq\":12,\"snapshot\":4}}"
            ),
            Some((33, 12))
        );
        assert_eq!(
            parse_subscribe_response("{\"ok\":false,\"error\":\"not a leader\"}"),
            None
        );
        assert_eq!(parse_subscribe_response("not json"), None);
    }

    /// A host that records applications and never stops.
    struct RecordingHost {
        puts: Mutex<Vec<(CacheKey, String, String)>>,
        evicts: Mutex<Vec<CacheKey>>,
        stop: AtomicBool,
    }

    impl RecordingHost {
        fn new() -> Self {
            RecordingHost {
                puts: Mutex::new(Vec::new()),
                evicts: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }
        }
    }

    impl FollowerHost for RecordingHost {
        fn apply_put(&self, key: &CacheKey, result: &str, tenant: &str) {
            self.puts
                .lock()
                .unwrap()
                .push((key.clone(), result.to_owned(), tenant.to_owned()));
        }
        fn apply_evict(&self, key: &CacheKey) {
            self.evicts.lock().unwrap().push(key.clone());
        }
        fn stopping(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    /// Drives a real feed connection against a scripted in-test "leader":
    /// accept, answer the handshake, stream records, drop the socket.
    #[test]
    fn the_feed_thread_applies_a_scripted_stream_and_promotes_on_silence() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();

        let leader = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("repl_subscribe"), "handshake first: {line}");
            let mut writer = stream;
            writer
                .write_all(
                    b"{\"ok\":true,\"op\":\"repl_subscribe\",\"source\":\"solved\",\
                      \"result\":{\"epoch\":77,\"leader_seq\":0,\"snapshot\":0}}\n",
                )
                .unwrap();
            let records = [
                ReplRecord::Put {
                    seq: 1,
                    epoch: 77,
                    view: key(1).view,
                    params: key(1).params,
                    result: "{\"a\":1}".into(),
                    tenant: DEFAULT_TENANT.into(),
                },
                ReplRecord::Put {
                    seq: 2,
                    epoch: 77,
                    view: key(2).view,
                    params: key(2).params,
                    result: "{\"b\":2}".into(),
                    tenant: "acme".into(),
                },
                ReplRecord::Evict {
                    seq: 3,
                    epoch: 77,
                    view: key(1).view,
                    params: key(1).params,
                },
                ReplRecord::Checkpoint {
                    seq: 3,
                    epoch: 77,
                    live: 1,
                },
            ];
            for record in &records {
                writer
                    .write_all((protocol::encode_repl_record(record) + "\n").as_bytes())
                    .unwrap();
            }
            // Die silently: the follower must auto-promote after the
            // window instead of waiting forever.
            drop(writer);
        });

        let host = Arc::new(RecordingHost::new());
        let state = Arc::new(ReplState::follower(7, addr.clone()));
        let handle = spawn_follower(
            Arc::clone(&host),
            Arc::clone(&state),
            FollowerConfig {
                leader: addr,
                shard: None,
                auto_promote: Some(Duration::from_millis(300)),
            },
        )
        .unwrap();
        handle.join().unwrap();
        leader.join().unwrap();

        assert!(state.is_writable(), "silence must have promoted");
        assert_eq!(state.epoch(), 78, "promotion bumps the adopted epoch 77");
        let puts = host.puts.lock().unwrap();
        assert_eq!(puts.len(), 2);
        assert_eq!(puts[0].1, "{\"a\":1}");
        assert_eq!(puts[0].2, DEFAULT_TENANT);
        assert_eq!(puts[1].2, "acme", "the owner survives the feed");
        assert_eq!(host.evicts.lock().unwrap().as_slice(), &[key(1)]);
        assert_eq!(state.status().records_applied, 4);
        assert_eq!(state.status().lag, 0);
    }
}
