//! # strudel-server
//!
//! The always-on refinement service of the **strudel** toolkit: a
//! long-running daemon wrapping the `strudel-core` refinement engines behind
//! a line-delimited JSON protocol over TCP, built from the ingredients that
//! turn a one-shot analysis kernel into serving infrastructure:
//!
//! * an **event loop** ([`server`]) — one thread owns every connection as a
//!   non-blocking socket with read/write buffers and ordered response
//!   slots, so thousands of idle clients cost no threads; a fixed-size
//!   **compute pool** ([`pool`]) bounds how many CPU-heavy ILP/greedy
//!   solves run concurrently and wakes the loop per completion,
//! * a **batched wire protocol** ([`protocol`]) — one line can carry an
//!   array of requests; responses preserve order, elements fail
//!   independently, and cache lookups run per-element so mixed hit/miss
//!   batches amortize framing and syscalls,
//! * a **content-addressed result cache** ([`cache`]) keyed by the hash of
//!   `(signature view, σ spec, k, θ, engine, …)` with exact-LRU eviction —
//!   a repeated instance is answered from memory with the *same bytes* as
//!   the original response — plus a **write-through persistent segment**
//!   ([`cache::SegmentStore`]) replayed on startup, so a restarted server
//!   keeps answering warm without recomputing,
//! * **single-flight memoization** ([`flight`]) so `n` concurrent identical
//!   requests cost one solve: the first becomes the leader, the rest park
//!   tokens on its flight and share the result,
//! * a **shard-aware cluster layer** — each `serve --shard i/n` process
//!   owns one arc of a consistent-hash ring over the cache-key space
//!   (`ShardRing` in `strudel_core::wire`), refuses misrouted keys with a
//!   structured `wrong_shard` error, and namespaces its persistent segment;
//!   the client side splits into the single-socket transport ([`client`])
//!   and the [`router`], which holds one connection per shard, routes by
//!   key hash, and splits batches into concurrently-driven per-shard
//!   sub-batches. Duplicate keys converge on one shard, so caching and
//!   single-flight stay per-process — no cross-process coordination,
//! * a **replication layer** ([`replica`]) — a leader streams its segment
//!   records (puts, tombstones, compaction checkpoints) to warm standbys
//!   (`serve --follow`), which replay them into their own cache and
//!   segment, serve hits read-only, and refuse writes with a structured
//!   `not_leader` error; promotion (`strudel promote` or
//!   `--auto-promote`) bumps a replication epoch, and the router fails
//!   over to `+`-listed standbys, refusing resurrected stale leaders via
//!   the same epoch machinery,
//! * a **multi-tenant QoS layer** ([`tenant`]) — requests carry a tenant
//!   id (absent = `default`), resolved against a registry configured via
//!   `serve --tenants`; each tenant gets a weighted reserve of the cache
//!   (a hot tenant evicts its own tail, never a sibling's reserve), a
//!   deterministic token-bucket admission rate, and a bounded share of
//!   the compute pool, with over-limit requests refused per-element via
//!   a structured `over_quota` error carrying `retry_after_ms`. Segment
//!   records and the replication stream are tenant-tagged, so warm
//!   restarts and promoted followers preserve per-tenant accounting.
//!
//! * an **observability layer** ([`trace`]) — every Nth solve request (and
//!   every request over a slow-log threshold) carries a span through the
//!   pipeline, stamping per-stage micros (decode → admission → cache →
//!   solve → flush) into log-scale histograms surfaced by the `status`
//!   response's `observe` block, and into a fixed-size **flight recorder**
//!   dumped by the `trace` wire command.
//!
//! The protocol speaks seven operations — `refine`, `highest-theta`,
//! `lowest-k`, `batch`, `status`, `trace`, `shutdown` — carrying signature views and
//! exact rationals as canonical strings over a deliberately tiny
//! integer-only JSON ([`json`]). [`server`] is the daemon, [`client`] the
//! blocking client the CLI (`strudel serve` / `strudel client`) wraps.
//!
//! ## In-process quick start
//!
//! ```
//! use strudel_server::prelude::*;
//! use strudel_core::sigma::SigmaSpec;
//! use strudel_rdf::signature::SignatureView;
//! use strudel_rules::prelude::Ratio;
//!
//! let handle = server::start(&ServerConfig {
//!     addr: "127.0.0.1:0".into(), // OS-assigned port
//!     workers: 2,
//!     cache_capacity: 64,
//!     ..ServerConfig::default()   // no persistence
//! })
//! .unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let request = SolveRequest {
//!     op: SolveOp::Refine,
//!     view: SignatureView::from_counts(
//!         vec!["http://ex/name".into(), "http://ex/email".into()],
//!         vec![(vec![0], 9), (vec![0, 1], 1)],
//!     )
//!     .unwrap(),
//!     spec: SigmaSpec::Coverage,
//!     engine: EngineKind::Hybrid,
//!     k: Some(2),
//!     theta: Some(Ratio::new(1, 1)),
//!     step: None,
//!     max_k: None,
//!     time_limit: None,
//!     routing: None,
//!     tenant: None,
//! };
//! let cold = client.solve(&request).unwrap();
//! assert_eq!(cold.source(), Some(Source::Solved));
//! let warm = client.solve(&request).unwrap();
//! assert_eq!(warm.source(), Some(Source::Cache));
//! assert_eq!(warm.result_text(), cold.result_text()); // byte-identical
//!
//! // Batch: two requests, one line each way, order preserved.
//! let outcomes = client.solve_batch(&[request.clone(), request]).unwrap();
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|outcome| outcome.is_ok()));
//!
//! client.shutdown().unwrap();
//! handle.wait();
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the kernel
// readiness backends' direct syscall bindings (`poller::sys` — epoll,
// eventfd, and the io_uring ring plumbing shared by both the epoll and
// uring backends), which carries its own `#[allow(unsafe_code)]` plus
// per-call SAFETY notes. Everything else in the crate stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod flight;
pub mod hints;
pub mod json;
pub mod poller;
pub mod pool;
pub mod protocol;
pub mod replica;
pub mod router;
pub mod server;
pub mod tenant;
pub mod trace;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cache::{
        CacheStats, Evicted, FsyncPolicy, LruCache, OwnerCacheStats, PersistStats, SegmentStore,
    };
    pub use crate::client::{Client, ClientError, ClientOptions, FramingMode, Response};
    pub use crate::flight::{BoardJoin, FlightBoard, FlightStats};
    pub use crate::hints::{HintIndex, SolveTelemetry, SolvedHint, SolverMode};
    pub use crate::json::Json;
    pub use crate::poller::{Event, Interest, Poller, PollerKind, PollerStats, Waker};
    pub use crate::pool::WorkerPool;
    pub use crate::protocol::{
        CacheKey, EngineKind, NotLeader, OverQuota, ReplRecord, Request, ShardRing, ShardSpec,
        ShardStamp, SolveOp, SolveRequest, Source, WrongShard, DEFAULT_TENANT,
    };
    pub use crate::replica::{ReplRole, ReplStatus, HEARTBEAT_INTERVAL};
    pub use crate::router::{Router, RouterOptions};
    pub use crate::server::start as start_server;
    pub use crate::server::{
        self, serve, shard_segment_path, ServerConfig, ServerHandle, ShardStatus, SolverStats,
        StatusSnapshot,
    };
    pub use crate::tenant::{TenantCounters, TenantQos, TenantRegistry, TenantSpecSet};
    pub use crate::trace::{FlightRecorder, ObserveSnapshot, ObserveState, SpanRecord};
}
