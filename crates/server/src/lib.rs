//! # strudel-server
//!
//! The always-on refinement service of the **strudel** toolkit: a
//! long-running daemon wrapping the `strudel-core` refinement engines behind
//! a line-delimited JSON protocol over TCP, with the three ingredients that
//! turn a one-shot analysis kernel into serving infrastructure:
//!
//! * a **fixed-size worker pool** ([`pool`]) bounding how many CPU-heavy
//!   ILP/greedy solves run concurrently, regardless of client count,
//! * a **content-addressed result cache** ([`cache`]) keyed by the hash of
//!   `(signature view, σ spec, k, θ, engine, …)` with exact-LRU eviction and
//!   hit/miss/eviction counters — a repeated instance is answered from
//!   memory with the *same bytes* as the original response,
//! * **single-flight memoization** ([`flight`]) so `n` concurrent identical
//!   requests cost one solve: the first becomes the leader, the rest share
//!   its result.
//!
//! The protocol ([`protocol`]) speaks five operations — `refine`,
//! `highest-theta`, `lowest-k`, `status`, `shutdown` — carrying signature
//! views and exact rationals as canonical strings over a deliberately tiny
//! integer-only JSON ([`json`]). [`server`] is the daemon, [`client`] the
//! blocking client the CLI (`strudel serve` / `strudel client`) wraps.
//!
//! ## In-process quick start
//!
//! ```
//! use strudel_server::prelude::*;
//! use strudel_core::sigma::SigmaSpec;
//! use strudel_rdf::signature::SignatureView;
//! use strudel_rules::prelude::Ratio;
//!
//! let handle = server::start(&ServerConfig {
//!     addr: "127.0.0.1:0".into(), // OS-assigned port
//!     workers: 2,
//!     cache_capacity: 64,
//! })
//! .unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let request = SolveRequest {
//!     op: SolveOp::Refine,
//!     view: SignatureView::from_counts(
//!         vec!["http://ex/name".into(), "http://ex/email".into()],
//!         vec![(vec![0], 9), (vec![0, 1], 1)],
//!     )
//!     .unwrap(),
//!     spec: SigmaSpec::Coverage,
//!     engine: EngineKind::Hybrid,
//!     k: Some(2),
//!     theta: Some(Ratio::new(1, 1)),
//!     step: None,
//!     max_k: None,
//!     time_limit: None,
//! };
//! let cold = client.solve(&request).unwrap();
//! assert_eq!(cold.source(), Some(Source::Solved));
//! let warm = client.solve(&request).unwrap();
//! assert_eq!(warm.source(), Some(Source::Cache));
//! assert_eq!(warm.result_text(), cold.result_text()); // byte-identical
//!
//! client.shutdown().unwrap();
//! handle.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod flight;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod server;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cache::{CacheStats, LruCache};
    pub use crate::client::{Client, ClientError, Response};
    pub use crate::flight::{FlightStats, SingleFlight};
    pub use crate::json::Json;
    pub use crate::pool::WorkerPool;
    pub use crate::protocol::{CacheKey, EngineKind, Request, SolveOp, SolveRequest, Source};
    pub use crate::server::start as start_server;
    pub use crate::server::{self, serve, ServerConfig, ServerHandle, StatusSnapshot};
}
