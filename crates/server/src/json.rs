//! A minimal JSON value, parser, and deterministic serializer.
//!
//! The server protocol is line-delimited JSON over TCP, and the workspace
//! carries no external dependencies, so this module implements the subset of
//! JSON the protocol needs:
//!
//! * every JSON construct parses — objects, arrays, strings (with all
//!   standard escapes including surrogate pairs), booleans, `null` — except
//!   that numbers must be integers fitting `i64`. Every quantity the
//!   protocol ships is a count or an index; exact rationals such as σ values
//!   and thresholds travel as canonical strings (`"3/4"`), never as lossy
//!   floats.
//! * serialization is *deterministic*: objects preserve insertion order and
//!   every value has exactly one encoding (no whitespace, fixed escape
//!   forms). This is what makes the result cache's byte-identical replay
//!   guarantee checkable: equal values ⇒ equal bytes.

use std::fmt;

/// A JSON value with integer-only numbers and insertion-ordered objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (the protocol ships no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion-ordered; duplicate keys are rejected at parse
    /// time and must not be constructed.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(text: impl Into<String>) -> Json {
        Json::Str(text.into())
    }

    /// The value of an object member, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is a number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to the canonical compact encoding.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Appends the canonical compact encoding to an existing buffer — the
    /// allocation-free form `to_text` wraps. Batch framing uses this to
    /// assemble one envelope line from many elements without a `String`
    /// per element.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (idx, (key, value)) in members.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with the byte offset of the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. The protocol's own values
/// are at most ~4 levels deep; the limit exists so a hostile line of a
/// million `[`s cannot recurse the connection thread's stack into an abort
/// (stack overflow does not unwind — it would take the whole process down).
const MAX_DEPTH: usize = 64;

/// Parses one JSON value, requiring it to span the whole input (apart from
/// surrounding whitespace).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(err(
            *pos,
            format!("unexpected character '{}'", other as char),
        )),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{keyword}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(err(
            start,
            "non-integer numbers are not part of the protocol; send exact \
             rationals as strings like \"3/4\"",
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<i64>()
        .map(Json::Int)
        .map_err(|_| err(start, format!("integer '{text}' out of i64 range")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        // Bulk-copy the run of plain content bytes up to the next quote,
        // backslash, or raw control. None of those delimiters can occur
        // inside a UTF-8 continuation (continuations are 0x80–0xBF), so the
        // run boundary is always a character boundary and one validation
        // covers the whole run. This keeps parsing linear in the input
        // length — batch envelopes are single lines tens of KiB long, and a
        // per-character validation of the remaining input (the previous
        // implementation) made them quadratic.
        let start = *pos;
        while matches!(bytes.get(*pos), Some(&b) if b != b'"' && b != b'\\' && b >= 0x20) {
            *pos += 1;
        }
        if *pos > start {
            let run = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| err(start, "invalid UTF-8 in string"))?;
            out.push_str(run);
        }
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let high = parse_hex4(bytes, pos)?;
                        let ch = if (0xd800..0xdc00).contains(&high) {
                            // A high surrogate must be followed by \uXXXX low.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            let code = 0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(high)
                                .ok_or_else(|| err(*pos, "unpaired low surrogate"))?
                        };
                        out.push(ch);
                        // parse_hex4 advanced past the digits; undo the
                        // unconditional advance below.
                        *pos -= 1;
                    }
                    _ => return Err(err(*pos, "invalid escape sequence")),
                }
                *pos += 1;
            }
            // The content run above consumed everything else; only raw
            // controls (< 0x20) can reach this arm.
            Some(_) => return Err(err(*pos, "raw control character in string")),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let text =
        std::str::from_utf8(&bytes[*pos..*pos + 4]).map_err(|_| err(*pos, "invalid \\u escape"))?;
    let value = u32::from_str_radix(text, 16).map_err(|_| err(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(value)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        let key_offset = *pos;
        let key = parse_string(bytes, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(err(key_offset, format!("duplicate object key '{key}'")));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let value = Json::obj(vec![
            ("op", Json::str("refine")),
            ("k", Json::Int(2)),
            ("neg", Json::Int(-7)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Int(1), Json::str("two"), Json::Bool(false)]),
            ),
        ]);
        let text = value.to_text();
        assert_eq!(parse(&text).unwrap(), value);
        // Deterministic: serializing the reparse gives identical bytes.
        assert_eq!(parse(&text).unwrap().to_text(), text);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "newline\nand\ttab",
            "controls \u{01}\u{1f}",
            "unicode: müsli π 🦀",
            "",
        ] {
            let text = Json::str(s).to_text();
            assert_eq!(parse(&text).unwrap(), Json::str(s), "through {text}");
        }
    }

    #[test]
    fn standard_escape_forms_parse() {
        assert_eq!(parse(r#""Aé🦀\/""#).unwrap(), Json::str("Aé🦀/"));
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
        assert!(parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn whitespace_is_tolerated_on_input() {
        let parsed = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(parsed.get("b"), Some(&Json::Null));
    }

    #[test]
    fn floats_and_malformed_input_are_rejected() {
        assert!(parse("1.5").unwrap_err().message.contains("rationals"));
        assert!(parse("1e3").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,\"a\":2}")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("null garbage").is_err());
        assert!(parse("99999999999999999999").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn nesting_bombs_are_rejected_not_recursed() {
        // 100k open brackets must produce an error, not a stack overflow
        // (which would abort the whole process, not unwind).
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Sane nesting well beyond protocol needs still parses.
        let deep = format!("{}1{}", "[".repeat(30), "]".repeat(30));
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn accessors_are_type_safe() {
        let value = parse("{\"n\":3,\"s\":\"x\"}").unwrap();
        assert_eq!(value.get("n").unwrap().as_int(), Some(3));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("n").unwrap().as_str(), None);
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Int(1).get("x"), None);
    }
}
