//! Single-flight deduplication of identical in-progress solves.
//!
//! When several clients ask for the same `(view, σ, k, θ)` instance at the
//! same time, the result cache cannot help — nothing is cached until the
//! first solve finishes, so all of them would miss and all of them would
//! burn a worker on the same ILP. Single-flight closes that gap: the first
//! requester for a key becomes the *leader* and runs the solve; everyone
//! else arriving before completion becomes a *follower* and blocks on the
//! leader's flight, receiving a clone of the leader's result. One solve,
//! `n` answers.
//!
//! The pattern is the `singleflight` package of the Go standard library
//! ecosystem, rebuilt on `Mutex` + `Condvar`. Leader crashes are handled:
//! dropping a [`Leader`] without completing (e.g. a panicking solve)
//! publishes an abort, so followers return [`Aborted`] instead of hanging.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The state one in-progress key's followers wait on.
struct FlightState<V> {
    outcome: Mutex<Option<Option<V>>>, // None = pending, Some(None) = aborted
    done: Condvar,
}

/// Counter snapshot of a single-flight group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Solves led (each is one actual execution).
    pub leaders: u64,
    /// Requests that shared a leader's execution instead of running their own.
    pub shared: u64,
    /// Followers that observed an aborted leader.
    pub aborted: u64,
}

/// A group of keyed flights.
pub struct SingleFlight<K, V> {
    flights: Mutex<HashMap<K, Arc<FlightState<V>>>>,
    leaders: AtomicU64,
    shared: AtomicU64,
    aborted: AtomicU64,
}

/// What [`SingleFlight::join`] decided for this caller.
pub enum Join<'a, K: Hash + Eq + Clone, V: Clone> {
    /// This caller must execute the work and publish via [`Leader::complete`].
    Lead(Leader<'a, K, V>),
    /// Another caller executed the work; here is its result.
    Follow(Result<V, Aborted>),
}

/// The leader's obligation to publish. Dropping it without calling
/// [`Leader::complete`] aborts the flight (followers get [`Aborted`]).
pub struct Leader<'a, K: Hash + Eq + Clone, V: Clone> {
    group: &'a SingleFlight<K, V>,
    key: K,
    state: Arc<FlightState<V>>,
    published: bool,
}

/// The leader dropped without publishing (its solve panicked or was
/// otherwise lost). Followers should report an error for this request;
/// retrying is safe and will elect a fresh leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Aborted;

impl<K: Hash + Eq + Clone, V: Clone> SingleFlight<K, V> {
    /// Creates an empty group.
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            shared: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// Joins the flight for `key`: the first caller leads, later callers
    /// (until the leader publishes) block and then receive the result.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let state = {
            let mut flights = self.flights.lock().expect("flight map lock");
            match flights.get(&key) {
                Some(state) => Arc::clone(state),
                None => {
                    let state = Arc::new(FlightState {
                        outcome: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&state));
                    self.leaders.fetch_add(1, Ordering::Relaxed);
                    return Join::Lead(Leader {
                        group: self,
                        key,
                        state,
                        published: false,
                    });
                }
            }
        };
        // Follower: wait for the leader to publish or abort.
        let mut outcome = state.outcome.lock().expect("flight outcome lock");
        while outcome.is_none() {
            outcome = state.done.wait(outcome).expect("flight outcome lock");
        }
        match outcome.as_ref().expect("loop exits only when set") {
            Some(value) => {
                self.shared.fetch_add(1, Ordering::Relaxed);
                Join::Follow(Ok(value.clone()))
            }
            None => {
                self.aborted.fetch_add(1, Ordering::Relaxed);
                Join::Follow(Err(Aborted))
            }
        }
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            leaders: self.leaders.load(Ordering::Relaxed),
            shared: self.shared.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
        }
    }

    fn publish(&self, key: &K, state: &Arc<FlightState<V>>, value: Option<V>) {
        // Remove the flight first so a caller arriving after publication
        // starts a fresh flight (the cache, not single-flight, serves
        // completed results).
        self.flights.lock().expect("flight map lock").remove(key);
        *state.outcome.lock().expect("flight outcome lock") = Some(value);
        state.done.notify_all();
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Leader<'_, K, V> {
    /// Publishes the result to every follower and retires the flight.
    pub fn complete(mut self, value: V) {
        self.group.publish(&self.key, &self.state, Some(value));
        self.published = true;
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for Leader<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.group.publish(&self.key, &self.state, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn first_caller_leads_followers_share() {
        let group: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let executions = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..8 {
            let group = Arc::clone(&group);
            let executions = Arc::clone(&executions);
            handles.push(thread::spawn(move || match group.join(7) {
                Join::Lead(leader) => {
                    // Hold the flight open long enough that the other
                    // threads arrive while it is in progress.
                    thread::sleep(Duration::from_millis(50));
                    executions.fetch_add(1, Ordering::SeqCst);
                    leader.complete("answer".to_owned());
                    "answer".to_owned()
                }
                Join::Follow(result) => result.expect("leader completes"),
            }));
        }
        let answers: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(answers.iter().all(|a| a == "answer"));
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "exactly one thread must execute the solve"
        );
        let stats = group.stats();
        assert_eq!(stats.leaders, 1);
        assert_eq!(stats.shared, 7);
        assert_eq!(stats.aborted, 0);
    }

    #[test]
    fn distinct_keys_do_not_share() {
        let group: SingleFlight<u32, u32> = SingleFlight::new();
        match group.join(1) {
            Join::Lead(leader) => leader.complete(1),
            Join::Follow(_) => panic!("fresh key must lead"),
        }
        match group.join(2) {
            Join::Lead(leader) => leader.complete(2),
            Join::Follow(_) => panic!("distinct key must lead"),
        }
        assert_eq!(group.stats().leaders, 2);
        assert_eq!(group.stats().shared, 0);
    }

    #[test]
    fn completed_flights_are_retired_not_replayed() {
        let group: SingleFlight<u32, u32> = SingleFlight::new();
        match group.join(5) {
            Join::Lead(leader) => leader.complete(10),
            Join::Follow(_) => panic!("fresh key must lead"),
        }
        // A later caller for the same key leads again: single-flight only
        // spans the in-progress window (the cache handles afterwards).
        assert!(matches!(group.join(5), Join::Lead(_)));
    }

    #[test]
    fn dropped_leaders_abort_their_followers() {
        let group: Arc<SingleFlight<u32, u32>> = Arc::new(SingleFlight::new());
        let follower = {
            let group = Arc::clone(&group);
            thread::spawn(move || {
                // Give the main thread time to become leader.
                thread::sleep(Duration::from_millis(30));
                match group.join(9) {
                    Join::Lead(_) => panic!("main thread already leads"),
                    Join::Follow(result) => result,
                }
            })
        };
        let leader = match group.join(9) {
            Join::Lead(leader) => leader,
            Join::Follow(_) => panic!("fresh key must lead"),
        };
        thread::sleep(Duration::from_millis(60));
        drop(leader); // abandon without completing
        assert_eq!(follower.join().unwrap(), Err(Aborted));
        assert_eq!(group.stats().aborted, 1);
    }
}
