//! Single-flight deduplication of identical in-progress solves, event-loop
//! style.
//!
//! When several clients ask for the same `(view, σ, k, θ)` instance at the
//! same time, the result cache cannot help — nothing is cached until the
//! first solve finishes, so all of them would miss and all of them would
//! burn a worker on the same ILP. Single-flight closes that gap: the first
//! requester for a key becomes the *leader* and its solve is submitted to
//! the compute pool; everyone else arriving before completion becomes a
//! *follower* and is parked on the leader's flight, receiving the leader's
//! result when it lands.
//!
//! The original implementation (PR 1) blocked follower *threads* on a
//! `Condvar`, which matched the thread-per-connection server. The event
//! loop has no thread to block — a follower is now just a token (which
//! connection, which response slot, which batch element) parked in the
//! [`FlightBoard`], and the loop fans the completed result out to every
//! token when the worker's completion message arrives. The board is plain
//! single-owner data: it lives inside the event loop and needs no locks.

use std::collections::HashMap;
use std::hash::Hash;

/// Counter snapshot of the single-flight layer (part of the `status`
/// payload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Solves led (each is one actual execution on the compute pool).
    pub leaders: u64,
    /// Requests that shared a leader's execution instead of running their own.
    pub shared: u64,
    /// Parked requesters whose connection was gone by completion time.
    pub aborted: u64,
}

/// What [`FlightBoard::join`] decided for the caller's token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoardJoin {
    /// First requester for the key: the caller must start the solve and
    /// later call [`FlightBoard::complete`]. The token is parked as the
    /// flight's leader (returned first by `complete`).
    Lead,
    /// A solve for the key is already in progress; the token is parked
    /// behind the leader and will receive the shared result.
    Wait,
}

/// The non-blocking single-flight registry of the event loop.
///
/// Tokens are whatever the owner needs to route a result back — the server
/// parks `(connection, slot, element)` triples. The board itself never
/// executes anything; it only answers "is this key in flight?" and hands
/// every parked token back on completion, leader first.
#[derive(Debug)]
pub struct FlightBoard<K, T> {
    pending: HashMap<K, Vec<T>>,
}

impl<K: Hash + Eq + Clone, T> FlightBoard<K, T> {
    /// Creates an empty board.
    pub fn new() -> Self {
        FlightBoard {
            pending: HashMap::new(),
        }
    }

    /// Parks `token` under `key`. The first token for a key leads (its
    /// owner must start the solve); later tokens wait for it.
    pub fn join(&mut self, key: K, token: T) -> BoardJoin {
        match self.pending.get_mut(&key) {
            Some(tokens) => {
                tokens.push(token);
                BoardJoin::Wait
            }
            None => {
                self.pending.insert(key, vec![token]);
                BoardJoin::Lead
            }
        }
    }

    /// Retires the flight for `key`, returning every parked token — the
    /// leader's first, then followers in arrival order. A key with no
    /// flight returns an empty vector (its requesters are all gone).
    pub fn complete(&mut self, key: &K) -> Vec<T> {
        self.pending.remove(key).unwrap_or_default()
    }

    /// Whether a solve for `key` is currently in flight. Admission control
    /// asks this before charging a would-be leader against its tenant's
    /// compute-pool share — joining an open flight costs no worker slot.
    pub fn contains(&self, key: &K) -> bool {
        self.pending.contains_key(key)
    }

    /// Number of keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether no solve is in flight (the graceful-shutdown drain
    /// condition).
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Abandons every flight, returning all parked tokens in arbitrary
    /// flight order (leaders first within each flight). Shutdown teardown
    /// uses this so tokens carrying accounting (trace spans) can be
    /// closed out instead of dropped when the drain grace expires with
    /// solves still in the air.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.pending
            .drain()
            .flat_map(|(_, tokens)| tokens)
            .collect()
    }
}

impl<K: Hash + Eq + Clone, T> Default for FlightBoard<K, T> {
    fn default() -> Self {
        FlightBoard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_token_leads_followers_wait_and_complete_returns_in_order() {
        let mut board: FlightBoard<u32, &str> = FlightBoard::new();
        assert_eq!(board.join(7, "leader"), BoardJoin::Lead);
        assert_eq!(board.join(7, "f1"), BoardJoin::Wait);
        assert_eq!(board.join(7, "f2"), BoardJoin::Wait);
        assert_eq!(board.in_flight(), 1);

        let tokens = board.complete(&7);
        assert_eq!(tokens, vec!["leader", "f1", "f2"]);
        assert!(board.is_empty());
    }

    #[test]
    fn distinct_keys_do_not_share_a_flight() {
        let mut board: FlightBoard<u32, u32> = FlightBoard::new();
        assert_eq!(board.join(1, 10), BoardJoin::Lead);
        assert_eq!(board.join(2, 20), BoardJoin::Lead);
        assert_eq!(board.in_flight(), 2);
        assert_eq!(board.complete(&1), vec![10]);
        assert_eq!(board.complete(&2), vec![20]);
    }

    #[test]
    fn completed_flights_are_retired_not_replayed() {
        let mut board: FlightBoard<u32, u32> = FlightBoard::new();
        assert_eq!(board.join(5, 1), BoardJoin::Lead);
        board.complete(&5);
        // A later requester for the same key leads a fresh flight:
        // single-flight only spans the in-progress window (the cache
        // serves completed results).
        assert_eq!(board.join(5, 2), BoardJoin::Lead);
    }

    #[test]
    fn completing_an_unknown_key_returns_no_tokens() {
        let mut board: FlightBoard<u32, u32> = FlightBoard::new();
        assert!(board.complete(&9).is_empty());
    }
}
