//! Multi-tenant namespaces with per-tenant QoS.
//!
//! One server (and one cluster) hosts many *tenants* — independent
//! workloads sharing the process. Without isolation a single noisy tenant
//! evicts the whole fleet's working set and occupies every solver slot;
//! this module is the control plane that prevents it. Three QoS planes,
//! each enforced at a different layer but configured here:
//!
//! * **Cache weight** — every tenant named in the spec reserves a share of
//!   the LRU proportional to its `weight`. The weighted eviction policy
//!   itself lives in [`LruCache`](crate::cache::LruCache) (which tags every
//!   entry with its owner); the registry merely translates weights into
//!   reserved entry counts at startup.
//! * **Admission rate** — a deterministic token bucket per tenant
//!   ([`TokenBucket`]): `rate` tokens/second with a `burst` ceiling,
//!   refilled lazily from *logical elapsed time* (a `Duration` the caller
//!   passes in), never from wall-clock sampling inside the bucket — so the
//!   property tests replay identical admission traces. An over-limit
//!   request is refused with a structured `over_quota` error carrying
//!   `retry_after_ms`: the time to the next token plus bounded jitter from
//!   a seeded [`StdRng`] (deterministic by construction, and spread so a
//!   refused fleet does not retry in lockstep).
//! * **Compute-pool share** — a per-tenant in-flight ceiling (`pool`)
//!   checked before a request may *lead* a solve. Joining an existing
//!   single-flight is always free: coalescing costs no solver slot.
//!
//! Tenants not named in the spec are admitted unlimited (and tracked under
//! their own counters); the [`DEFAULT_TENANT`] exists implicitly, so a
//! server started without `--tenants` behaves exactly as before tenancy.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use strudel_core::wire::{validate_tenant, DEFAULT_TENANT};
use strudel_rdf::rng::StdRng;

/// One micro-token: buckets account in millionths of a token so integer
/// arithmetic stays exact at any refill granularity.
const MICRO: u64 = 1_000_000;

/// Per-tenant QoS knobs, parsed from one `--tenants` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantQos {
    /// The tenant id (validated by `strudel_core::wire::validate_tenant`).
    pub name: String,
    /// Relative cache weight; the tenant reserves
    /// `capacity × weight / Σweights` LRU entries (default 1).
    pub weight: u64,
    /// Admission rate in requests/second; `None` means unlimited.
    pub rate: Option<u64>,
    /// Token-bucket capacity (burst); defaults to `rate` when a rate is
    /// set, meaningless otherwise.
    pub burst: Option<u64>,
    /// Maximum concurrent solves the tenant may lead; `None` = unlimited.
    pub pool: Option<usize>,
}

impl TenantQos {
    /// An unlimited tenant with weight 1 — the shape every tenant not
    /// named in the spec gets.
    fn unlimited(name: &str) -> Self {
        TenantQos {
            name: name.to_owned(),
            weight: 1,
            rate: None,
            burst: None,
            pool: None,
        }
    }
}

/// The parsed `serve --tenants` spec: a list of named tenants with knobs.
///
/// Grammar (whitespace-tolerant):
///
/// ```text
/// SPEC   := ENTRY (';' ENTRY)*
/// ENTRY  := NAME (':' KNOB (',' KNOB)*)?
/// KNOB   := ('weight'|'rate'|'burst'|'pool') '=' INTEGER
/// ```
///
/// Example: `alpha:weight=2,rate=50,burst=100,pool=2;beta:weight=1`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantSpecSet {
    /// The configured tenants, in spec order.
    pub tenants: Vec<TenantQos>,
}

impl TenantSpecSet {
    /// Parses the `--tenants` notation. Rejects empty specs, invalid
    /// tenant ids, duplicate names, unknown knobs, zero values, and a
    /// `burst` without a `rate` (a burst ceiling on an unlimited bucket
    /// would silently do nothing).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut tenants: Vec<TenantQos> = Vec::new();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, knobs) = match entry.split_once(':') {
                Some((name, knobs)) => (name.trim(), knobs.trim()),
                None => (entry, ""),
            };
            validate_tenant(name)?;
            if tenants.iter().any(|t| t.name == name) {
                return Err(format!("tenant '{name}' appears twice in the spec"));
            }
            let mut qos = TenantQos::unlimited(name);
            for knob in knobs.split(',') {
                let knob = knob.trim();
                if knob.is_empty() {
                    continue;
                }
                let (key, value) = knob
                    .split_once('=')
                    .ok_or_else(|| format!("expected KNOB=VALUE in '{knob}' for '{name}'"))?;
                let value: u64 = value.trim().parse().map_err(|_| {
                    format!(
                        "invalid value '{}' for {} of '{name}'",
                        value.trim(),
                        key.trim()
                    )
                })?;
                if value == 0 {
                    return Err(format!("{} of '{name}' must be at least 1", key.trim()));
                }
                match key.trim() {
                    "weight" => qos.weight = value,
                    "rate" => qos.rate = Some(value),
                    "burst" => qos.burst = Some(value),
                    "pool" => qos.pool = Some(value as usize),
                    other => {
                        return Err(format!(
                            "unknown knob '{other}' for '{name}'; expected weight, rate, \
                             burst, or pool"
                        ))
                    }
                }
            }
            if qos.burst.is_some() && qos.rate.is_none() {
                return Err(format!(
                    "'{name}' sets burst without rate; a burst only bounds a rate-limited bucket"
                ));
            }
            tenants.push(qos);
        }
        if tenants.is_empty() {
            return Err("the tenant spec names no tenants".to_owned());
        }
        Ok(TenantSpecSet { tenants })
    }

    /// `(name, weight)` pairs for the cache's weighted-eviction policy.
    pub fn weights(&self) -> Vec<(String, u64)> {
        self.tenants
            .iter()
            .map(|t| (t.name.clone(), t.weight))
            .collect()
    }
}

/// A deterministic token bucket: `rate` tokens/second up to `burst`,
/// refilled lazily from the logical time the caller passes in.
///
/// All arithmetic is integral (micro-tokens), so two buckets fed the same
/// sequence of `now` values make byte-identical decisions — the
/// reproducibility contract the admission property tests pin down.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: u64,
    burst: u64,
    micro: u64,
    last: Duration,
}

impl TokenBucket {
    /// A full bucket holding `burst` tokens, refilling at `rate`/second.
    /// Both must be non-zero.
    pub fn new(rate: u64, burst: u64) -> Self {
        assert!(rate > 0 && burst > 0, "a bucket needs a rate and a burst");
        TokenBucket {
            rate,
            burst,
            micro: burst.saturating_mul(MICRO),
            last: Duration::ZERO,
        }
    }

    /// Takes one token at logical time `now`, or reports how long until
    /// the next token refills. `now` values must be non-decreasing per
    /// bucket (they come from one monotonic clock); an out-of-order `now`
    /// is treated as "no time has passed".
    pub fn try_take(&mut self, now: Duration) -> Result<(), Duration> {
        self.refill(now);
        if self.micro >= MICRO {
            self.micro -= MICRO;
            return Ok(());
        }
        let deficit = MICRO - self.micro;
        // deficit micro-tokens at `rate` tokens/s refill in
        // deficit / rate microseconds (1 token = 1e6 micro-tokens,
        // 1 s = 1e6 µs — the scales cancel).
        Err(Duration::from_micros(deficit.div_ceil(self.rate)))
    }

    /// Tokens currently available (whole tokens, rounded down), after
    /// refilling to `now`.
    pub fn available(&mut self, now: Duration) -> u64 {
        self.refill(now);
        self.micro / MICRO
    }

    fn refill(&mut self, now: Duration) {
        if now <= self.last {
            return;
        }
        let elapsed_micros = (now - self.last).as_micros().min(u128::from(u64::MAX)) as u64;
        let gained = elapsed_micros.saturating_mul(self.rate);
        self.micro = self
            .micro
            .saturating_add(gained)
            .min(self.burst.saturating_mul(MICRO));
        self.last = now;
    }
}

/// One tenant's live state: its knobs, bucket, and counters.
struct TenantState {
    qos: TenantQos,
    bucket: Option<TokenBucket>,
    hits: u64,
    misses: u64,
    evictions: u64,
    refusals: u64,
    inflight: usize,
    /// While the tenant is being refused, the logical time its bucket next
    /// holds a token — the deadline the event loop folds into its poller
    /// wait so a throttled-but-idle server wakes exactly when admission
    /// reopens. Cleared once the deadline passes.
    throttled_until: Option<Duration>,
}

impl TenantState {
    fn new(qos: TenantQos) -> Self {
        let bucket = qos
            .rate
            .map(|rate| TokenBucket::new(rate, qos.burst.unwrap_or(rate).max(1)));
        TenantState {
            qos,
            bucket,
            hits: 0,
            misses: 0,
            evictions: 0,
            refusals: 0,
            inflight: 0,
            throttled_until: None,
        }
    }
}

/// A point-in-time copy of one tenant's counters, for `status`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantCounters {
    /// The tenant id.
    pub name: String,
    /// Cache hits served to this tenant.
    pub hits: u64,
    /// Cache misses (requests that went to a solver or a flight).
    pub misses: u64,
    /// Entries of this tenant evicted from the cache.
    pub evictions: u64,
    /// Requests refused with `over_quota` (rate or pool share).
    pub refusals: u64,
    /// Solves this tenant is currently leading.
    pub inflight: u64,
    /// The configured cache weight.
    pub weight: u64,
    /// The configured admission rate, 0 when unlimited.
    pub rate: u64,
    /// The configured pool share, 0 when unlimited.
    pub pool: u64,
}

struct Inner {
    tenants: HashMap<String, TenantState>,
    /// Stable listing order: configured tenants first (spec order), then
    /// unknown tenants in first-seen order.
    order: Vec<String>,
    rng: StdRng,
}

impl Inner {
    fn state(&mut self, tenant: &str) -> &mut TenantState {
        if !self.tenants.contains_key(tenant) {
            self.order.push(tenant.to_owned());
            self.tenants.insert(
                tenant.to_owned(),
                TenantState::new(TenantQos::unlimited(tenant)),
            );
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }
}

/// The server's tenant control plane: resolves tenant ids to their QoS
/// state, admits or refuses requests, meters the per-tenant compute-pool
/// share, and keeps the per-tenant counters `status` reports.
///
/// Interior-mutexed so the event loop and the status snapshot path (a
/// different thread) can both read it; every method takes `&self`.
pub struct TenantRegistry {
    started: Instant,
    inner: Mutex<Inner>,
}

impl TenantRegistry {
    /// Builds the registry from a parsed spec (or `None` for a fully
    /// unlimited single-`default` world) and the jitter seed.
    pub fn new(spec: Option<&TenantSpecSet>, seed: u64) -> Self {
        let mut inner = Inner {
            tenants: HashMap::new(),
            order: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        };
        if let Some(spec) = spec {
            for qos in &spec.tenants {
                inner.order.push(qos.name.clone());
                inner
                    .tenants
                    .insert(qos.name.clone(), TenantState::new(qos.clone()));
            }
        }
        // The default tenant always exists: pre-tenancy traffic lands here.
        if !inner.tenants.contains_key(DEFAULT_TENANT) {
            inner.order.push(DEFAULT_TENANT.to_owned());
            inner.tenants.insert(
                DEFAULT_TENANT.to_owned(),
                TenantState::new(TenantQos::unlimited(DEFAULT_TENANT)),
            );
        }
        TenantRegistry {
            started: Instant::now(),
            inner: Mutex::new(inner),
        }
    }

    /// The registry's logical clock: elapsed time since construction.
    pub fn now(&self) -> Duration {
        self.started.elapsed()
    }

    /// Admits one request for `tenant` at the registry's current logical
    /// time. See [`TenantRegistry::admit_at`].
    pub fn admit(&self, tenant: &str) -> Result<(), u64> {
        self.admit_at(tenant, self.now())
    }

    /// Admits one request for `tenant` at logical time `now`, or refuses
    /// with the suggested `retry_after_ms` (time to the next token plus up
    /// to 25% seeded jitter, never below 1 ms). A refusal counts into the
    /// tenant's `refusals` and arms its refill deadline for
    /// [`TenantRegistry::next_refill_due_in`].
    pub fn admit_at(&self, tenant: &str, now: Duration) -> Result<(), u64> {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        let state = state_and_rng(&mut inner, tenant);
        let (state, rng) = state;
        let Some(bucket) = state.bucket.as_mut() else {
            return Ok(());
        };
        match bucket.try_take(now) {
            Ok(()) => {
                state.throttled_until = None;
                Ok(())
            }
            Err(until_token) => {
                state.refusals += 1;
                state.throttled_until = Some(now + until_token);
                let base = until_token.as_micros().min(u128::from(u64::MAX)) as u64;
                let jitter = rng.gen_range(0..(base / 4).max(1));
                Err(((base + jitter).div_ceil(1000)).max(1))
            }
        }
    }

    /// Whether `tenant` may *lead* another solve right now (its in-flight
    /// count is below its pool share). Joining an existing flight is not
    /// gated — coalescing costs no solver slot.
    pub fn pool_available(&self, tenant: &str) -> bool {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        let state = inner.state(tenant);
        match state.qos.pool {
            Some(limit) => state.inflight < limit,
            None => true,
        }
    }

    /// Refuses one request for pool exhaustion: counts the refusal and
    /// returns the suggested back-off in milliseconds (a slot frees when a
    /// solve completes, which the registry cannot predict — the jittered
    /// floor keeps retries cheap and unsynchronized).
    pub fn refuse_pool(&self, tenant: &str) -> u64 {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        let (state, rng) = state_and_rng(&mut inner, tenant);
        state.refusals += 1;
        1 + rng.gen_range(0..4u64)
    }

    /// Marks `tenant` as leading one more solve.
    pub fn begin_solve(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        inner.state(tenant).inflight += 1;
    }

    /// Marks one of `tenant`'s solves complete.
    pub fn end_solve(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        let state = inner.state(tenant);
        state.inflight = state.inflight.saturating_sub(1);
    }

    /// Counts a cache hit for `tenant`.
    pub fn count_hit(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        inner.state(tenant).hits += 1;
    }

    /// Counts a cache miss for `tenant`.
    pub fn count_miss(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        inner.state(tenant).misses += 1;
    }

    /// Counts an eviction of one of `tenant`'s entries.
    pub fn count_eviction(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        inner.state(tenant).evictions += 1;
    }

    /// The soonest armed refill deadline at logical time `now`, for the
    /// event loop's wait-timeout computation: a throttled-but-otherwise-
    /// idle server wakes when admission reopens instead of sleeping
    /// indefinitely. Deadlines already in the past are cleared, not
    /// reported.
    pub fn next_refill_due_in(&self, now: Duration) -> Option<Duration> {
        let mut inner = self.inner.lock().expect("tenant registry poisoned");
        let mut soonest: Option<Duration> = None;
        for state in inner.tenants.values_mut() {
            match state.throttled_until {
                Some(until) if until > now => {
                    let due = until - now;
                    soonest = Some(soonest.map_or(due, |best: Duration| best.min(due)));
                }
                Some(_) => state.throttled_until = None,
                None => {}
            }
        }
        soonest
    }

    /// `(name, weight)` pairs of the *configured* tenants (the ones with a
    /// reserved cache share). Unknown tenants reserve nothing.
    pub fn weights(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("tenant registry poisoned");
        inner
            .order
            .iter()
            .filter_map(|name| {
                let state = inner.tenants.get(name)?;
                Some((name.clone(), state.qos.weight))
            })
            .collect()
    }

    /// A point-in-time copy of every tenant's counters, in stable order
    /// (configured tenants first, then unknown tenants as first seen).
    pub fn snapshot(&self) -> Vec<TenantCounters> {
        let inner = self.inner.lock().expect("tenant registry poisoned");
        inner
            .order
            .iter()
            .filter_map(|name| {
                let state = inner.tenants.get(name)?;
                Some(TenantCounters {
                    name: name.clone(),
                    hits: state.hits,
                    misses: state.misses,
                    evictions: state.evictions,
                    refusals: state.refusals,
                    inflight: state.inflight as u64,
                    weight: state.qos.weight,
                    rate: state.qos.rate.unwrap_or(0),
                    pool: state.qos.pool.map_or(0, |p| p as u64),
                })
            })
            .collect()
    }
}

/// Splits the borrow: the per-tenant state and the shared jitter RNG,
/// mutably at once (the borrow checker cannot see through `Inner` that
/// `state()` and `rng` are disjoint).
fn state_and_rng<'a>(inner: &'a mut Inner, tenant: &str) -> (&'a mut TenantState, &'a mut StdRng) {
    if !inner.tenants.contains_key(tenant) {
        inner.order.push(tenant.to_owned());
        inner.tenants.insert(
            tenant.to_owned(),
            TenantState::new(TenantQos::unlimited(tenant)),
        );
    }
    let Inner { tenants, rng, .. } = inner;
    (tenants.get_mut(tenant).expect("just inserted"), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_names_and_knobs() {
        let set = TenantSpecSet::parse("alpha:weight=2,rate=50,burst=100,pool=2;beta").unwrap();
        assert_eq!(set.tenants.len(), 2);
        assert_eq!(
            set.tenants[0],
            TenantQos {
                name: "alpha".into(),
                weight: 2,
                rate: Some(50),
                burst: Some(100),
                pool: Some(2),
            }
        );
        assert_eq!(set.tenants[1], TenantQos::unlimited("beta"));
        assert_eq!(
            set.weights(),
            vec![("alpha".to_owned(), 2), ("beta".to_owned(), 1)]
        );
        // Whitespace-tolerant.
        let spaced = TenantSpecSet::parse(" alpha : weight = 2 ; beta ").unwrap();
        assert_eq!(spaced.tenants[0].weight, 2);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "",
            ";;",
            "a b:weight=1",   // invalid id
            "alpha;alpha",    // duplicate
            "alpha:weight=0", // zero knob
            "alpha:rate=x",   // non-numeric
            "alpha:frobs=3",  // unknown knob
            "alpha:weight",   // missing '='
            "alpha:burst=10", // burst without rate
        ] {
            assert!(TenantSpecSet::parse(bad).is_err(), "must reject '{bad}'");
        }
    }

    #[test]
    fn buckets_refill_at_their_rate_and_cap_at_burst() {
        let mut bucket = TokenBucket::new(10, 2); // 10/s, burst 2
        let t0 = Duration::ZERO;
        assert!(bucket.try_take(t0).is_ok());
        assert!(bucket.try_take(t0).is_ok());
        // Empty: the next token is 100 ms away at 10/s.
        let retry = bucket.try_take(t0).unwrap_err();
        assert_eq!(retry, Duration::from_millis(100));
        // 50 ms later, still short — and the estimate shrinks accordingly.
        let retry = bucket.try_take(Duration::from_millis(50)).unwrap_err();
        assert_eq!(retry, Duration::from_millis(50));
        // At 100 ms the token is there.
        assert!(bucket.try_take(Duration::from_millis(100)).is_ok());
        // A long idle period refills to burst, not beyond.
        assert_eq!(bucket.available(Duration::from_secs(60)), 2);
    }

    #[test]
    fn bucket_decisions_are_deterministic_for_identical_traces() {
        // Property: two buckets fed the same (seeded-random) sequence of
        // non-decreasing timestamps make identical decisions, including
        // the retry estimates.
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..50 {
            let rate = rng.gen_range(1..40u64);
            let burst = rng.gen_range(1..10u64);
            let mut a = TokenBucket::new(rate, burst);
            let mut b = TokenBucket::new(rate, burst);
            let mut now = Duration::ZERO;
            for _ in 0..200 {
                now += Duration::from_micros(rng.gen_range(0..200_000u64));
                assert_eq!(a.try_take(now), b.try_take(now));
            }
        }
    }

    #[test]
    fn registries_admit_deterministically_under_one_seed() {
        let spec = TenantSpecSet::parse("alpha:rate=5,burst=2").unwrap();
        let trace: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(7);
            let mut now = Duration::ZERO;
            (0..100)
                .map(|_| {
                    now += Duration::from_micros(rng.gen_range(0..400_000u64));
                    now
                })
                .collect()
        };
        let run = |seed: u64| -> Vec<Result<(), u64>> {
            let registry = TenantRegistry::new(Some(&spec), seed);
            trace
                .iter()
                .map(|&now| registry.admit_at("alpha", now))
                .collect()
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed, same trace, same decisions");
        assert!(
            first.iter().any(|d| d.is_err()),
            "the trace must actually exercise refusals"
        );
        assert!(
            first.iter().any(|d| d.is_ok()),
            "the trace must actually exercise admissions"
        );
        // Refusal advice always respects the 1 ms floor.
        for decision in &first {
            if let Err(retry_ms) = decision {
                assert!(*retry_ms >= 1);
            }
        }
    }

    #[test]
    fn unknown_tenants_are_unlimited_but_counted() {
        let registry = TenantRegistry::new(None, 1);
        for _ in 0..1000 {
            assert!(registry.admit("wanderer").is_ok());
        }
        registry.count_hit("wanderer");
        registry.count_miss("wanderer");
        let snapshot = registry.snapshot();
        let wanderer = snapshot.iter().find(|t| t.name == "wanderer").unwrap();
        assert_eq!(
            (wanderer.hits, wanderer.misses, wanderer.refusals),
            (1, 1, 0)
        );
        // The default tenant always exists, even unconfigured.
        assert!(snapshot.iter().any(|t| t.name == DEFAULT_TENANT));
    }

    #[test]
    fn pool_shares_bound_concurrent_leadership() {
        let spec = TenantSpecSet::parse("alpha:pool=2").unwrap();
        let registry = TenantRegistry::new(Some(&spec), 1);
        assert!(registry.pool_available("alpha"));
        registry.begin_solve("alpha");
        registry.begin_solve("alpha");
        assert!(!registry.pool_available("alpha"));
        // Other tenants are unaffected by alpha's saturation.
        assert!(registry.pool_available("beta"));
        let retry = registry.refuse_pool("alpha");
        assert!(retry >= 1);
        registry.end_solve("alpha");
        assert!(registry.pool_available("alpha"));
        let alpha = registry
            .snapshot()
            .into_iter()
            .find(|t| t.name == "alpha")
            .unwrap();
        assert_eq!(alpha.refusals, 1);
        assert_eq!(alpha.inflight, 1);
    }

    #[test]
    fn refill_deadlines_are_armed_by_refusals_and_expire() {
        let spec = TenantSpecSet::parse("alpha:rate=10,burst=1").unwrap();
        let registry = TenantRegistry::new(Some(&spec), 3);
        let t0 = Duration::from_millis(1);
        assert!(registry.admit_at("alpha", t0).is_ok());
        assert!(registry.admit_at("alpha", t0).is_err());
        // The deadline is the 100 ms refill at 10/s.
        let due = registry.next_refill_due_in(t0).expect("armed deadline");
        assert_eq!(due, Duration::from_millis(100));
        // Mid-window it shrinks; past the window it clears.
        let mid = registry.next_refill_due_in(t0 + Duration::from_millis(40));
        assert_eq!(mid, Some(Duration::from_millis(60)));
        assert_eq!(
            registry.next_refill_due_in(t0 + Duration::from_millis(150)),
            None
        );
        // And once admitted again nothing is armed.
        assert!(registry
            .admit_at("alpha", t0 + Duration::from_millis(200))
            .is_ok());
        assert_eq!(
            registry.next_refill_due_in(t0 + Duration::from_millis(200)),
            None
        );
    }
}
