//! Shard-aware client routing: one connection per shard, requests routed
//! by consistent hash of their cache key, with standby fail-over.
//!
//! The client stack is two layers. [`Client`](crate::client::Client) is the
//! transport: one socket, one line each way, deadlines on every operation.
//! [`Router`] sits above it and owns one *endpoint set* per shard of a
//! cluster — a primary plus any standbys, written `primary+standby` in the
//! cluster list — derives the same [`ShardRing`] every server derives (the
//! ring is a pure function of the shard count — no coordination service),
//! and:
//!
//! * routes [`Router::solve`] to the shard owning the request's
//!   `CacheKey.view`, stamping the request with the shard id and the
//!   highest *replication epoch* it has seen for that shard, so the server
//!   can verify both sides agree (and so a resurrected old leader, still
//!   on the previous epoch, refuses the stamp instead of serving stale
//!   answers),
//! * splits [`Router::call_batch`] into per-shard sub-batches, drives them
//!   **concurrently** (one thread per shard with traffic), and merges the
//!   responses back into request order — a failed element, or a whole
//!   unreachable shard, yields `Err` elements without poisoning the rest,
//! * retries a dead connection with **bounded, jittered backoff** (the
//!   shard may simply be restarting — a single immediate attempt used to
//!   race the rebind and surface a hard error), then **fails over** to the
//!   shard's standbys in order, adopting the promoted follower's epoch
//!   from its status before re-stamping. Timeouts skip the reconnect
//!   loop — a wedged shard fails toward its standby promptly — and the
//!   jitter comes from a seeded [`StdRng`], never the wall clock, so
//!   routing behaviour in tests is reproducible.
//!
//! Because duplicate keys converge on one shard, the server's per-process
//! single-flight and result cache keep working unchanged: the cluster
//! needs no cross-process coordination at all — and neither does
//! fail-over, which is driven entirely by the epoch arithmetic of
//! [`replica`](crate::replica).

use std::thread;
use std::time::Duration;

use strudel_core::wire::{ShardRing, ShardStamp};
use strudel_rdf::rng::StdRng;

use crate::client::{Client, ClientError, ClientOptions, Response};
use crate::json::Json;
use crate::protocol::{self, Request, SolveRequest};

/// Tuning knobs of a [`Router`] beyond the per-connection deadlines.
#[derive(Clone, Copy, Debug)]
pub struct RouterOptions {
    /// Deadlines for every shard connection.
    pub client: ClientOptions,
    /// Reconnect attempts against the *same* address after a connection
    /// failure, before failing over to a standby (default 3).
    pub reconnect_attempts: u32,
    /// Base of the exponential reconnect backoff (default 25 ms; attempt
    /// `n` sleeps `base × 2ⁿ` plus up to half that again of jitter).
    pub backoff_base: Duration,
    /// Seed of the jitter generator. Deterministic by design: tests (and
    /// bug reports) replay the same backoff schedule.
    pub seed: u64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            client: ClientOptions::default(),
            reconnect_attempts: 3,
            backoff_base: Duration::from_millis(25),
            seed: 0x5742_u64, // arbitrary but fixed
        }
    }
}

/// One shard's endpoints: the primary and its standbys (in fail-over
/// order), the currently active index, the cached connection, and the
/// highest replication epoch observed for this shard.
struct RouterShard {
    /// `addrs[0]` is the primary; the rest are standbys in `+` order.
    addrs: Vec<String>,
    active: usize,
    options: RouterOptions,
    client: Option<Client>,
    /// The epoch stamped on requests to this shard. Starts at the ring
    /// epoch; raised (never lowered) when a standby reports a higher one.
    epoch: u64,
    rng: StdRng,
}

impl RouterShard {
    fn ensure(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect_with(
                self.addrs[self.active].as_str(),
                self.options.client,
            )?);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    fn try_active<R>(
        &mut self,
        call: &mut impl FnMut(&mut Client, u64) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let epoch = self.epoch;
        let result = self.ensure().and_then(|client| call(client, epoch));
        if matches!(
            result,
            Err(ClientError::Io(_) | ClientError::Timeout { .. })
        ) {
            self.client = None; // never reuse a failed connection
        }
        result
    }

    /// One jittered exponential-backoff sleep: `base × 2ⁿ` plus up to half
    /// that again, from the seeded generator.
    fn backoff(&mut self, attempt: u32) {
        let base = self.options.backoff_base.as_micros() as u64;
        let step = base.saturating_mul(1 << attempt.min(8));
        let jitter = self.rng.gen_range(0..step.max(2) / 2 + 1);
        thread::sleep(Duration::from_micros(step + jitter));
    }

    /// Best-effort epoch refresh after landing on a new address: read the
    /// replication block of the peer's status and adopt its epoch if — and
    /// only if — it is *higher* than what we stamp now. Never adopting a
    /// lower epoch is the fail-over safety property: a resurrected old
    /// leader cannot talk the router back onto its stale epoch.
    fn refresh_epoch(&mut self) {
        let Some(client) = self.client.as_mut() else {
            return;
        };
        let status = Json::obj(vec![("op", Json::str("status"))]);
        let Ok(response) = client.call(&status) else {
            return;
        };
        let peer = response
            .result()
            .and_then(|result| result.get("replication"))
            .and_then(|repl| repl.get("epoch"))
            .and_then(Json::as_int)
            .map(|epoch| epoch as u64);
        if let Some(peer) = peer {
            if peer > self.epoch {
                self.epoch = peer;
            }
        }
    }

    /// Runs `call` over this shard's connection, riding out restarts and
    /// leader death. The closure receives the epoch to stamp (it may
    /// change across attempts as fail-over adopts a promoted standby's
    /// epoch). The ladder:
    ///
    /// 1. the active address, reusing the cached connection;
    /// 2. on a connection-level failure: bounded reconnect attempts
    ///    against the same address, with jittered exponential backoff
    ///    (a restarting shard comes back mid-ladder);
    /// 3. on exhaustion — or immediately on a timeout, which marks a
    ///    wedged rather than restarting peer — the standbys in order,
    ///    refreshing the stamp epoch from each one that accepts a
    ///    connection.
    ///
    /// Server-side refusals (`not_leader`, plain errors) are returned
    /// as-is: the connection is healthy, the answer is the answer. The one
    /// exception is a `wrong_shard` refusal carrying a *higher* epoch —
    /// the peer was promoted while we were connected (auto-promotion with
    /// no fail-over in between) — which is adopted and retried once.
    fn call<R>(
        &mut self,
        mut call: impl FnMut(&mut Client, u64) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let mut result = self.call_with_failover(&mut call);
        if let Err(ClientError::WrongShard { detail, .. }) = &result {
            if detail.epoch > self.epoch {
                self.epoch = detail.epoch;
                result = self.call_with_failover(&mut call);
            }
        }
        result
    }

    fn call_with_failover<R>(
        &mut self,
        call: &mut impl FnMut(&mut Client, u64) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let mut result = self.try_active(call);
        if let Err(ClientError::Io(_)) = result {
            for attempt in 0..self.options.reconnect_attempts {
                self.backoff(attempt);
                result = self.try_active(call);
                if !matches!(result, Err(ClientError::Io(_))) {
                    break;
                }
            }
        }
        if matches!(
            result,
            Err(ClientError::Io(_) | ClientError::Timeout { .. })
        ) && self.addrs.len() > 1
        {
            let previous = self.active;
            for step in 1..self.addrs.len() {
                self.active = (previous + step) % self.addrs.len();
                self.client = None;
                if self.ensure().is_err() {
                    continue;
                }
                self.refresh_epoch();
                result = self.try_active(call);
                if !matches!(
                    result,
                    Err(ClientError::Io(_) | ClientError::Timeout { .. })
                ) {
                    return result;
                }
            }
            // Nobody answered: settle back on the primary for next time.
            self.active = previous;
            self.client = None;
        }
        result
    }
}

/// One shard's contribution to a split batch: the original request indices
/// of its sub-batch, and the per-element outcomes (or the shard-wide
/// failure that befell all of them).
type ShardBatchOutcome = (
    Vec<usize>,
    Result<Vec<Result<Response, String>>, ClientError>,
);

/// A connection-per-shard client routing requests across a cluster by
/// consistent hash, with standby fail-over. See the module documentation.
pub struct Router {
    shards: Vec<RouterShard>,
    ring: ShardRing,
}

/// Splits one cluster-list entry into its primary and standbys.
fn split_endpoints(entry: &str) -> Vec<String> {
    entry
        .split('+')
        .map(str::trim)
        .filter(|addr| !addr.is_empty())
        .map(str::to_owned)
        .collect()
}

impl Router {
    /// Connects to every shard of a cluster with default options. The
    /// address *order defines the shard ids*: `addrs[i]` must be the server
    /// started with `--shard i/n`. Each entry may name standbys after `+`
    /// (`"host:port+standby:port"`); the router fails over to them in
    /// order when the primary is unreachable.
    pub fn connect<A: AsRef<str>>(addrs: &[A]) -> Result<Self, ClientError> {
        Self::connect_with(addrs, RouterOptions::default())
    }

    /// Connects with explicit options. Fails fast: every shard must have
    /// at least one reachable endpoint at construction time.
    pub fn connect_with<A: AsRef<str>>(
        addrs: &[A],
        options: RouterOptions,
    ) -> Result<Self, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard address",
            )));
        }
        let ring = ShardRing::new(addrs.len() as u32);
        let mut shards = Vec::with_capacity(addrs.len());
        for (index, entry) in addrs.iter().enumerate() {
            let endpoints = split_endpoints(entry.as_ref());
            if endpoints.is_empty() {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("shard {index} has no address"),
                )));
            }
            let mut shard = RouterShard {
                addrs: endpoints,
                active: 0,
                options,
                client: None,
                epoch: ring.epoch(),
                rng: StdRng::seed_from_u64(options.seed ^ index as u64),
            };
            // Any endpoint will do to come up: a cluster whose primary
            // died before the router even started still routes (reads now,
            // writes once the standby is promoted).
            let mut connected = Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "unreachable",
            )));
            for candidate in 0..shard.addrs.len() {
                shard.active = candidate;
                match shard.ensure() {
                    Ok(_) => {
                        connected = Ok(());
                        break;
                    }
                    Err(err) => connected = Err(err),
                }
            }
            connected?;
            // Unconditionally, not just for standbys: the *primary* may
            // itself be a previously-promoted server running a higher
            // epoch than the bare ring's (a router started after a
            // fail-over must not stamp the stale base epoch forever).
            shard.refresh_epoch();
            shards.push(shard);
        }
        Ok(Router { shards, ring })
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> u32 {
        self.ring.count()
    }

    /// The currently active address of every shard, in shard-id order.
    pub fn addrs(&self) -> Vec<&str> {
        self.shards
            .iter()
            .map(|shard| shard.addrs[shard.active].as_str())
            .collect()
    }

    /// The ring this router routes by.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// The replication epoch currently stamped on requests to `shard`.
    pub fn shard_epoch(&self, shard: u32) -> u64 {
        self.shards[shard as usize].epoch
    }

    /// The shard owning a solve request's cache key.
    pub fn shard_of(&self, request: &SolveRequest) -> u32 {
        self.ring.route(request.cache_key().view)
    }

    /// Routes one solve request to the shard owning its key.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<Response, ClientError> {
        let shard = self.shard_of(request);
        self.shards[shard as usize].call(|client, epoch| {
            let mut stamped = request.clone();
            stamped.routing = Some(ShardStamp { shard, epoch });
            client.call(&stamped.to_json())
        })
    }

    /// Applies (or replaces) the routing stamp on a raw request object.
    fn stamp_value(value: &Json, shard: u32, epoch: u64) -> Json {
        let mut stamped = value.clone();
        if let Json::Obj(members) = &mut stamped {
            members.retain(|(name, _)| name != "shard" && name != "epoch");
            members.push(("shard".to_owned(), Json::Int(i64::from(shard))));
            members.push(("epoch".to_owned(), Json::Int(epoch as i64)));
        }
        stamped
    }

    /// Which shard a raw request object routes to: solve requests go to
    /// their key's owner; control ops and undecodable elements go to shard
    /// 0 (any shard can answer or refuse them). Solve requests are flagged
    /// for stamping at dispatch time (the epoch may change mid-call as
    /// fail-over adopts a promoted standby's).
    fn route_value(&self, value: &Json) -> (u32, bool) {
        if let Ok(Request::Solve(solve)) = protocol::decode_request_value(value) {
            (self.ring.route(solve.cache_key().view), true)
        } else {
            (0, false)
        }
    }

    /// Splits a batch of raw request objects into per-shard sub-batches and
    /// drives them (see [`Router::solve_batch`] for the typed, cheaper
    /// path: raw objects must be decoded here just to find their key).
    pub fn call_batch(
        &mut self,
        requests: &[Json],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let mut groups: Vec<Vec<(usize, Json, bool)>> = vec![Vec::new(); self.shards.len()];
        for (idx, value) in requests.iter().enumerate() {
            let (shard, stamp) = self.route_value(value);
            groups[shard as usize].push((idx, value.clone(), stamp));
        }
        Ok(self.dispatch_groups(requests.len(), groups))
    }

    /// Routes many solve requests as per-shard batch envelopes. Typed
    /// requests route without re-decoding: the key comes from
    /// [`SolveRequest::cache_key`] and the stamp is appended to the
    /// serialized object at dispatch time.
    pub fn solve_batch(
        &mut self,
        requests: &[SolveRequest],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let mut groups: Vec<Vec<(usize, Json, bool)>> = vec![Vec::new(); self.shards.len()];
        for (idx, request) in requests.iter().enumerate() {
            let shard = self.shard_of(request);
            groups[shard as usize].push((idx, request.to_json(), true));
        }
        Ok(self.dispatch_groups(requests.len(), groups))
    }

    /// Drives per-shard sub-batches concurrently (one thread per shard
    /// with traffic) and merges the per-element outcomes back into request
    /// order. An unreachable shard turns *its* elements into `Err`s; the
    /// other shards' elements are unaffected — and a shard whose leader
    /// died mid-batch retries against its standby without the other
    /// shards noticing.
    fn dispatch_groups(
        &mut self,
        total: usize,
        groups: Vec<Vec<(usize, Json, bool)>>,
    ) -> Vec<Result<Response, String>> {
        let mut slots: Vec<Option<Result<Response, String>>> = (0..total).map(|_| None).collect();
        let outcomes: Vec<ShardBatchOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .zip(groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|((shard_id, shard), group)| {
                    scope.spawn(move || {
                        let indices: Vec<usize> = group.iter().map(|(idx, _, _)| *idx).collect();
                        let outcome = shard.call(|client, epoch| {
                            let values: Vec<Json> = group
                                .iter()
                                .map(|(_, value, stamp)| {
                                    if *stamp {
                                        Router::stamp_value(value, shard_id as u32, epoch)
                                    } else {
                                        value.clone()
                                    }
                                })
                                .collect();
                            client.call_batch(&values)
                        });
                        (indices, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("router shard thread"))
                .collect()
        });

        for (indices, outcome) in outcomes {
            match outcome {
                Ok(elements) => {
                    for (idx, element) in indices.into_iter().zip(elements) {
                        slots[idx] = Some(element);
                    }
                }
                Err(err) => {
                    let message = err.to_string();
                    for idx in indices {
                        slots[idx] = Some(Err(message.clone()));
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every element was routed"))
            .collect()
    }

    /// Fetches every shard's counter snapshot, in shard-id order. Per-shard
    /// failures are reported in place — a down shard must not hide the
    /// others' counters.
    pub fn status_all(&mut self) -> Vec<Result<Response, ClientError>> {
        let status = Json::obj(vec![("op", Json::str("status"))]);
        self.shards
            .iter_mut()
            .map(|shard| shard.call(|client, _| client.call(&status)))
            .collect()
    }

    /// Dumps every shard's flight recorder, in shard-id order. Like
    /// [`Self::status_all`], per-shard failures are reported in place.
    pub fn trace_all(
        &mut self,
        slow_only: bool,
        tenant: Option<&str>,
    ) -> Vec<Result<Response, ClientError>> {
        self.shards
            .iter_mut()
            .map(|shard| shard.call(|client, _| client.trace(slow_only, tenant)))
            .collect()
    }

    /// Asks every shard to shut down, returning the first failure (after
    /// attempting all of them).
    pub fn shutdown_all(&mut self) -> Result<(), ClientError> {
        let shutdown = Json::obj(vec![("op", Json::str("shutdown"))]);
        let mut first_failure = None;
        for shard in &mut self.shards {
            if let Err(err) = shard.call(|client, _| client.call(&shutdown)) {
                first_failure.get_or_insert(err);
            }
        }
        match first_failure {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_entries_split_into_primary_and_standbys() {
        assert_eq!(split_endpoints("a:1"), vec!["a:1"]);
        assert_eq!(split_endpoints("a:1+b:2"), vec!["a:1", "b:2"]);
        assert_eq!(
            split_endpoints(" a:1 + b:2 + c:3 "),
            vec!["a:1", "b:2", "c:3"]
        );
        assert!(split_endpoints("++").is_empty());
    }

    #[test]
    fn default_router_options_bound_the_retry_budget() {
        let options = RouterOptions::default();
        // Worst case: 25 + 50 + 100 ms base plus ≤ 50% jitter each — keep
        // the full reconnect ladder well under a second so a dead shard
        // fails over promptly.
        let base = options.backoff_base.as_millis() as u64;
        let worst: u64 = (0..options.reconnect_attempts)
            .map(|n| base * (1 << n) * 3 / 2)
            .sum();
        assert!(worst < 1000, "reconnect ladder too slow: {worst} ms");
    }

    #[test]
    fn jitter_is_reproducible_for_a_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let draws_a: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(draws_a, draws_b);
    }
}
