//! Shard-aware client routing: one connection per shard, requests routed
//! by consistent hash of their cache key.
//!
//! The client stack is two layers. [`Client`](crate::client::Client) is the
//! transport: one socket, one line each way, deadlines on every operation.
//! [`Router`] sits above it and owns one transport per shard of a cluster,
//! derives the same [`ShardRing`] every server derives (the ring is a pure
//! function of the shard count — no coordination service), and:
//!
//! * routes [`Router::solve`] to the shard owning the request's
//!   `CacheKey.view`, stamping the request with the shard id and ring
//!   epoch so the server can verify both sides agree,
//! * splits [`Router::call_batch`] into per-shard sub-batches, drives them
//!   **concurrently** (one thread per shard with traffic), and merges the
//!   responses back into request order — a failed element, or a whole
//!   unreachable shard, yields `Err` elements without poisoning the rest,
//! * reconnects once, transparently, when a cached connection turns out
//!   dead (the shard restarted between calls); timeouts are *not* retried
//!   — a wedged shard fails fast (see
//!   [`ClientError::Timeout`](crate::client::ClientError)).
//!
//! Because duplicate keys converge on one shard, the server's per-process
//! single-flight and result cache keep working unchanged: the cluster
//! needs no cross-process coordination at all.

use std::thread;

use strudel_core::wire::{ShardRing, ShardStamp};

use crate::client::{Client, ClientError, ClientOptions, Response};
use crate::json::Json;
use crate::protocol::{self, Request, SolveRequest};

/// One shard's endpoint: its address, the deadlines to dial it with, and
/// the cached connection (re-established on demand).
struct RouterShard {
    addr: String,
    options: ClientOptions,
    client: Option<Client>,
}

impl RouterShard {
    fn ensure(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            self.client = Some(Client::connect_with(self.addr.as_str(), self.options)?);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Runs `call` over this shard's connection. A connection-level failure
    /// on a *reused* connection triggers one reconnect-and-retry (the shard
    /// may simply have restarted since the last call); a failure on a fresh
    /// connection, or a timeout, is returned as-is — the shard is down or
    /// wedged, and the caller should know promptly. Either way a failed
    /// connection is dropped, never reused.
    fn call<R>(
        &mut self,
        mut call: impl FnMut(&mut Client) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let reused = self.client.is_some();
        let mut result = self.ensure().and_then(&mut call);
        if reused && matches!(result, Err(ClientError::Io(_))) {
            self.client = None;
            result = self.ensure().and_then(&mut call);
        }
        if matches!(
            result,
            Err(ClientError::Io(_) | ClientError::Timeout { .. })
        ) {
            self.client = None;
        }
        result
    }
}

/// One shard's contribution to a split batch: the original request indices
/// of its sub-batch, and the per-element outcomes (or the shard-wide
/// failure that befell all of them).
type ShardBatchOutcome = (
    Vec<usize>,
    Result<Vec<Result<Response, String>>, ClientError>,
);

/// A connection-per-shard client routing requests across a cluster by
/// consistent hash. See the module documentation.
pub struct Router {
    shards: Vec<RouterShard>,
    ring: ShardRing,
}

impl Router {
    /// Connects to every shard of a cluster with default deadlines. The
    /// address *order defines the shard ids*: `addrs[i]` must be the server
    /// started with `--shard i/n`.
    pub fn connect<A: AsRef<str>>(addrs: &[A]) -> Result<Self, ClientError> {
        Self::connect_with(addrs, ClientOptions::default())
    }

    /// Connects with explicit deadlines. Fails fast: every shard must be
    /// reachable at construction time.
    pub fn connect_with<A: AsRef<str>>(
        addrs: &[A],
        options: ClientOptions,
    ) -> Result<Self, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard address",
            )));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut shard = RouterShard {
                addr: addr.as_ref().to_owned(),
                options,
                client: None,
            };
            shard.ensure()?;
            shards.push(shard);
        }
        let ring = ShardRing::new(shards.len() as u32);
        Ok(Router { shards, ring })
    }

    /// Number of shards in the cluster.
    pub fn shard_count(&self) -> u32 {
        self.ring.count()
    }

    /// The shard addresses, in shard-id order.
    pub fn addrs(&self) -> Vec<&str> {
        self.shards
            .iter()
            .map(|shard| shard.addr.as_str())
            .collect()
    }

    /// The ring this router routes by.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// The shard owning a solve request's cache key.
    pub fn shard_of(&self, request: &SolveRequest) -> u32 {
        self.ring.route(request.cache_key().view)
    }

    fn stamp(&self, shard: u32) -> ShardStamp {
        ShardStamp {
            shard,
            epoch: self.ring.epoch(),
        }
    }

    /// Routes one solve request to the shard owning its key.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<Response, ClientError> {
        let shard = self.shard_of(request);
        let mut stamped = request.clone();
        stamped.routing = Some(self.stamp(shard));
        let value = stamped.to_json();
        self.shards[shard as usize].call(|client| client.call(&value))
    }

    /// Which shard a raw request object routes to: solve requests go to
    /// their key's owner; control ops and undecodable elements go to shard
    /// 0 (any shard can answer or refuse them). Returns the stamped value
    /// alongside.
    fn route_value(&self, value: &Json) -> (u32, Json) {
        if let Ok(Request::Solve(solve)) = protocol::decode_request_value(value) {
            let shard = self.ring.route(solve.cache_key().view);
            let mut stamped = value.clone();
            if let Json::Obj(members) = &mut stamped {
                let stamp = self.stamp(shard);
                members.retain(|(name, _)| name != "shard" && name != "epoch");
                members.push(("shard".to_owned(), Json::Int(i64::from(stamp.shard))));
                members.push(("epoch".to_owned(), Json::Int(stamp.epoch as i64)));
            }
            (shard, stamped)
        } else {
            (0, value.clone())
        }
    }

    /// Splits a batch of raw request objects into per-shard sub-batches and
    /// drives them (see [`Router::solve_batch`] for the typed, cheaper
    /// path: raw objects must be decoded here just to find their key).
    pub fn call_batch(
        &mut self,
        requests: &[Json],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let mut groups: Vec<Vec<(usize, Json)>> = vec![Vec::new(); self.shards.len()];
        for (idx, value) in requests.iter().enumerate() {
            let (shard, stamped) = self.route_value(value);
            groups[shard as usize].push((idx, stamped));
        }
        Ok(self.dispatch_groups(requests.len(), groups))
    }

    /// Routes many solve requests as per-shard batch envelopes. Typed
    /// requests route without re-decoding: the key comes from
    /// [`SolveRequest::cache_key`] and the stamp is appended to the
    /// serialized object directly (the same wire position
    /// [`SolveRequest::to_json`] puts it).
    pub fn solve_batch(
        &mut self,
        requests: &[SolveRequest],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let mut groups: Vec<Vec<(usize, Json)>> = vec![Vec::new(); self.shards.len()];
        for (idx, request) in requests.iter().enumerate() {
            let shard = self.shard_of(request);
            let mut value = request.to_json();
            if let Json::Obj(members) = &mut value {
                let stamp = self.stamp(shard);
                members.retain(|(name, _)| name != "shard" && name != "epoch");
                members.push(("shard".to_owned(), Json::Int(i64::from(stamp.shard))));
                members.push(("epoch".to_owned(), Json::Int(stamp.epoch as i64)));
            }
            groups[shard as usize].push((idx, value));
        }
        Ok(self.dispatch_groups(requests.len(), groups))
    }

    /// Drives per-shard sub-batches concurrently (one thread per shard
    /// with traffic) and merges the per-element outcomes back into request
    /// order. An unreachable shard turns *its* elements into `Err`s; the
    /// other shards' elements are unaffected.
    fn dispatch_groups(
        &mut self,
        total: usize,
        groups: Vec<Vec<(usize, Json)>>,
    ) -> Vec<Result<Response, String>> {
        let mut slots: Vec<Option<Result<Response, String>>> = (0..total).map(|_| None).collect();
        let outcomes: Vec<ShardBatchOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(shard, group)| {
                    scope.spawn(move || {
                        let (indices, values): (Vec<usize>, Vec<Json>) = group.into_iter().unzip();
                        let outcome = shard.call(|client| client.call_batch(&values));
                        (indices, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("router shard thread"))
                .collect()
        });

        for (indices, outcome) in outcomes {
            match outcome {
                Ok(elements) => {
                    for (idx, element) in indices.into_iter().zip(elements) {
                        slots[idx] = Some(element);
                    }
                }
                Err(err) => {
                    let message = err.to_string();
                    for idx in indices {
                        slots[idx] = Some(Err(message.clone()));
                    }
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every element was routed"))
            .collect()
    }

    /// Fetches every shard's counter snapshot, in shard-id order. Per-shard
    /// failures are reported in place — a down shard must not hide the
    /// others' counters.
    pub fn status_all(&mut self) -> Vec<Result<Response, ClientError>> {
        let status = Json::obj(vec![("op", Json::str("status"))]);
        self.shards
            .iter_mut()
            .map(|shard| shard.call(|client| client.call(&status)))
            .collect()
    }

    /// Asks every shard to shut down, returning the first failure (after
    /// attempting all of them).
    pub fn shutdown_all(&mut self) -> Result<(), ClientError> {
        let shutdown = Json::obj(vec![("op", Json::str("shutdown"))]);
        let mut first_failure = None;
        for shard in &mut self.shards {
            if let Err(err) = shard.call(|client| client.call(&shutdown)) {
                first_failure.get_or_insert(err);
            }
        }
        match first_failure {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }
}
