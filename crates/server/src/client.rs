//! A blocking client for the refinement service.
//!
//! One TCP connection, one JSON line per request, one per response — or
//! many requests per line via [`Client::call_batch`], which ships a batch
//! envelope and returns per-element outcomes in request order. The client
//! keeps the raw response line around so callers can check the
//! byte-identity guarantees of the cache (see the integration tests), and
//! offers typed accessors over the parsed value for everyone else.

use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use strudel_core::wire::{NotLeader, OverQuota, WireEnvelope, WrongShard};

use crate::json::{self, Json};
use crate::protocol::{self, SolveRequest, Source};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// A deadline expired: the peer did not accept, answer, or drain in
    /// time. Distinct from [`ClientError::Io`] so a router can fail fast
    /// over a wedged shard without mistaking it for a dead connection.
    Timeout {
        /// Which operation timed out (`connect`, `read`, `write`).
        what: &'static str,
        /// The deadline that expired.
        after: Duration,
    },
    /// The server's response was not valid protocol JSON.
    BadResponse(String),
    /// The server answered with an error response.
    Server(String),
    /// The server refused the request because it does not own the key —
    /// the structured `wrong_shard` error, with enough detail to re-route.
    WrongShard {
        /// The server's human-readable message.
        message: String,
        /// The shard/owner/epoch triple from the response.
        detail: WrongShard,
    },
    /// The server is an unpromoted replication follower and refused a
    /// write — the structured `not_leader` error, naming the leader.
    NotLeader {
        /// The server's human-readable message.
        message: String,
        /// The leader's address, for redirecting.
        detail: NotLeader,
    },
    /// The server refused the request because its tenant is over quota
    /// (admission rate or compute-pool share) — the structured
    /// `over_quota` error, with a deterministic retry hint. A
    /// request-level refusal, not a connection failure: the socket stays
    /// usable and a retry after `detail.retry_after_ms` is expected to
    /// be admitted.
    OverQuota {
        /// The server's human-readable message.
        message: String,
        /// The refused tenant and the suggested back-off.
        detail: OverQuota,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::Timeout { what, after } => {
                write!(f, "{what} timed out after {after:?}")
            }
            ClientError::BadResponse(what) => write!(f, "malformed response: {what}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::WrongShard { message, detail } => write!(
                f,
                "wrong shard: {message} (sent to shard {}, owner is shard {}, server epoch {})",
                detail.shard, detail.owner, detail.epoch
            ),
            ClientError::NotLeader { message, detail } => {
                write!(f, "not the leader: {message} (leader is {})", detail.leader)
            }
            ClientError::OverQuota { message, detail } => write!(
                f,
                "over quota: {message} (tenant '{}', retry after {} ms)",
                detail.tenant, detail.retry_after_ms
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Connection deadlines of a [`Client`].
///
/// Every socket operation carries a timeout by default: a dead or wedged
/// peer turns into a [`ClientError::Timeout`] within seconds instead of
/// hanging the caller forever — the property the cluster
/// [`Router`](crate::router::Router) builds its fail-fast behaviour on.
/// `None` disables the respective deadline (block indefinitely).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientOptions {
    /// Deadline for establishing the TCP connection (default 3 s).
    pub connect_timeout: Option<Duration>,
    /// Deadline for each response read (default 30 s — a cold ILP solve on
    /// a large view legitimately takes a while; lower it for control-plane
    /// traffic, and use [`ClientOptions::no_deadlines`] — or an explicit
    /// `None` — for solves that may legitimately run longer than this).
    pub read_timeout: Option<Duration>,
    /// Deadline for each request write (default 10 s).
    pub write_timeout: Option<Duration>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(3)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl ClientOptions {
    /// No deadlines at all — the pre-cluster blocking behaviour, for
    /// callers whose solves may legitimately outlast any fixed timeout
    /// (e.g. un-capped ILP searches on large views).
    pub fn no_deadlines() -> Self {
        ClientOptions {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
        }
    }
}

/// Whether an I/O error is a timeout expiring. Unix surfaces an expired
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`, Windows as `TimedOut`.
fn is_timeout(err: &std::io::Error) -> bool {
    matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// A successful response, with both the raw line and the parsed value.
#[derive(Clone, Debug)]
pub struct Response {
    /// The exact line the server sent (no trailing newline).
    pub raw: String,
    /// The parsed response object.
    pub value: Json,
}

impl Response {
    /// Where the result came from (`solved`, `cache`, or `coalesced`).
    pub fn source(&self) -> Option<Source> {
        self.value
            .get("source")
            .and_then(Json::as_str)
            .and_then(Source::parse)
    }

    /// The result object.
    pub fn result(&self) -> Option<&Json> {
        self.value.get("result")
    }

    /// The exact bytes of the `result` field as the server sent them.
    ///
    /// The success envelope is `{"ok":true,"op":…,"source":…,"result":…}`
    /// with the result spliced in last, so everything after the first
    /// `"result":` marker (minus the closing `}`) is the result text
    /// verbatim. This is what the byte-identical cache-replay guarantee is
    /// checked against.
    pub fn result_text(&self) -> Option<&str> {
        let start = self.raw.find("\"result\":")? + "\"result\":".len();
        let end = self.raw.len().checked_sub(1)?; // trailing '}'
        self.raw.get(start..end)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    options: ClientOptions,
    /// Set once a deadline expires mid-conversation: the wire is desynced
    /// (the late response is still in flight), so every later call must
    /// fail until the caller reconnects — silently reading the previous
    /// request's answer would be far worse than an error.
    poisoned: bool,
}

impl Client {
    /// Connects to a server address (`host:port`) with the default
    /// deadlines (see [`ClientOptions`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit deadlines.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<Self, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(&addr)?,
            Some(deadline) => {
                // `connect_timeout` wants resolved addresses; try each in
                // turn and keep the most recent failure.
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(connected) => {
                            stream = Some(connected);
                            break;
                        }
                        Err(err) => last = Some(err),
                    }
                }
                match stream {
                    Some(stream) => stream,
                    None => {
                        let err = last.unwrap_or_else(|| {
                            std::io::Error::new(
                                ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        });
                        return Err(if is_timeout(&err) {
                            ClientError::Timeout {
                                what: "connect",
                                after: deadline,
                            }
                        } else {
                            ClientError::Io(err)
                        });
                    }
                }
            }
        };
        // See the server side: request/response lines are tiny, and Nagle +
        // delayed ACK would throttle the round trip to ~25/s.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            options,
            poisoned: false,
        })
    }

    /// The deadlines this client was connected with.
    pub fn options(&self) -> ClientOptions {
        self.options
    }

    fn write_deadline_error(&mut self, err: std::io::Error) -> ClientError {
        if is_timeout(&err) {
            self.poisoned = true; // a partial write may be on the wire
            ClientError::Timeout {
                what: "write",
                after: self.options.write_timeout.unwrap_or_default(),
            }
        } else {
            ClientError::Io(err)
        }
    }

    fn read_deadline_error(&mut self, err: std::io::Error) -> ClientError {
        if is_timeout(&err) {
            self.poisoned = true; // the late response is still in flight
            ClientError::Timeout {
                what: "read",
                after: self.options.read_timeout.unwrap_or_default(),
            }
        } else {
            ClientError::Io(err)
        }
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn call_raw(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        if self.poisoned {
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "connection is desynced after an earlier timeout; reconnect",
            )));
        }
        let written = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        if let Err(err) = written {
            return Err(self.write_deadline_error(err));
        }
        let mut response = String::new();
        let read = match self.reader.read_line(&mut response) {
            Ok(read) => read,
            Err(err) => return Err(self.read_deadline_error(err)),
        };
        if read == 0 {
            // An EOF mid-conversation is a connection-level failure (the
            // peer restarted or died); routers reconnect on it.
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a request value and decodes the response envelope, turning
    /// server-side errors into [`ClientError::Server`] (or
    /// [`ClientError::WrongShard`] when the error carries the structured
    /// shard-routing detail).
    pub fn call(&mut self, request: &Json) -> Result<Response, ClientError> {
        let raw = self.call_raw(&request.to_text())?;
        let value = json::parse(&raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(Response { raw, value }),
            Some(false) => {
                let message = value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned();
                Err(match protocol::wrong_shard_from_json(&value) {
                    Some(detail) => ClientError::WrongShard { message, detail },
                    None => match protocol::not_leader_from_json(&value) {
                        Some(detail) => ClientError::NotLeader { message, detail },
                        None => match protocol::over_quota_from_json(&value) {
                            Some(detail) => ClientError::OverQuota { message, detail },
                            None => ClientError::Server(message),
                        },
                    },
                })
            }
            None => Err(ClientError::BadResponse(format!(
                "response lacks an 'ok' field: {raw}"
            ))),
        }
    }

    /// Runs a solve request.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<Response, ClientError> {
        self.call(&request.to_json())
    }

    /// Sends many requests as one batch envelope and returns the
    /// per-element outcomes in request order: `Ok` with the element's
    /// response, or `Err` with the server's per-element error message.
    ///
    /// The whole batch costs one request line and one response line; each
    /// element's `raw` is recovered by canonical re-serialization, which is
    /// byte-faithful because the protocol serializer is deterministic.
    pub fn call_batch(
        &mut self,
        requests: &[Json],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let raw = self.call_raw(&protocol::encode_batch_request(requests))?;
        let value = json::parse(&raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        let envelope = protocol::envelope_from_json(&value)
            .map_err(|err| ClientError::BadResponse(err.message))?;
        match envelope {
            WireEnvelope::Error { message, .. } => Err(ClientError::Server(message)),
            WireEnvelope::Success { .. } => Err(ClientError::BadResponse(
                "expected a batch response envelope".to_owned(),
            )),
            WireEnvelope::Batch { .. } => {
                let results = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ClientError::BadResponse("batch lacks 'results'".to_owned()))?;
                if results.len() != requests.len() {
                    return Err(ClientError::BadResponse(format!(
                        "batch of {} requests got {} results",
                        requests.len(),
                        results.len()
                    )));
                }
                Ok(results
                    .iter()
                    .map(|element| match element.get("ok").and_then(Json::as_bool) {
                        Some(true) => Ok(Response {
                            raw: element.to_text(),
                            value: element.clone(),
                        }),
                        _ => Err(element
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified server error")
                            .to_owned()),
                    })
                    .collect())
            }
        }
    }

    /// Sends many solve requests as one batch envelope.
    pub fn solve_batch(
        &mut self,
        requests: &[SolveRequest],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let values: Vec<Json> = requests.iter().map(SolveRequest::to_json).collect();
        self.call_batch(&values)
    }

    /// Fetches the server's counter snapshot.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("status"))]))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("shutdown"))]))
    }

    /// Asks a replication follower to promote itself to leader (the
    /// `strudel promote` entry point). Fails with
    /// [`ClientError::Server`] on a server that is already the leader.
    pub fn promote(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("promote"))]))
    }
}
