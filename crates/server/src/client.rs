//! A blocking client for the refinement service.
//!
//! One TCP connection, one JSON line per request, one per response — or
//! many requests per line via [`Client::call_batch`], which ships a batch
//! envelope and returns per-element outcomes in request order. The client
//! keeps the raw response line around so callers can check the
//! byte-identity guarantees of the cache (see the integration tests), and
//! offers typed accessors over the parsed value for everyone else.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use strudel_core::wire::WireEnvelope;

use crate::json::{self, Json};
use crate::protocol::{self, SolveRequest, Source};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server's response was not valid protocol JSON.
    BadResponse(String),
    /// The server answered with an error response.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::BadResponse(what) => write!(f, "malformed response: {what}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// A successful response, with both the raw line and the parsed value.
#[derive(Clone, Debug)]
pub struct Response {
    /// The exact line the server sent (no trailing newline).
    pub raw: String,
    /// The parsed response object.
    pub value: Json,
}

impl Response {
    /// Where the result came from (`solved`, `cache`, or `coalesced`).
    pub fn source(&self) -> Option<Source> {
        self.value
            .get("source")
            .and_then(Json::as_str)
            .and_then(Source::parse)
    }

    /// The result object.
    pub fn result(&self) -> Option<&Json> {
        self.value.get("result")
    }

    /// The exact bytes of the `result` field as the server sent them.
    ///
    /// The success envelope is `{"ok":true,"op":…,"source":…,"result":…}`
    /// with the result spliced in last, so everything after the first
    /// `"result":` marker (minus the closing `}`) is the result text
    /// verbatim. This is what the byte-identical cache-replay guarantee is
    /// checked against.
    pub fn result_text(&self) -> Option<&str> {
        let start = self.raw.find("\"result\":")? + "\"result\":".len();
        let end = self.raw.len().checked_sub(1)?; // trailing '}'
        self.raw.get(start..end)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server address (`host:port`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // See the server side: request/response lines are tiny, and Nagle +
        // delayed ACK would throttle the round trip to ~25/s.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn call_raw(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(ClientError::BadResponse(
                "server closed the connection".to_owned(),
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a request value and decodes the response envelope, turning
    /// server-side errors into [`ClientError::Server`].
    pub fn call(&mut self, request: &Json) -> Result<Response, ClientError> {
        let raw = self.call_raw(&request.to_text())?;
        let value = json::parse(&raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(Response { raw, value }),
            Some(false) => Err(ClientError::Server(
                value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned(),
            )),
            None => Err(ClientError::BadResponse(format!(
                "response lacks an 'ok' field: {raw}"
            ))),
        }
    }

    /// Runs a solve request.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<Response, ClientError> {
        self.call(&request.to_json())
    }

    /// Sends many requests as one batch envelope and returns the
    /// per-element outcomes in request order: `Ok` with the element's
    /// response, or `Err` with the server's per-element error message.
    ///
    /// The whole batch costs one request line and one response line; each
    /// element's `raw` is recovered by canonical re-serialization, which is
    /// byte-faithful because the protocol serializer is deterministic.
    pub fn call_batch(
        &mut self,
        requests: &[Json],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let raw = self.call_raw(&protocol::encode_batch_request(requests))?;
        let value = json::parse(&raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        let envelope = protocol::envelope_from_json(&value)
            .map_err(|err| ClientError::BadResponse(err.message))?;
        match envelope {
            WireEnvelope::Error { message } => Err(ClientError::Server(message)),
            WireEnvelope::Success { .. } => Err(ClientError::BadResponse(
                "expected a batch response envelope".to_owned(),
            )),
            WireEnvelope::Batch { .. } => {
                let results = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ClientError::BadResponse("batch lacks 'results'".to_owned()))?;
                if results.len() != requests.len() {
                    return Err(ClientError::BadResponse(format!(
                        "batch of {} requests got {} results",
                        requests.len(),
                        results.len()
                    )));
                }
                Ok(results
                    .iter()
                    .map(|element| match element.get("ok").and_then(Json::as_bool) {
                        Some(true) => Ok(Response {
                            raw: element.to_text(),
                            value: element.clone(),
                        }),
                        _ => Err(element
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified server error")
                            .to_owned()),
                    })
                    .collect())
            }
        }
    }

    /// Sends many solve requests as one batch envelope.
    pub fn solve_batch(
        &mut self,
        requests: &[SolveRequest],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let values: Vec<Json> = requests.iter().map(SolveRequest::to_json).collect();
        self.call_batch(&values)
    }

    /// Fetches the server's counter snapshot.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("status"))]))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("shutdown"))]))
    }
}
