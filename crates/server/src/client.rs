//! A blocking client for the refinement service.
//!
//! One TCP connection, one JSON line per request, one per response — or
//! many requests per line via [`Client::call_batch`], which ships a batch
//! envelope and returns per-element outcomes in request order. The client
//! keeps the raw response line around so callers can check the
//! byte-identity guarantees of the cache (see the integration tests), and
//! offers typed accessors over the parsed value for everyone else.

use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use strudel_core::wire::{NotLeader, OverQuota, WireEnvelope, WrongShard};

use crate::json::{self, Json};
use crate::protocol::{self, FrameKind, Framing, SolveRequest, Source, FRAME_MAGIC};

/// The largest response frame the client will buffer — matches the
/// server's own output-buffer cap, so anything larger is a protocol
/// violation, not a legitimate response.
const MAX_RESPONSE_FRAME: usize = 64 * 1024 * 1024;

/// Which wire framing a [`Client`] should speak (see
/// [`Framing`] for the on-the-wire details).
///
/// Resolution order: an explicit [`ClientOptions::framing`] wins; otherwise
/// the `STRUDEL_FRAMING` environment variable (`json`, `bin`, or `auto`) is
/// consulted — the hook the e2e suites use to re-run unmodified over the
/// binary framing — and absent both, the client speaks line-JSON, keeping
/// default behaviour byte-identical to pre-framing servers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FramingMode {
    /// Line-delimited JSON, no negotiation (the default).
    Json,
    /// Negotiate `bin1` and fail the first call if the server refuses.
    Bin1,
    /// Negotiate `bin1` but fall back to line-JSON if the server refuses
    /// (or predates the framing) — for mixed-version fleets.
    Auto,
}

impl FramingMode {
    /// Parses a mode name as accepted by `--framing` and `STRUDEL_FRAMING`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "json" => Ok(FramingMode::Json),
            "bin" | "bin1" => Ok(FramingMode::Bin1),
            "auto" => Ok(FramingMode::Auto),
            other => Err(format!(
                "unknown framing '{other}' (expected json, bin, or auto)"
            )),
        }
    }

    /// Resolves the mode to use: the explicit choice if given, else the
    /// `STRUDEL_FRAMING` environment variable, else [`FramingMode::Json`].
    pub fn resolve(explicit: Option<FramingMode>) -> Result<FramingMode, String> {
        if let Some(mode) = explicit {
            return Ok(mode);
        }
        match std::env::var("STRUDEL_FRAMING") {
            Ok(value) => {
                FramingMode::parse(value.trim()).map_err(|err| format!("STRUDEL_FRAMING: {err}"))
            }
            Err(_) => Ok(FramingMode::Json),
        }
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// A deadline expired: the peer did not accept, answer, or drain in
    /// time. Distinct from [`ClientError::Io`] so a router can fail fast
    /// over a wedged shard without mistaking it for a dead connection.
    Timeout {
        /// Which operation timed out (`connect`, `read`, `write`).
        what: &'static str,
        /// The deadline that expired.
        after: Duration,
    },
    /// The server's response was not valid protocol JSON.
    BadResponse(String),
    /// The server answered with an error response.
    Server(String),
    /// The server refused the request because it does not own the key —
    /// the structured `wrong_shard` error, with enough detail to re-route.
    WrongShard {
        /// The server's human-readable message.
        message: String,
        /// The shard/owner/epoch triple from the response.
        detail: WrongShard,
    },
    /// The server is an unpromoted replication follower and refused a
    /// write — the structured `not_leader` error, naming the leader.
    NotLeader {
        /// The server's human-readable message.
        message: String,
        /// The leader's address, for redirecting.
        detail: NotLeader,
    },
    /// The server refused the request because its tenant is over quota
    /// (admission rate or compute-pool share) — the structured
    /// `over_quota` error, with a deterministic retry hint. A
    /// request-level refusal, not a connection failure: the socket stays
    /// usable and a retry after `detail.retry_after_ms` is expected to
    /// be admitted.
    OverQuota {
        /// The server's human-readable message.
        message: String,
        /// The refused tenant and the suggested back-off.
        detail: OverQuota,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::Timeout { what, after } => {
                write!(f, "{what} timed out after {after:?}")
            }
            ClientError::BadResponse(what) => write!(f, "malformed response: {what}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::WrongShard { message, detail } => write!(
                f,
                "wrong shard: {message} (sent to shard {}, owner is shard {}, server epoch {})",
                detail.shard, detail.owner, detail.epoch
            ),
            ClientError::NotLeader { message, detail } => {
                write!(f, "not the leader: {message} (leader is {})", detail.leader)
            }
            ClientError::OverQuota { message, detail } => write!(
                f,
                "over quota: {message} (tenant '{}', retry after {} ms)",
                detail.tenant, detail.retry_after_ms
            ),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Connection deadlines of a [`Client`].
///
/// Every socket operation carries a timeout by default: a dead or wedged
/// peer turns into a [`ClientError::Timeout`] within seconds instead of
/// hanging the caller forever — the property the cluster
/// [`Router`](crate::router::Router) builds its fail-fast behaviour on.
/// `None` disables the respective deadline (block indefinitely).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientOptions {
    /// Deadline for establishing the TCP connection (default 3 s).
    pub connect_timeout: Option<Duration>,
    /// Deadline for each response read (default 30 s — a cold ILP solve on
    /// a large view legitimately takes a while; lower it for control-plane
    /// traffic, and use [`ClientOptions::no_deadlines`] — or an explicit
    /// `None` — for solves that may legitimately run longer than this).
    pub read_timeout: Option<Duration>,
    /// Deadline for each request write (default 10 s).
    pub write_timeout: Option<Duration>,
    /// Which wire framing to speak. `None` defers to the `STRUDEL_FRAMING`
    /// environment variable and then to [`FramingMode::Json`] (see
    /// [`FramingMode::resolve`]).
    pub framing: Option<FramingMode>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Some(Duration::from_secs(3)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            framing: None,
        }
    }
}

impl ClientOptions {
    /// No deadlines at all — the pre-cluster blocking behaviour, for
    /// callers whose solves may legitimately outlast any fixed timeout
    /// (e.g. un-capped ILP searches on large views).
    pub fn no_deadlines() -> Self {
        ClientOptions {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            framing: None,
        }
    }
}

/// Whether an I/O error is a timeout expiring. Unix surfaces an expired
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` as `WouldBlock`, Windows as `TimedOut`.
fn is_timeout(err: &std::io::Error) -> bool {
    matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// A successful response, with both the raw line and the parsed value.
#[derive(Clone, Debug)]
pub struct Response {
    /// The exact line the server sent (no trailing newline).
    pub raw: String,
    /// The parsed response object.
    pub value: Json,
}

impl Response {
    /// Where the result came from (`solved`, `cache`, or `coalesced`).
    pub fn source(&self) -> Option<Source> {
        self.value
            .get("source")
            .and_then(Json::as_str)
            .and_then(Source::parse)
    }

    /// The result object.
    pub fn result(&self) -> Option<&Json> {
        self.value.get("result")
    }

    /// The exact bytes of the `result` field as the server sent them.
    ///
    /// The success envelope is `{"ok":true,"op":…,"source":…,"result":…}`
    /// with the result spliced in last, so everything after the first
    /// `"result":` marker (minus the closing `}`) is the result text
    /// verbatim. This is what the byte-identical cache-replay guarantee is
    /// checked against.
    pub fn result_text(&self) -> Option<&str> {
        let start = self.raw.find("\"result\":")? + "\"result\":".len();
        let end = self.raw.len().checked_sub(1)?; // trailing '}'
        self.raw.get(start..end)
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    options: ClientOptions,
    /// Set once a deadline expires mid-conversation: the wire is desynced
    /// (the late response is still in flight), so every later call must
    /// fail until the caller reconnects — silently reading the previous
    /// request's answer would be far worse than an error.
    poisoned: bool,
    /// The framing currently on the wire. Starts as [`Framing::Json`]
    /// (every connection does) and flips to [`Framing::Bin1`] once the
    /// `hello` handshake succeeds.
    framing: Framing,
    /// A deferred `bin1` negotiation, run lazily before the first request
    /// so that `connect` itself never blocks on a wedged peer's reply —
    /// the first *call* carries the timeout, exactly as for any request.
    pending: Option<FramingMode>,
    /// Reassembly buffer for response frames (only used on `bin1`).
    frame_buf: Vec<u8>,
}

impl Client {
    /// Connects to a server address (`host:port`) with the default
    /// deadlines (see [`ClientOptions`]).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit deadlines.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<Self, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(&addr)?,
            Some(deadline) => {
                // `connect_timeout` wants resolved addresses; try each in
                // turn and keep the most recent failure.
                let mut last: Option<std::io::Error> = None;
                let mut stream = None;
                for resolved in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, deadline) {
                        Ok(connected) => {
                            stream = Some(connected);
                            break;
                        }
                        Err(err) => last = Some(err),
                    }
                }
                match stream {
                    Some(stream) => stream,
                    None => {
                        let err = last.unwrap_or_else(|| {
                            std::io::Error::new(
                                ErrorKind::InvalidInput,
                                "address resolved to nothing",
                            )
                        });
                        return Err(if is_timeout(&err) {
                            ClientError::Timeout {
                                what: "connect",
                                after: deadline,
                            }
                        } else {
                            ClientError::Io(err)
                        });
                    }
                }
            }
        };
        // See the server side: request/response lines are tiny, and Nagle +
        // delayed ACK would throttle the round trip to ~25/s.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let writer = stream.try_clone()?;
        let mode = FramingMode::resolve(options.framing)
            .map_err(|err| ClientError::Io(std::io::Error::new(ErrorKind::InvalidInput, err)))?;
        let pending = match mode {
            FramingMode::Json => None,
            FramingMode::Bin1 | FramingMode::Auto => Some(mode),
        };
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            options,
            poisoned: false,
            framing: Framing::Json,
            pending,
            frame_buf: Vec::new(),
        })
    }

    /// The deadlines this client was connected with.
    pub fn options(&self) -> ClientOptions {
        self.options
    }

    /// The framing negotiated on the wire so far. A client in
    /// [`FramingMode::Bin1`]/[`FramingMode::Auto`] reports
    /// [`Framing::Json`] until its first call runs the handshake.
    pub fn framing(&self) -> Framing {
        self.framing
    }

    fn write_deadline_error(&mut self, err: std::io::Error) -> ClientError {
        if is_timeout(&err) {
            self.poisoned = true; // a partial write may be on the wire
            ClientError::Timeout {
                what: "write",
                after: self.options.write_timeout.unwrap_or_default(),
            }
        } else {
            ClientError::Io(err)
        }
    }

    fn read_deadline_error(&mut self, err: std::io::Error) -> ClientError {
        if is_timeout(&err) {
            self.poisoned = true; // the late response is still in flight
            ClientError::Timeout {
                what: "read",
                after: self.options.read_timeout.unwrap_or_default(),
            }
        } else {
            ClientError::Io(err)
        }
    }

    /// Fails fast when an earlier timeout desynced the wire.
    fn check_usable(&self) -> Result<(), ClientError> {
        if self.poisoned {
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "connection is desynced after an earlier timeout; reconnect",
            )));
        }
        Ok(())
    }

    /// Writes one request line (with its newline) to the socket.
    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        let written = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        written.map_err(|err| self.write_deadline_error(err))
    }

    /// Writes one `bin1` request frame around `payload`. The header names
    /// no tenant — the payload's own envelope carries it.
    fn send_payload(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        let mut frame = Vec::with_capacity(payload.len() + 24);
        protocol::encode_frame_into(&mut frame, FrameKind::Request, "", payload);
        let written = self
            .writer
            .write_all(&frame)
            .and_then(|()| self.writer.flush());
        written.map_err(|err| self.write_deadline_error(err))
    }

    /// Reads one response line (line-JSON framing).
    fn read_reply_line(&mut self) -> Result<String, ClientError> {
        let mut response = String::new();
        let read = match self.reader.read_line(&mut response) {
            Ok(read) => read,
            Err(err) => return Err(self.read_deadline_error(err)),
        };
        if read == 0 {
            // An EOF mid-conversation is a connection-level failure (the
            // peer restarted or died); routers reconnect on it.
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }

    /// Reads one `bin1` response frame and returns its payload — the
    /// canonical JSON response line, byte-identical to what the line
    /// framing would have carried.
    fn read_frame_line(&mut self) -> Result<String, ClientError> {
        loop {
            match protocol::try_decode_frame(&self.frame_buf, MAX_RESPONSE_FRAME) {
                Err(message) => {
                    // The length prefix is gone; nothing after this point
                    // can be re-synchronized.
                    self.poisoned = true;
                    return Err(ClientError::BadResponse(format!(
                        "invalid response frame: {message}"
                    )));
                }
                Ok(Some(view)) => {
                    if view.kind != FrameKind::Response {
                        self.poisoned = true;
                        return Err(ClientError::BadResponse(
                            "expected a response frame".to_owned(),
                        ));
                    }
                    let payload = view.payload.to_vec();
                    let consumed = view.consumed;
                    self.frame_buf.drain(..consumed);
                    return String::from_utf8(payload).map_err(|_| {
                        ClientError::BadResponse("response frame payload is not UTF-8".to_owned())
                    });
                }
                Ok(None) => {}
            }
            let taken = match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(chunk) => {
                    self.frame_buf.extend_from_slice(chunk);
                    chunk.len()
                }
                Err(err) => {
                    if err.kind() == ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(self.read_deadline_error(err));
                }
            };
            self.reader.consume(taken);
        }
    }

    /// Blocks until the next reply's first byte is buffered and returns it
    /// without consuming — how the `hello` handshake tells a `bin1` frame
    /// (magic byte) from a JSON line (`{`) before committing to a framing.
    fn peek_reply_byte(&mut self) -> Result<u8, ClientError> {
        loop {
            match self.reader.fill_buf() {
                Ok([]) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(chunk) => return Ok(chunk[0]),
                Err(err) => {
                    if err.kind() == ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(self.read_deadline_error(err));
                }
            }
        }
    }

    /// Runs the deferred `hello` handshake, if one is pending. Called at
    /// the top of every request path so the negotiation round trip rides
    /// on the first call's deadlines.
    fn ensure_negotiated(&mut self) -> Result<(), ClientError> {
        let Some(mode) = self.pending else {
            return Ok(());
        };
        self.negotiate(mode)?;
        self.pending = None;
        Ok(())
    }

    /// Sends `hello {"framing":"bin1"}` and classifies the reply: a frame
    /// means the switch happened; a JSON line means the server declined
    /// (or predates the framing), which [`FramingMode::Auto`] accepts and
    /// [`FramingMode::Bin1`] surfaces as an error.
    fn negotiate(&mut self, mode: FramingMode) -> Result<(), ClientError> {
        self.send_line(&protocol::encode_hello(Framing::Bin1))?;
        if self.peek_reply_byte()? == FRAME_MAGIC[0] {
            // The ack itself travels in the newly negotiated framing.
            self.framing = Framing::Bin1;
            let ack = self.read_frame_line()?;
            let acknowledged = json::parse(&ack)
                .ok()
                .and_then(|value| value.get("ok").and_then(Json::as_bool))
                == Some(true);
            if !acknowledged {
                self.poisoned = true;
                return Err(ClientError::BadResponse(format!(
                    "hello was not acknowledged: {ack}"
                )));
            }
            return Ok(());
        }
        let line = self.read_reply_line()?;
        match mode {
            FramingMode::Auto => Ok(()), // stay on line-JSON
            _ => {
                let message = json::parse(&line)
                    .ok()
                    .and_then(|value| value.get("error").and_then(Json::as_str).map(str::to_owned))
                    .unwrap_or(line);
                Err(ClientError::Server(format!(
                    "bin1 framing was refused: {message}"
                )))
            }
        }
    }

    /// Sends one raw request line and returns the raw response line.
    ///
    /// On a `bin1` connection the line is transcoded into a binary
    /// payload (or shipped as an embedded-JSON payload when it is not a
    /// recognizable request) — the response line returned is byte-identical
    /// either way.
    pub fn call_raw(&mut self, line: &str) -> Result<String, ClientError> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        self.check_usable()?;
        self.ensure_negotiated()?;
        match self.framing {
            Framing::Json => {
                self.send_line(line)?;
                self.read_reply_line()
            }
            Framing::Bin1 => {
                let payload = match json::parse(line) {
                    Ok(value) => encode_value_payload(&value),
                    Err(_) => protocol::encode_json_payload(line),
                };
                self.send_payload(&payload)?;
                self.read_frame_line()
            }
        }
    }

    /// Sends a request value and decodes the response envelope, turning
    /// server-side errors into [`ClientError::Server`] (or
    /// [`ClientError::WrongShard`] when the error carries the structured
    /// shard-routing detail).
    pub fn call(&mut self, request: &Json) -> Result<Response, ClientError> {
        self.check_usable()?;
        self.ensure_negotiated()?;
        let raw = match self.framing {
            Framing::Json => {
                self.send_line(&request.to_text())?;
                self.read_reply_line()?
            }
            Framing::Bin1 => {
                self.send_payload(&encode_value_payload(request))?;
                self.read_frame_line()?
            }
        };
        self.decode_single(raw)
    }

    /// Decodes one success/error envelope line into a [`Response`].
    fn decode_single(&self, raw: String) -> Result<Response, ClientError> {
        let value = json::parse(&raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(Response { raw, value }),
            Some(false) => {
                let message = value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned();
                Err(match protocol::wrong_shard_from_json(&value) {
                    Some(detail) => ClientError::WrongShard { message, detail },
                    None => match protocol::not_leader_from_json(&value) {
                        Some(detail) => ClientError::NotLeader { message, detail },
                        None => match protocol::over_quota_from_json(&value) {
                            Some(detail) => ClientError::OverQuota { message, detail },
                            None => ClientError::Server(message),
                        },
                    },
                })
            }
            None => Err(ClientError::BadResponse(format!(
                "response lacks an 'ok' field: {raw}"
            ))),
        }
    }

    /// Runs a solve request. On a `bin1` connection the request is encoded
    /// straight to the compact binary payload — no JSON serialization of
    /// the request at all, which is the framing's hot-path win.
    pub fn solve(&mut self, request: &SolveRequest) -> Result<Response, ClientError> {
        self.check_usable()?;
        self.ensure_negotiated()?;
        if self.framing == Framing::Bin1 {
            self.send_payload(&protocol::encode_solve_bin(request))?;
            let raw = self.read_frame_line()?;
            return self.decode_single(raw);
        }
        self.call(&request.to_json())
    }

    /// Sends many requests as one batch envelope and returns the
    /// per-element outcomes in request order: `Ok` with the element's
    /// response, or `Err` with the server's per-element error message.
    ///
    /// The whole batch costs one request line and one response line; each
    /// element's `raw` is recovered by canonical re-serialization, which is
    /// byte-faithful because the protocol serializer is deterministic.
    pub fn call_batch(
        &mut self,
        requests: &[Json],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        self.check_usable()?;
        self.ensure_negotiated()?;
        let raw = match self.framing {
            Framing::Json => {
                self.send_line(&protocol::encode_batch_request(requests))?;
                self.read_reply_line()?
            }
            Framing::Bin1 => {
                let elements: Vec<Vec<u8>> = requests.iter().map(encode_value_payload).collect();
                self.send_payload(&protocol::encode_batch_bin(&elements))?;
                self.read_frame_line()?
            }
        };
        self.decode_batch(&raw, requests.len())
    }

    /// Decodes a batch response envelope into per-element outcomes.
    fn decode_batch(
        &self,
        raw: &str,
        expected: usize,
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        let value = json::parse(raw)
            .map_err(|err| ClientError::BadResponse(format!("{err} in '{raw}'")))?;
        let envelope = protocol::envelope_from_json(&value)
            .map_err(|err| ClientError::BadResponse(err.message))?;
        match envelope {
            WireEnvelope::Error { message, .. } => Err(ClientError::Server(message)),
            WireEnvelope::Success { .. } => Err(ClientError::BadResponse(
                "expected a batch response envelope".to_owned(),
            )),
            WireEnvelope::Batch { .. } => {
                let results = value
                    .get("results")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ClientError::BadResponse("batch lacks 'results'".to_owned()))?;
                if results.len() != expected {
                    return Err(ClientError::BadResponse(format!(
                        "batch of {expected} requests got {} results",
                        results.len()
                    )));
                }
                Ok(results
                    .iter()
                    .map(|element| match element.get("ok").and_then(Json::as_bool) {
                        Some(true) => Ok(Response {
                            raw: element.to_text(),
                            value: element.clone(),
                        }),
                        _ => Err(element
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified server error")
                            .to_owned()),
                    })
                    .collect())
            }
        }
    }

    /// Sends many solve requests as one batch envelope. On a `bin1`
    /// connection every element goes straight to its binary payload.
    pub fn solve_batch(
        &mut self,
        requests: &[SolveRequest],
    ) -> Result<Vec<Result<Response, String>>, ClientError> {
        self.check_usable()?;
        self.ensure_negotiated()?;
        if self.framing == Framing::Bin1 {
            let elements: Vec<Vec<u8>> = requests.iter().map(protocol::encode_solve_bin).collect();
            self.send_payload(&protocol::encode_batch_bin(&elements))?;
            let raw = self.read_frame_line()?;
            return self.decode_batch(&raw, requests.len());
        }
        let values: Vec<Json> = requests.iter().map(SolveRequest::to_json).collect();
        self.call_batch(&values)
    }

    /// Fetches the server's counter snapshot.
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("status"))]))
    }

    /// Dumps the server's flight recorder: the most recent traced request
    /// spans, optionally restricted to slow-log promotions and/or one
    /// tenant. The result object carries `spans` (oldest first) plus the
    /// recorder's `depth` and `dropped` gauges.
    pub fn trace(
        &mut self,
        slow_only: bool,
        tenant: Option<&str>,
    ) -> Result<Response, ClientError> {
        let mut members = vec![("op", Json::str("trace"))];
        if slow_only {
            members.push(("slow", Json::Bool(true)));
        }
        if let Some(tenant) = tenant {
            members.push(("tenant", Json::str(tenant)));
        }
        self.call(&Json::obj(members))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("shutdown"))]))
    }

    /// Asks a replication follower to promote itself to leader (the
    /// `strudel promote` entry point). Fails with
    /// [`ClientError::Server`] on a server that is already the leader.
    pub fn promote(&mut self) -> Result<Response, ClientError> {
        self.call(&Json::obj(vec![("op", Json::str("promote"))]))
    }
}

/// Encodes a request value as a `bin1` payload: the typed binary codec
/// when the value decodes as a request, else the embedded-JSON payload —
/// which the server runs through the full line-JSON decode path, so
/// anything expressible as a line (including deliberately malformed test
/// traffic) still gets the same answer.
fn encode_value_payload(request: &Json) -> Vec<u8> {
    match protocol::decode_request_value(request) {
        Ok(decoded) => protocol::encode_request_bin(&decoded),
        Err(_) => protocol::encode_json_payload(&request.to_text()),
    }
}
