//! The io_uring readiness backend ([`UringPoller`]): the same level-ish
//! readiness contract as the epoll backend, but every interest change is
//! a 64-byte submission-queue entry instead of an `epoll_ctl` syscall —
//! a round that registers, modifies, and deregisters N connections costs
//! *one* `io_uring_enter` (bundled with the wait itself), not N kernel
//! round trips.
//!
//! Mechanics, all through the generic SQE/CQE plumbing in [`super::sys`]:
//!
//! * **Arms.** Each registered fd with a non-empty interest holds one
//!   `IORING_OP_POLL_ADD` in flight — multishot where the kernel supports
//!   it (5.13+), with a self-correcting downgrade: a multishot arm failing
//!   `EINVAL` flips the poller to one-shot arms, which are re-armed as
//!   their completions are consumed. Re-arming checks current readiness at
//!   submission, so an fd that is ready and *stays* ready keeps being
//!   reported — no lost readiness, the contract the event loop needs.
//! * **Stale completions.** Arms are identified by a monotonically
//!   increasing internal `user_data` id mapped back to the caller's token;
//!   `modify`/`deregister` queue an `IORING_OP_POLL_REMOVE` for the old id
//!   and drop it from the map, so a completion that was already in flight
//!   when its registration changed is discarded instead of resurrecting a
//!   dead token.
//! * **Timeouts.** `wait` deadlines ride an `IORING_OP_TIMEOUT` SQE with a
//!   native nanosecond timespec — no millisecond rounding at all, where
//!   the epoll backend must round sub-millisecond deadlines *up* to avoid
//!   busy-looping. A stale timeout from an early-returning wait is
//!   cancelled (`IORING_OP_TIMEOUT_REMOVE`) before the next blocking wait
//!   so it cannot cut that wait short.
//! * **Waker.** An `eventfd` armed like any other fd, under a reserved
//!   token: `wake` is one `write(2)` from any thread and works on every
//!   io_uring kernel (`IORING_OP_MSG_RING` would need a second ring per
//!   waking thread). Wakes coalesce in the eventfd counter and a wake
//!   racing `wait` completes the arm immediately — never lost.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use super::sys::{self, Cqe, Sqe, Timespec64, UringRing};
use super::{Event, Fd, Interest, Poller, PollerCounters, Waker, WAKER_TOKEN};

/// SQ slots; the kernel sizes the CQ at twice this. One arm per
/// registered fd is in flight at a time, so 1024 slots absorb a full
/// round of interest churn across a busy accept burst before the
/// push path has to flush early.
const SQ_ENTRIES: u32 = 1024;

/// `user_data` for SQEs whose completions carry no information
/// (`POLL_REMOVE`, `TIMEOUT_REMOVE`): dropped on arrival.
const UD_DISCARD: u64 = u64::MAX;
/// `user_data` of the in-flight wait-deadline `TIMEOUT`, if any.
const UD_TIMEOUT: u64 = u64::MAX - 1;
/// First id handed to poll arms (ids grow upward from here).
const UD_FIRST: u64 = 1;

const EINVAL: i32 = 22;
const ECANCELED: i32 = 125;
const ETIME: i32 = 62;

/// One registration: the fd, its current interest, and the `user_data`
/// id of the poll arm currently in flight for it (if the interest is
/// non-empty and the arm has not completed).
struct Reg {
    fd: Fd,
    interest: Interest,
    arm: Option<u64>,
}

/// Kernel readiness on Linux 5.1+ via io_uring in poll (readiness) mode.
/// See the module docs for the mechanics; see `super::PollerKind` for
/// selection and the epoll fallback.
pub struct UringPoller {
    ring: UringRing,
    counters: Arc<PollerCounters>,
    waker: Arc<UringWaker>,
    /// token → registration state.
    regs: HashMap<u64, Reg>,
    /// in-flight poll-arm `user_data` → token (the waker's arm maps to
    /// [`WAKER_TOKEN`]). A completion whose id is absent here is stale.
    arms: HashMap<u64, u64>,
    next_ud: u64,
    /// Multishot poll arms supported (assumed until a kernel says EINVAL).
    multishot: bool,
    /// A wait-deadline `TIMEOUT` SQE is armed and has not completed.
    timeout_pending: bool,
    /// Backing store for the `TIMEOUT` SQE's timespec pointer. The kernel
    /// copies it while `io_uring_enter` submits, but it is boxed and kept
    /// for the poller's lifetime so the pointer is valid even if a flush
    /// is deferred.
    timespec: Box<Timespec64>,
}

struct UringWaker {
    eventfd: Fd,
    counters: Arc<PollerCounters>,
}

impl Waker for UringWaker {
    fn wake(&self) {
        self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        sys::eventfd_signal(self.eventfd);
    }
}

impl Drop for UringWaker {
    fn drop(&mut self) {
        sys::close_fd(self.eventfd);
    }
}

impl UringPoller {
    /// Sets up the ring and arms the eventfd waker. Fails with the OS
    /// error on kernels without io_uring (callers that want a fallback
    /// probe first — see `PollerKind::available`).
    pub fn new(counters: Arc<PollerCounters>) -> io::Result<Self> {
        let ring = UringRing::new(SQ_ENTRIES)?;
        let eventfd = sys::new_eventfd()?;
        let waker = Arc::new(UringWaker {
            eventfd,
            counters: Arc::clone(&counters),
        });
        let mut poller = UringPoller {
            ring,
            counters,
            waker,
            regs: HashMap::new(),
            arms: HashMap::new(),
            next_ud: UD_FIRST,
            multishot: true,
            timeout_pending: false,
            timespec: Box::new(Timespec64::default()),
        };
        poller.arm(eventfd, WAKER_TOKEN, Interest::READ)?;
        Ok(poller)
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.read {
            mask |= sys::POLLIN | sys::POLLRDHUP;
        }
        if interest.write {
            mask |= sys::POLLOUT;
        }
        mask
    }

    /// Queues an SQE, flushing the ring first if it is full (the one case
    /// where an interest change costs its own syscall).
    fn push(&mut self, sqe: Sqe) -> io::Result<()> {
        while !self.ring.push(sqe) {
            self.enter(0, 0)?;
        }
        Ok(())
    }

    /// One `io_uring_enter`, submitting everything queued. `EINTR` while
    /// blocking is reported as a normal (empty) return, like the epoll
    /// backend's wait.
    fn enter(&mut self, min_complete: u32, flags: u32) -> io::Result<()> {
        let to_submit = self.ring.pending();
        self.counters.syscalls.fetch_add(1, Ordering::Relaxed);
        match self.ring.enter(to_submit, min_complete, flags) {
            Ok(_) => Ok(()),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(err) => Err(err),
        }
    }

    /// Queues a poll arm for `(fd, token, interest)` and records it; a
    /// no-direction interest arms nothing (the fd stays registered but
    /// silent, per the trait contract).
    fn arm(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<Option<u64>> {
        let mask = Self::mask(interest);
        if mask == 0 {
            return Ok(None);
        }
        let ud = self.next_ud;
        self.next_ud += 1;
        let sqe = Sqe {
            opcode: sys::IORING_OP_POLL_ADD,
            fd,
            op_flags: mask,
            len: if self.multishot {
                sys::IORING_POLL_ADD_MULTI
            } else {
                0
            },
            user_data: ud,
            ..Sqe::default()
        };
        self.push(sqe)?;
        self.arms.insert(ud, token);
        Ok(Some(ud))
    }

    /// Queues a cancel for an in-flight arm and forgets it; its
    /// completion (if one was already posted) is dropped as stale.
    fn disarm(&mut self, ud: u64) -> io::Result<()> {
        self.arms.remove(&ud);
        let sqe = Sqe {
            opcode: sys::IORING_OP_POLL_REMOVE,
            fd: -1,
            addr: ud,
            user_data: UD_DISCARD,
            ..Sqe::default()
        };
        self.push(sqe)
    }

    /// Consumes one completion: waker wakes, wait deadlines, downgraded
    /// multishot arms, stale ids, and genuine readiness reports.
    fn consume(&mut self, cqe: Cqe, events: &mut Vec<Event>, woken: &mut bool) -> io::Result<()> {
        match cqe.user_data {
            UD_DISCARD => return Ok(()),
            UD_TIMEOUT => {
                // -ETIME: the deadline fired. -ECANCELED: a later wait
                // cancelled it. Either way it is no longer armed.
                self.timeout_pending = false;
                return Ok(());
            }
            _ => {}
        }
        let Some(&token) = self.arms.get(&cqe.user_data) else {
            return Ok(()); // stale: its registration changed under it
        };
        let spent = cqe.flags & sys::IORING_CQE_F_MORE == 0;
        if cqe.res < 0 {
            self.arms.remove(&cqe.user_data);
            if -cqe.res == EINVAL && self.multishot {
                // Pre-5.13 kernel: multishot poll does not exist. Flip to
                // one-shot arms and re-arm this one; other in-flight
                // multishot arms correct themselves the same way.
                self.multishot = false;
                self.rearm(token)?;
                return Ok(());
            }
            if -cqe.res == ECANCELED {
                return Ok(());
            }
            // A poll that genuinely failed (closed fd, resource limit):
            // report a hangup so the loop tears the connection down
            // instead of waiting forever on an arm that no longer exists.
            if token != WAKER_TOKEN {
                if let Some(reg) = self.regs.get_mut(&token) {
                    reg.arm = None;
                }
                events.push(Event {
                    token,
                    readable: false,
                    writable: false,
                    hangup: true,
                });
            }
            return Ok(());
        }
        let mask = cqe.res as u32;
        if token == WAKER_TOKEN {
            sys::eventfd_drain(self.waker.eventfd);
            *woken = true;
            if spent {
                self.arms.remove(&cqe.user_data);
                self.arm(self.waker.eventfd, WAKER_TOKEN, Interest::READ)?;
            }
            return Ok(());
        }
        events.push(Event {
            token,
            readable: mask & (sys::POLLIN | sys::POLLRDHUP) != 0,
            writable: mask & sys::POLLOUT != 0,
            hangup: mask & (sys::POLLHUP | sys::POLLERR) != 0,
        });
        if spent {
            self.arms.remove(&cqe.user_data);
            self.rearm(token)?;
        }
        Ok(())
    }

    /// Re-arms a registration whose one-shot arm was just consumed.
    /// Submission re-checks current readiness, so still-ready fds keep
    /// completing — one-shot mode is level-triggered one wait late.
    fn rearm(&mut self, token: u64) -> io::Result<()> {
        let Some(reg) = self.regs.get(&token) else {
            return Ok(());
        };
        let (fd, interest) = (reg.fd, reg.interest);
        let arm = self.arm(fd, token, interest)?;
        if let Some(reg) = self.regs.get_mut(&token) {
            reg.arm = arm;
        }
        Ok(())
    }

    /// ETIME leftovers aside, cancels the previous wait's still-armed
    /// deadline so it cannot fire into (and cut short) this one.
    fn cancel_stale_timeout(&mut self) -> io::Result<()> {
        if !self.timeout_pending {
            return Ok(());
        }
        let sqe = Sqe {
            opcode: sys::IORING_OP_TIMEOUT_REMOVE,
            fd: -1,
            addr: UD_TIMEOUT,
            user_data: UD_DISCARD,
            ..Sqe::default()
        };
        self.push(sqe)
    }
}

impl Drop for UringPoller {
    fn drop(&mut self) {
        // Submit whatever is still queued — above all `POLL_REMOVE`s from
        // deregistrations in the loop's final round (a shutdown can break
        // the loop between queueing and the next wait). An un-cancelled
        // poll arm holds a kernel file reference to its socket, and ring
        // teardown releases those *asynchronously*: without this enter, a
        // deregistered-and-closed listener can keep its port bound for a
        // few milliseconds after the server thread has exited, making an
        // immediate rebind flaky. Cancellations are processed inline
        // during the enter, so the references are gone when drop returns.
        let _ = self.enter(0, 0);
    }
}

impl Poller for UringPoller {
    fn backend(&self) -> &'static str {
        "uring"
    }

    fn register(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKER_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the waker",
            ));
        }
        if self.regs.contains_key(&token) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("token {token} is already registered"),
            ));
        }
        let arm = self.arm(fd, token, interest)?;
        self.regs.insert(token, Reg { fd, interest, arm });
        self.counters.registered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn modify(&mut self, _fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        let Some(reg) = self.regs.get(&token) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("token {token} is not registered"),
            ));
        };
        let (fd, old_arm) = (reg.fd, reg.arm);
        if let Some(ud) = old_arm {
            self.disarm(ud)?;
        }
        let arm = self.arm(fd, token, interest)?;
        let reg = self.regs.get_mut(&token).expect("presence just checked");
        reg.interest = interest;
        reg.arm = arm;
        Ok(())
    }

    fn deregister(&mut self, _fd: Fd, token: u64) -> io::Result<()> {
        let Some(reg) = self.regs.remove(&token) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("token {token} is not registered"),
            ));
        };
        if let Some(ud) = reg.arm {
            self.disarm(ud)?;
        }
        self.counters.registered.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        let blocking = timeout != Some(Duration::ZERO);
        if blocking {
            self.cancel_stale_timeout()?;
        }
        if let Some(deadline) = timeout.filter(|d| !d.is_zero()) {
            // The native nanosecond deadline: no rounding at all, where
            // epoll_wait forces a round-up to whole milliseconds.
            *self.timespec = Timespec64 {
                tv_sec: deadline.as_secs() as i64,
                tv_nsec: i64::from(deadline.subsec_nanos()),
            };
            let sqe = Sqe {
                opcode: sys::IORING_OP_TIMEOUT,
                fd: -1,
                addr: std::ptr::addr_of!(*self.timespec) as u64,
                len: 1,
                user_data: UD_TIMEOUT,
                ..Sqe::default()
            };
            self.push(sqe)?;
            self.timeout_pending = true;
        }
        // One syscall submits every interest change queued since the last
        // round *and* blocks for completions: the batching the epoll
        // backend cannot do (each epoll_ctl is its own kernel entry).
        let min_complete = u32::from(blocking);
        self.enter(min_complete, sys::IORING_ENTER_GETEVENTS)?;
        let mut woken = false;
        while let Some(cqe) = self.ring.pop() {
            self.consume(cqe, events, &mut woken)?;
        }
        if events.is_empty() && !woken {
            self.counters.spurious.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        // The per-round relief valve: ordinary rounds let `wait` bundle
        // queued SQEs into its own enter, but a round that queued a burst
        // of interest changes (an accept storm, a mass reap) submits early
        // so the ring cannot overflow mid-round.
        if self.ring.pending() >= SQ_ENTRIES / 2 {
            self.enter(0, 0)?;
        }
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Waker> {
        Arc::clone(&self.waker) as Arc<dyn Waker>
    }
}

// ETIME is deliberately unused by name in match arms above (the timeout
// completion is recognized by its user_data, whatever its result), but
// keeping the constant documents the contract.
const _: i32 = ETIME;
