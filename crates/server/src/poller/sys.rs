//! Direct syscall bindings of the kernel readiness backends — the one
//! sanctioned `unsafe` module of the crate (see `lib.rs`). The workspace
//! bans external crates, so both the epoll surface (four syscalls and one
//! `#[repr(C)]` struct) and the io_uring surface (`io_uring_setup`/
//! `io_uring_enter` plus the mmap'd submission/completion rings) mirror
//! the kernel ABI by hand; every call site checks the return value and
//! surfaces `io::Error::last_os_error()`.
//!
//! The io_uring half deliberately exposes *generic* SQE/CQE plumbing
//! ([`UringRing`]: push any [`Sqe`], pop raw [`Cqe`]s) rather than a
//! poll-op-specific API: the readiness-mode [`super::uring::UringPoller`]
//! is the first consumer, and the follow-on completion-mode rung
//! (submission-queue reads/writes) reuses the same ring without touching
//! this module's `unsafe`.

use std::io;
use std::os::raw::{c_int, c_long, c_uint, c_void};
use std::sync::atomic::{AtomicU32, Ordering};

// ─── epoll ──────────────────────────────────────────────────────────────

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (a 32-bit-era
/// ABI decision the kernel is stuck with), naturally aligned
/// elsewhere; `data` carries the registration token verbatim.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

pub fn create() -> io::Result<i32> {
    // SAFETY: no pointers; the kernel returns a new fd or -1.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

pub fn ctl(epfd: i32, op: c_int, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut event = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `event` outlives the call; the kernel copies it.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Waits for events; `timeout_ms` of -1 blocks indefinitely. `EINTR`
/// is reported as zero events (the loop just goes around again).
pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
    // SAFETY: `buf` is a live, exclusively borrowed slice; the kernel
    // writes at most `buf.len()` entries.
    let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

pub fn new_eventfd() -> io::Result<i32> {
    // SAFETY: no pointers; returns a new fd or -1.
    let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds 1 to an eventfd counter (the wake signal). `EAGAIN` means the
/// counter is saturated — the fd is already readable, so the wake is
/// delivered regardless and the error is ignored.
pub fn eventfd_signal(fd: i32) {
    let value: u64 = 1;
    // SAFETY: writes 8 bytes from a live stack value.
    let _ = unsafe { write(fd, (&value as *const u64).cast::<c_void>(), 8) };
}

/// Drains an eventfd counter so the next wake re-arms it.
pub fn eventfd_drain(fd: i32) {
    let mut value: u64 = 0;
    // SAFETY: reads 8 bytes into a live stack value.
    let _ = unsafe { read(fd, (&mut value as *mut u64).cast::<c_void>(), 8) };
}

pub fn close_fd(fd: i32) {
    // SAFETY: closing an owned fd; errors at close are unactionable.
    let _ = unsafe { close(fd) };
}

// ─── io_uring ───────────────────────────────────────────────────────────
//
// glibc ships no wrappers for the io_uring syscalls, so they go through
// the variadic `syscall(2)` entry point; the numbers are uniform across
// Linux architectures (425/426 were allocated arch-generically).

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;

const IORING_OFF_SQ_RING: i64 = 0;
const IORING_OFF_CQ_RING: i64 = 0x800_0000;
const IORING_OFF_SQES: i64 = 0x1000_0000;

const PROT_READ: c_int = 0x1;
const PROT_WRITE: c_int = 0x2;
const MAP_SHARED: c_int = 0x01;
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `io_uring_enter` flag: block until `min_complete` completions are
/// reaped (and flush any overflowed completions into the ring).
pub const IORING_ENTER_GETEVENTS: u32 = 1;

pub const IORING_OP_POLL_ADD: u8 = 6;
pub const IORING_OP_POLL_REMOVE: u8 = 7;
pub const IORING_OP_TIMEOUT: u8 = 11;
pub const IORING_OP_TIMEOUT_REMOVE: u8 = 12;

/// `POLL_ADD` `len` flag: keep the poll armed across completions
/// (kernel 5.13+; older kernels fail the SQE with `EINVAL`, which the
/// poller treats as "fall back to one-shot arms").
pub const IORING_POLL_ADD_MULTI: u32 = 1 << 0;
/// CQE flag: this multishot arm is still active (more CQEs will come).
pub const IORING_CQE_F_MORE: u32 = 1 << 1;

// `poll(2)` event bits — what `POLL_ADD` takes and its CQE `res` carries.
// Numerically identical to the epoll bits for these directions.
pub const POLLIN: u32 = 0x001;
pub const POLLOUT: u32 = 0x004;
pub const POLLERR: u32 = 0x008;
pub const POLLHUP: u32 = 0x010;
pub const POLLRDHUP: u32 = 0x2000;

/// A 64-bit `struct __kernel_timespec`, as `IORING_OP_TIMEOUT` reads it.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Timespec64 {
    pub tv_sec: i64,
    pub tv_nsec: i64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    user_addr: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    user_addr: u64,
}

/// `struct io_uring_params`: filled by `io_uring_setup` with the ring
/// geometry and the field offsets inside the two mmap'd ring regions.
#[repr(C)]
#[derive(Clone, Copy, Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// A 64-byte submission-queue entry, generic over opcodes: the readiness
/// poller fills `opcode`/`fd`/`op_flags` (poll mask), the completion-mode
/// follow-on will fill `addr`/`len`/`off` for reads and writes.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Sqe {
    pub opcode: u8,
    pub flags: u8,
    pub ioprio: u16,
    pub fd: i32,
    pub off: u64,
    pub addr: u64,
    pub len: u32,
    /// The per-op flags union (`poll32_events` for `POLL_ADD`,
    /// `timeout_flags` for `TIMEOUT`, …). Little-endian layout; the
    /// kernel documents a half-word swap for poll events on big-endian,
    /// which no supported target of this workspace hits.
    pub op_flags: u32,
    pub user_data: u64,
    pub buf_index: u16,
    pub personality: u16,
    pub splice_fd_in: i32,
    pub addr3: u64,
    pub pad2: u64,
}

/// A 16-byte completion-queue entry.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Cqe {
    pub user_data: u64,
    /// Result: the readiness mask for polls, `-errno` on failure.
    pub res: i32,
    pub flags: u32,
}

/// One mmap'd region, unmapped on drop.
struct MmapRegion {
    ptr: *mut c_void,
    len: usize,
}

impl MmapRegion {
    fn map(fd: c_int, len: usize, offset: i64) -> io::Result<MmapRegion> {
        // SAFETY: a fresh shared mapping of the ring fd at a
        // kernel-defined offset; failure is the sentinel, checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                offset,
            )
        };
        if ptr == MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapRegion { ptr, len })
    }

    /// A typed pointer `byte_offset` bytes into the region.
    fn at<T>(&self, byte_offset: u32) -> *mut T {
        // SAFETY: offsets come from the kernel's own params for this
        // mapping, so they stay in bounds.
        unsafe { self.ptr.cast::<u8>().add(byte_offset as usize).cast::<T>() }
    }

    fn atomic_u32(&self, byte_offset: u32) -> &AtomicU32 {
        // SAFETY: the offset is kernel-provided and 4-aligned; the shared
        // mapping outlives the borrow (it lives as long as `self`).
        unsafe { &*self.at::<AtomicU32>(byte_offset) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: unmapping a mapping this struct owns.
        let _ = unsafe { munmap(self.ptr, self.len) };
    }
}

/// An io_uring instance: the ring fd plus its three mmap'd regions, with
/// safe submit/reap methods — the only way the rest of the crate touches
/// the ring. Single-threaded by design (the event loop owns it); the
/// `Send` impl below covers moving it into the loop thread.
pub struct UringRing {
    fd: c_int,
    sq_ring: MmapRegion,
    cq_ring: MmapRegion,
    sqes: MmapRegion,
    sq_head_off: u32,
    sq_tail_off: u32,
    sq_array_off: u32,
    sq_mask: u32,
    sq_entries: u32,
    cq_head_off: u32,
    cq_tail_off: u32,
    cq_cqes_off: u32,
    cq_mask: u32,
    /// Our private copy of the SQ tail (published to the shared ring with
    /// a release store per push).
    tail: u32,
}

// SAFETY: the ring is owned by exactly one thread at a time (the event
// loop takes it by move); the raw mmap pointers carry no thread affinity,
// and all kernel-shared indices are accessed through atomics.
#[allow(unsafe_code)]
unsafe impl Send for UringRing {}

impl UringRing {
    /// Creates a ring with (at least) `entries` SQ slots; the kernel
    /// rounds up to a power of two and sizes the CQ at twice that.
    pub fn new(entries: u32) -> io::Result<UringRing> {
        let mut params = UringParams::default();
        // SAFETY: `params` outlives the call; the kernel fills it.
        let fd = unsafe { syscall(SYS_IO_URING_SETUP, entries, &mut params as *mut UringParams) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as c_int;
        // The legacy two-region layout works on every io_uring kernel,
        // including those advertising FEAT_SINGLE_MMAP.
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len = params.cq_off.cqes as usize + params.cq_entries as usize * 16;
        let build = || -> io::Result<(MmapRegion, MmapRegion, MmapRegion)> {
            let sq_ring = MmapRegion::map(fd, sq_len, IORING_OFF_SQ_RING)?;
            let cq_ring = MmapRegion::map(fd, cq_len, IORING_OFF_CQ_RING)?;
            let sqes = MmapRegion::map(
                fd,
                params.sq_entries as usize * std::mem::size_of::<Sqe>(),
                IORING_OFF_SQES,
            )?;
            Ok((sq_ring, cq_ring, sqes))
        };
        let (sq_ring, cq_ring, sqes) = match build() {
            Ok(regions) => regions,
            Err(err) => {
                close_fd(fd);
                return Err(err);
            }
        };
        // The params carry the masks' *offsets* into the mapped regions;
        // resolve the mask values now that the regions exist.
        let sq_mask = sq_ring
            .atomic_u32(params.sq_off.ring_mask)
            .load(Ordering::Relaxed);
        let cq_mask = cq_ring
            .atomic_u32(params.cq_off.ring_mask)
            .load(Ordering::Relaxed);
        Ok(UringRing {
            fd,
            sq_head_off: params.sq_off.head,
            sq_tail_off: params.sq_off.tail,
            sq_array_off: params.sq_off.array,
            sq_mask,
            sq_entries: params.sq_entries,
            cq_head_off: params.cq_off.head,
            cq_tail_off: params.cq_off.tail,
            cq_cqes_off: params.cq_off.cqes,
            cq_mask,
            tail: 0,
            sq_ring,
            cq_ring,
            sqes,
        })
    }

    /// SQ slots the kernel has not yet consumed.
    pub fn pending(&self) -> u32 {
        let head = self
            .sq_ring
            .atomic_u32(self.sq_head_off)
            .load(Ordering::Acquire);
        self.tail.wrapping_sub(head)
    }

    /// Queues one SQE without entering the kernel. Returns `false` when
    /// the submission ring is full (the caller must `enter` to drain it).
    pub fn push(&mut self, sqe: Sqe) -> bool {
        if self.pending() >= self.sq_entries {
            return false;
        }
        let idx = self.tail & self.sq_mask;
        // SAFETY: `idx` is masked into the ring, both regions are live,
        // and the kernel only reads entries at or past the published tail
        // after the release store below.
        unsafe {
            *self.sqes.at::<Sqe>(0).add(idx as usize) = sqe;
            *self.sq_ring.at::<u32>(self.sq_array_off).add(idx as usize) = idx;
        }
        self.tail = self.tail.wrapping_add(1);
        self.sq_ring
            .atomic_u32(self.sq_tail_off)
            .store(self.tail, Ordering::Release);
        true
    }

    /// `io_uring_enter`: submits every queued SQE and, with
    /// [`IORING_ENTER_GETEVENTS`], blocks until `min_complete`
    /// completions are available. Returns the number of SQEs consumed.
    pub fn enter(&self, to_submit: u32, min_complete: u32, flags: u32) -> io::Result<u32> {
        // SAFETY: no pointers beyond the null sigset; the fd is owned.
        let rc = unsafe {
            syscall(
                SYS_IO_URING_ENTER,
                self.fd,
                to_submit,
                min_complete,
                flags,
                std::ptr::null::<c_void>(),
                0usize,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as u32)
    }

    /// Pops one completion, if any is ready.
    pub fn pop(&mut self) -> Option<Cqe> {
        let head_slot = self.cq_ring.atomic_u32(self.cq_head_off);
        let head = head_slot.load(Ordering::Relaxed);
        let tail = self
            .cq_ring
            .atomic_u32(self.cq_tail_off)
            .load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = head & self.cq_mask;
        // SAFETY: `idx` is masked into the CQE array of the live mapping;
        // the acquire load of the tail ordered the kernel's writes.
        let cqe = unsafe { *self.cq_ring.at::<Cqe>(self.cq_cqes_off).add(idx as usize) };
        head_slot.store(head.wrapping_add(1), Ordering::Release);
        Some(cqe)
    }
}

impl Drop for UringRing {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// Probes whether this kernel (and seccomp profile) can run io_uring:
/// sets up a tiny ring *and* enters it once, since hardened sandboxes
/// sometimes allow `io_uring_setup` but refuse `io_uring_enter`.
pub fn uring_probe() -> io::Result<()> {
    let ring = UringRing::new(4)?;
    ring.enter(0, 0, 0)?;
    Ok(())
}
