//! Request-lifecycle tracing: per-request span records, a fixed-size
//! flight-recorder ring buffer, and the stage histograms behind the
//! `status` response's `observe` block.
//!
//! A traced request carries an [`ActiveSpan`] through the event loop. The
//! span's [`StageTimer`] stamps a lap at each pipeline boundary — decode →
//! admission → cache → solve → flush — so the per-stage micros partition
//! the request's wall time. The finished [`SpanRecord`] lands in two
//! places:
//!
//! * the **stage histograms** ([`LatencyHistogram`] per stage, plus a
//!   total-latency histogram per tenant), read out by `status` and merged
//!   across shards in the CLI's cluster roll-up, and
//! * the **flight recorder** ([`FlightRecorder`]) — a fixed-size ring of
//!   the most recent sampled spans, dumped by the `trace` wire command.
//!
//! Two knobs control who gets traced. `--trace-sample N` records every
//! Nth solve request (0 disables sampling). `--trace-slow-ms MS` is the
//! always-on slow-request log: when set, *every* request is timed and any
//! whose total reaches the threshold is promoted into the recorder past
//! sampling — a tail-latency event is never lost to the 1/N dice. With
//! sampling off and no slow threshold, requests are not timed at all; the
//! only cost is one atomic load per solve.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use strudel_core::metrics::{HistogramSnapshot, LatencyHistogram, StageTimer};

use crate::json::Json;
use crate::protocol::DEFAULT_TENANT;

/// Spans the flight recorder holds before wraparound evicts the oldest.
pub const RECORDER_CAPACITY: usize = 512;

/// Distinct tenants with their own total-latency histogram; later tenants
/// share one overflow label so a hostile tenant-id stream cannot grow the
/// observe block without bound.
const MAX_TENANT_HISTOGRAMS: usize = 32;

/// The overflow label (no valid tenant id starts with `~`).
const OVERFLOW_TENANT: &str = "~other";

/// One finished request's lifecycle record.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Monotonic span number, assigned when the span enters the recorder
    /// (0 until then).
    pub seq: u64,
    /// The connection the request arrived on.
    pub conn: u64,
    /// The tenant that issued the request.
    pub tenant: String,
    /// The operation (`refine`, `highest-theta`, `lowest-k`).
    pub op: &'static str,
    /// How the request resolved: `cache`, `solved`, `coalesced`, `error`,
    /// or a refusal (`wrong_shard`, `not_leader`, `over_quota`).
    pub outcome: &'static str,
    /// The solver engine/arm that computed the result (empty when no
    /// solve ran).
    pub engine: &'static str,
    /// Branch-and-bound nodes of the solve (0 when no solve ran).
    pub nodes: u64,
    /// Whether the slow-request log promoted this span past sampling.
    pub slow: bool,
    /// Micros spent parsing the request off the wire.
    pub decode_us: u64,
    /// Micros spent in the shard/tenant admission gates.
    pub admission_us: u64,
    /// Micros spent on the result-cache lookup.
    pub cache_us: u64,
    /// Micros from dispatch to the completion being applied (queue wait
    /// and single-flight parking included).
    pub solve_us: u64,
    /// Micros from the response being assembled to its last byte reaching
    /// the socket.
    pub flush_us: u64,
    /// Total micros, decode through flush.
    pub total_us: u64,
}

impl SpanRecord {
    /// Encodes the span as its wire object (one line of a `trace` dump).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::Int(self.seq as i64)),
            ("conn", Json::Int(self.conn as i64)),
            ("tenant", Json::str(self.tenant.clone())),
            ("op", Json::str(self.op)),
            ("outcome", Json::str(self.outcome)),
            ("engine", Json::str(self.engine)),
            ("nodes", Json::Int(self.nodes as i64)),
            ("slow", Json::Bool(self.slow)),
            ("decode_us", Json::Int(self.decode_us as i64)),
            ("admission_us", Json::Int(self.admission_us as i64)),
            ("cache_us", Json::Int(self.cache_us as i64)),
            ("solve_us", Json::Int(self.solve_us as i64)),
            ("flush_us", Json::Int(self.flush_us as i64)),
            ("total_us", Json::Int(self.total_us as i64)),
        ])
    }
}

/// A request currently being traced: the stage timer plus the record being
/// filled in. Created by [`ObserveState::begin`], carried through the
/// event loop (boxed — an untraced request carries only a `None`), and
/// finished by [`ObserveState::finish`] once the response bytes are on the
/// socket.
#[derive(Debug)]
pub struct ActiveSpan {
    timer: StageTimer,
    record: SpanRecord,
    sampled: bool,
}

impl ActiveSpan {
    /// Names the tenant once the request has been attributed.
    pub fn set_tenant(&mut self, tenant: &str) {
        if self.record.tenant != tenant {
            self.record.tenant = tenant.to_owned();
        }
    }

    /// Names the solver engine/arm and its node count.
    pub fn set_engine(&mut self, engine: &'static str, nodes: u64) {
        self.record.engine = engine;
        self.record.nodes = nodes;
    }

    /// Records how the request resolved.
    pub fn set_outcome(&mut self, outcome: &'static str) {
        self.record.outcome = outcome;
    }

    /// Stamps the end of the admission stage (shard + tenant gates).
    pub fn lap_admission(&mut self) {
        self.record.admission_us = self.timer.lap();
    }

    /// Stamps the end of the cache-lookup stage.
    pub fn lap_cache(&mut self) {
        self.record.cache_us = self.timer.lap();
    }

    /// Stamps the end of the solve stage (dispatch through completion).
    pub fn lap_solve(&mut self) {
        self.record.solve_us = self.timer.lap();
    }
}

/// The fixed-size ring of recent spans — the flight recorder. Pushes and
/// dumps take one short mutex hold; the ring never reallocates past its
/// capacity.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

struct RecorderInner {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
    next_seq: u64,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            inner: Mutex::new(RecorderInner {
                spans: VecDeque::with_capacity(capacity),
                dropped: 0,
                next_seq: 1,
            }),
        }
    }

    /// Appends a span, evicting the oldest (and counting it dropped) when
    /// the ring is full. Returns the span's assigned sequence number.
    pub fn push(&self, mut span: SpanRecord) -> u64 {
        let mut inner = self.inner.lock().expect("recorder lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        span.seq = seq;
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
        seq
    }

    /// The resident spans, oldest first, optionally filtered to slow spans
    /// and/or one tenant.
    pub fn dump(&self, slow_only: bool, tenant: Option<&str>) -> Vec<SpanRecord> {
        let inner = self.inner.lock().expect("recorder lock");
        inner
            .spans
            .iter()
            .filter(|span| !slow_only || span.slow)
            .filter(|span| tenant.map_or(true, |tenant| span.tenant == tenant))
            .cloned()
            .collect()
    }

    /// `(depth, dropped)`: spans currently resident, spans evicted by
    /// wraparound over the recorder's life.
    pub fn stats(&self) -> (usize, u64) {
        let inner = self.inner.lock().expect("recorder lock");
        (inner.spans.len(), inner.dropped)
    }
}

/// The server's whole observability surface: sampling configuration, the
/// per-stage histograms, the per-tenant total histograms, and the flight
/// recorder. One instance per server, shared by the event loop and the
/// `status`/`trace` readers.
pub struct ObserveState {
    sample_every: u64,
    slow_us: Option<u64>,
    ticks: AtomicU64,
    sampled: AtomicU64,
    slow: AtomicU64,
    decode: LatencyHistogram,
    admission: LatencyHistogram,
    cache: LatencyHistogram,
    solve: LatencyHistogram,
    flush: LatencyHistogram,
    total: LatencyHistogram,
    tenants: Mutex<Vec<(String, Arc<LatencyHistogram>)>>,
    recorder: FlightRecorder,
}

impl ObserveState {
    /// Builds the observe state from the resolved knobs: record every
    /// `sample_every`th request (0 = off) and promote any request at or
    /// over `slow_us` micros regardless of sampling (`None` = off).
    pub fn new(sample_every: u64, slow_us: Option<u64>) -> Self {
        ObserveState {
            sample_every,
            slow_us,
            ticks: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            decode: LatencyHistogram::new(),
            admission: LatencyHistogram::new(),
            cache: LatencyHistogram::new(),
            solve: LatencyHistogram::new(),
            flush: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            tenants: Mutex::new(Vec::new()),
            recorder: FlightRecorder::new(RECORDER_CAPACITY),
        }
    }

    /// Whether any tracing is configured at all. False means
    /// [`Self::begin`] is a constant `None` and the request path must not
    /// spend anything on timing.
    pub fn enabled(&self) -> bool {
        self.sample_every > 0 || self.slow_us.is_some()
    }

    /// The sampling divisor (0 = off).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// The slow-log threshold in micros, if the slow log is on.
    pub fn slow_us(&self) -> Option<u64> {
        self.slow_us
    }

    /// Opens a span for one solve request, or `None` when this request is
    /// not traced. With the slow log on every request is timed (any of
    /// them might turn out slow); with sampling alone only every Nth is.
    pub fn begin(&self, conn: u64, op: &'static str, decode_us: u64) -> Option<Box<ActiveSpan>> {
        if !self.enabled() {
            return None;
        }
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        let sampled = self.sample_every > 0 && tick % self.sample_every == 0;
        if !sampled && self.slow_us.is_none() {
            return None;
        }
        if sampled {
            self.sampled.fetch_add(1, Ordering::Relaxed);
        }
        Some(Box::new(ActiveSpan {
            timer: StageTimer::start(),
            record: SpanRecord {
                seq: 0,
                conn,
                tenant: DEFAULT_TENANT.to_owned(),
                op,
                outcome: "error",
                engine: "",
                nodes: 0,
                slow: false,
                decode_us,
                admission_us: 0,
                cache_us: 0,
                solve_us: 0,
                flush_us: 0,
                total_us: 0,
            },
            sampled,
        }))
    }

    /// Closes a span once its response bytes reached the socket: stamps
    /// the flush stage and the total, rolls every stage into the
    /// histograms (and the tenant's total histogram), and pushes the span
    /// into the recorder if it was sampled or crossed the slow threshold.
    pub fn finish(&self, mut span: ActiveSpan) {
        span.record.flush_us = span.timer.lap();
        span.record.total_us = span.record.decode_us + span.timer.total_micros();
        let slow = self
            .slow_us
            .is_some_and(|threshold| span.record.total_us >= threshold);
        span.record.slow = slow;
        if slow {
            self.slow.fetch_add(1, Ordering::Relaxed);
        }
        let record = &span.record;
        self.decode.record(record.decode_us);
        self.admission.record(record.admission_us);
        self.cache.record(record.cache_us);
        self.solve.record(record.solve_us);
        self.flush.record(record.flush_us);
        self.total.record(record.total_us);
        self.tenant_histogram(&record.tenant)
            .record(record.total_us);
        if span.sampled || slow {
            self.recorder.push(span.record);
        }
    }

    /// Closes a span whose response never (fully) reached the peer — the
    /// connection died with the span still waiting on the flush clock, or
    /// with its request still in flight. The span rolls into the same
    /// histograms and recorder accounting as a flushed one (so aborted
    /// work is priced, not leaked), but its outcome says `aborted`: the
    /// flush stage measures time-until-teardown, not a delivery.
    pub fn finish_aborted(&self, mut span: ActiveSpan) {
        span.record.outcome = "aborted";
        self.finish(span);
    }

    /// Dumps the flight recorder (the `trace` wire command).
    pub fn dump(&self, slow_only: bool, tenant: Option<&str>) -> Vec<SpanRecord> {
        self.recorder.dump(slow_only, tenant)
    }

    /// The recorder's `(depth, dropped)` gauges.
    pub fn recorder_stats(&self) -> (usize, u64) {
        self.recorder.stats()
    }

    /// The tenant's total-latency histogram, created on first use and
    /// capped at [`MAX_TENANT_HISTOGRAMS`] distinct labels (later tenants
    /// share the `~other` overflow label).
    fn tenant_histogram(&self, tenant: &str) -> Arc<LatencyHistogram> {
        let mut tenants = self.tenants.lock().expect("tenant histograms lock");
        if let Some((_, histogram)) = tenants.iter().find(|(name, _)| name == tenant) {
            return Arc::clone(histogram);
        }
        let label = if tenants.len() < MAX_TENANT_HISTOGRAMS {
            tenant
        } else {
            if let Some((_, histogram)) = tenants.iter().find(|(name, _)| name == OVERFLOW_TENANT) {
                return Arc::clone(histogram);
            }
            OVERFLOW_TENANT
        };
        let histogram = Arc::new(LatencyHistogram::new());
        tenants.push((label.to_owned(), Arc::clone(&histogram)));
        histogram
    }

    /// A point-in-time copy of the whole observe surface (the `observe`
    /// block of `status`).
    pub fn snapshot(&self) -> ObserveSnapshot {
        let (depth, dropped) = self.recorder.stats();
        ObserveSnapshot {
            sample_every: self.sample_every,
            slow_us: self.slow_us,
            ticks: self.ticks.load(Ordering::Relaxed),
            sampled: self.sampled.load(Ordering::Relaxed),
            slow: self.slow.load(Ordering::Relaxed),
            depth,
            capacity: RECORDER_CAPACITY,
            dropped,
            stages: vec![
                ("decode", self.decode.snapshot()),
                ("admission", self.admission.snapshot()),
                ("cache", self.cache.snapshot()),
                ("solve", self.solve.snapshot()),
                ("flush", self.flush.snapshot()),
                ("total", self.total.snapshot()),
            ],
            tenants: self
                .tenants
                .lock()
                .expect("tenant histograms lock")
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

/// Resolves the sampling divisor: an explicit `--trace-sample` wins, then
/// the `STRUDEL_TRACE_SAMPLE` environment variable (the hook the CI
/// trace-smoke matrix uses to run unmodified e2e suites traced), then off.
pub fn resolve_sample(explicit: Option<u64>) -> u64 {
    if let Some(every) = explicit {
        return every;
    }
    std::env::var("STRUDEL_TRACE_SAMPLE")
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(0)
}

/// Resolves the slow-log threshold in milliseconds: an explicit
/// `--trace-slow-ms` wins, then `STRUDEL_TRACE_SLOW_MS`, then off.
pub fn resolve_slow_ms(explicit: Option<u64>) -> Option<u64> {
    explicit.or_else(|| {
        std::env::var("STRUDEL_TRACE_SLOW_MS")
            .ok()
            .and_then(|value| value.trim().parse().ok())
    })
}

/// The `observe` block of a `status` snapshot.
#[derive(Clone, Debug)]
pub struct ObserveSnapshot {
    /// Sampling divisor (0 = off).
    pub sample_every: u64,
    /// Slow-log threshold in micros (`None` = off).
    pub slow_us: Option<u64>,
    /// Solve requests seen while tracing was enabled.
    pub ticks: u64,
    /// Spans recorded by 1/N sampling.
    pub sampled: u64,
    /// Spans promoted by the slow-request log.
    pub slow: u64,
    /// Spans currently resident in the recorder.
    pub depth: usize,
    /// The recorder's fixed capacity.
    pub capacity: usize,
    /// Spans evicted by recorder wraparound.
    pub dropped: u64,
    /// Per-stage histograms: decode, admission, cache, solve, flush, and
    /// the end-to-end total.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-tenant total-latency histograms.
    pub tenants: Vec<(String, HistogramSnapshot)>,
}

impl ObserveSnapshot {
    /// Encodes the block for the `status` payload. The wire JSON is
    /// integer-only; a disabled slow log travels as `slow_ms: -1` (0 is a
    /// real threshold — promote everything).
    pub fn to_json(&self) -> Json {
        let slow_ms = match self.slow_us {
            None => -1,
            Some(us) => (us / 1000) as i64,
        };
        let stages = Json::Obj(
            self.stages
                .iter()
                .map(|(name, snapshot)| ((*name).to_owned(), histogram_to_json(snapshot)))
                .collect(),
        );
        let tenants = Json::Arr(
            self.tenants
                .iter()
                .map(|(name, snapshot)| {
                    let Json::Obj(mut members) = histogram_to_json(snapshot) else {
                        unreachable!("histogram_to_json returns an object");
                    };
                    members.insert(0, ("name".to_owned(), Json::str(name.clone())));
                    Json::Obj(members)
                })
                .collect(),
        );
        Json::obj(vec![
            ("sample_every", Json::Int(self.sample_every as i64)),
            ("slow_ms", Json::Int(slow_ms)),
            ("ticks", Json::Int(self.ticks as i64)),
            ("sampled", Json::Int(self.sampled as i64)),
            ("slow", Json::Int(self.slow as i64)),
            (
                "recorder",
                Json::obj(vec![
                    ("depth", Json::Int(self.depth as i64)),
                    ("capacity", Json::Int(self.capacity as i64)),
                    ("dropped", Json::Int(self.dropped as i64)),
                ]),
            ),
            ("stages", stages),
            ("tenants", tenants),
        ])
    }
}

/// Encodes one histogram for the wire: the scalar counters, the derived
/// quantiles (micros, integers), and the sparse buckets a cluster client
/// merges for fleet-wide quantiles.
pub fn histogram_to_json(snapshot: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("count", Json::Int(snapshot.count as i64)),
        ("sum", Json::Int(snapshot.sum as i64)),
        ("max", Json::Int(snapshot.max as i64)),
        ("p50", Json::Int(snapshot.p50() as i64)),
        ("p90", Json::Int(snapshot.p90() as i64)),
        ("p99", Json::Int(snapshot.p99() as i64)),
        (
            "buckets",
            Json::Arr(
                snapshot
                    .sparse()
                    .into_iter()
                    .map(|(index, count)| {
                        Json::Arr(vec![Json::Int(index as i64), Json::Int(count as i64)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a wire histogram back into a mergeable snapshot (the cluster
/// roll-up path). Returns `None` when the object is missing any of the
/// expected fields.
pub fn histogram_from_json(value: &Json) -> Option<HistogramSnapshot> {
    let count = value.get("count")?.as_int()?;
    let sum = value.get("sum")?.as_int()?;
    let max = value.get("max")?.as_int()?;
    let pairs: Vec<(usize, u64)> = value
        .get("buckets")?
        .as_arr()?
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_arr()?;
            let index = usize::try_from(pair.first()?.as_int()?).ok()?;
            let bucket_count = u64::try_from(pair.get(1)?.as_int()?).ok()?;
            Some((index, bucket_count))
        })
        .collect();
    Some(HistogramSnapshot::from_sparse(
        &pairs,
        count as u64,
        sum as u64,
        max as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tenant: &str, total_us: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            conn: 1,
            tenant: tenant.to_owned(),
            op: "refine",
            outcome: "solved",
            engine: "ilp",
            nodes: 3,
            slow: false,
            decode_us: 1,
            admission_us: 1,
            cache_us: 1,
            solve_us: total_us.saturating_sub(4),
            flush_us: 1,
            total_us,
        }
    }

    #[test]
    fn recorder_wraps_and_counts_dropped() {
        let recorder = FlightRecorder::new(4);
        for i in 0..10 {
            recorder.push(span("default", 100 + i));
        }
        let (depth, dropped) = recorder.stats();
        assert_eq!(depth, 4);
        assert_eq!(dropped, 6);
        let spans = recorder.dump(false, None);
        assert_eq!(spans.len(), 4);
        // The survivors are the newest four, oldest first, and the
        // assigned sequence numbers never restart after wraparound.
        let seqs: Vec<u64> = spans.iter().map(|span| span.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        let totals: Vec<u64> = spans.iter().map(|span| span.total_us).collect();
        assert_eq!(totals, vec![106, 107, 108, 109]);
    }

    #[test]
    fn recorder_dump_filters() {
        let recorder = FlightRecorder::new(8);
        let mut slow = span("acme", 9000);
        slow.slow = true;
        recorder.push(slow);
        recorder.push(span("acme", 50));
        recorder.push(span("default", 60));
        assert_eq!(recorder.dump(false, None).len(), 3);
        assert_eq!(recorder.dump(true, None).len(), 1);
        assert_eq!(recorder.dump(false, Some("acme")).len(), 2);
        assert_eq!(recorder.dump(true, Some("default")).len(), 0);
    }

    #[test]
    fn histogram_json_round_trips() {
        let histogram = LatencyHistogram::new();
        for value in [3, 90, 1500, 1500, 88_000] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let rebuilt = histogram_from_json(&histogram_to_json(&snapshot)).expect("round trip");
        assert_eq!(rebuilt, snapshot);
        assert_eq!(rebuilt.p99(), snapshot.p99());
    }

    #[test]
    fn sampling_and_slow_promotion() {
        // 1/4 sampling: spans 0, 4, 8 of 10 are recorded.
        let observe = ObserveState::new(4, None);
        for _ in 0..10 {
            if let Some(span) = observe.begin(1, "refine", 1) {
                observe.finish(*span);
            }
        }
        let snapshot = observe.snapshot();
        assert_eq!(snapshot.ticks, 10);
        assert_eq!(snapshot.sampled, 3);
        assert_eq!(snapshot.depth, 3);
        // Slow log alone: every request is timed (histograms fill), and
        // with a 0 ms threshold every span is promoted into the recorder.
        let observe = ObserveState::new(0, Some(0));
        for _ in 0..5 {
            let span = observe.begin(1, "refine", 1).expect("slow log times all");
            observe.finish(*span);
        }
        let snapshot = observe.snapshot();
        assert_eq!(snapshot.sampled, 0);
        assert_eq!(snapshot.slow, 5);
        assert_eq!(snapshot.depth, 5);
        let totals = &snapshot.stages.last().expect("total stage").1;
        assert_eq!(totals.count, 5);
        // Disabled entirely: begin is a constant None.
        let observe = ObserveState::new(0, None);
        assert!(observe.begin(1, "refine", 1).is_none());
    }
}
