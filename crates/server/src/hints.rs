//! Warm-start plumbing for the compute pool's miss path.
//!
//! Three pieces live here:
//!
//! * [`SolverMode`] — how `serve --solver` overrides the miss path. The
//!   default ([`SolverMode::Request`]) honors each request's `engine`
//!   field exactly, which is the pre-solver-core behavior; `ilp`,
//!   `portfolio`, and `greedy` route every solve through one strategy
//!   regardless of what the request asked for (the cache key still
//!   records the requested engine, so the modes never mix entries).
//! * [`HintIndex`] — the event loop's memory of recently solved `refine`
//!   instances, keyed by the cache key's params string. Because the params
//!   text excludes the view (and carries the tenant suffix), one bucket
//!   holds *variants of the same question over different datasets, for one
//!   tenant* — exactly the population a warm start can seed from. Before
//!   dispatching a cold solve the loop asks the index for the nearest
//!   neighbor by signature-set distance; a close-enough prior solution
//!   ships to the worker as a [`RefinementHint`].
//! * [`SolveTelemetry`] — what a worker reports back alongside the result
//!   text: whether the solve was warm-seeded, whether a stale hint was
//!   repaired, node/restart counts, the winning portfolio arm, and (on a
//!   successful `refine`) the exported solution the index remembers.
//!
//! The index is owned by the single-threaded event loop, so it needs no
//! lock; workers only ever *carry* hints and telemetry, never touch the
//! index itself.

use std::collections::HashMap;

use strudel_core::engine::RefinementHint;
use strudel_rdf::signature::SignatureView;

/// Maximum symmetric difference between two instances' signature-identity
/// sets for one to warm-start the other. Distance 2 covers the incremental
/// workloads warm starts target: one signature added *and* one removed
/// (an S±1 edit is distance 1).
pub const MAX_NEIGHBOR_DISTANCE: usize = 2;

/// Entries remembered per params bucket. Old entries fall off first; a
/// re-solved view replaces its previous entry in place.
const MAX_ENTRIES_PER_BUCKET: usize = 32;

/// How `serve --solver` shapes the cache-miss compute path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverMode {
    /// Honor the request's `engine` field exactly (the default; identical
    /// to the server's behavior before the solver core existed).
    #[default]
    Request,
    /// Race greedy / warm ILP / cold ILP per solve; first decisive arm wins.
    Portfolio,
    /// Exact ILP for every solve, warm-started from the neighbor index.
    Ilp,
    /// Greedy heuristic for every solve (cannot prove infeasibility).
    Greedy,
}

impl SolverMode {
    /// The flag/status spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            SolverMode::Request => "request",
            SolverMode::Portfolio => "portfolio",
            SolverMode::Ilp => "ilp",
            SolverMode::Greedy => "greedy",
        }
    }

    /// Parses a `--solver` argument.
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "request" => Some(SolverMode::Request),
            "portfolio" => Some(SolverMode::Portfolio),
            "ilp" => Some(SolverMode::Ilp),
            "greedy" => Some(SolverMode::Greedy),
            _ => None,
        }
    }

    /// Whether this mode consults the neighbor index before a cold solve.
    /// `Request` mode never does: the default path stays byte-for-byte the
    /// pre-solver-core behavior, and `Greedy` has no use for a seed.
    pub fn wants_hints(self) -> bool {
        matches!(self, SolverMode::Portfolio | SolverMode::Ilp)
    }
}

/// The signature-identity set of a view: one content hash per signature,
/// independent of signature order and counts. Two views are warm-start
/// neighbors when these sets almost coincide.
pub fn view_identities(view: &SignatureView) -> Vec<u64> {
    let mut identities: Vec<u64> = (0..view.signature_count())
        .map(|sig| strudel_core::engine::signature_identity(view, sig))
        .collect();
    identities.sort_unstable();
    identities.dedup();
    identities
}

/// A successful `refine` solution exported for the index: the instance's
/// identity set plus the identity→sort assignment a neighbor can seed from.
#[derive(Clone, Debug)]
pub struct SolvedHint {
    /// Sorted, deduplicated signature identities of the solved view.
    pub identities: Vec<u64>,
    /// `(signature identity, sort index)` pairs of the solution.
    pub assignments: Vec<(u64, usize)>,
}

/// What a worker reports back with a finished solve.
#[derive(Clone, Debug, Default)]
pub struct SolveTelemetry {
    /// A neighbor hint seeded the search (`hint_vars > 0`).
    pub warm: bool,
    /// The hint was stale — some hinted value changed — and the search
    /// repaired it on the way to a solution.
    pub repaired: bool,
    /// Branch-and-bound nodes explored (0 for greedy-only solves).
    pub nodes: u64,
    /// Constraint propagations performed (0 for greedy-only solves).
    pub propagations: u64,
    /// Search conflicts — dead ends that forced a backtrack.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Winning portfolio arm name, when the portfolio raced.
    pub winner: Option<&'static str>,
    /// Exported solution for the neighbor index, on a successful `refine`.
    pub solved: Option<SolvedHint>,
}

/// One remembered solution.
#[derive(Clone, Debug)]
struct HintEntry {
    /// The solved view's 128-bit content hash (replacement identity).
    view: u128,
    /// Sorted signature identities (the distance metric's operand).
    identities: Vec<u64>,
    /// The solution, ready to ship as a warm start.
    assignments: Vec<(u64, usize)>,
}

/// Symmetric difference of two sorted, deduplicated id sets.
fn distance(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut diff) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                diff += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    diff + (a.len() - i) + (b.len() - j)
}

/// The event loop's per-params memory of recent solutions.
#[derive(Debug, Default)]
pub struct HintIndex {
    buckets: HashMap<String, Vec<HintEntry>>,
    lookups: u64,
    seeded: u64,
}

impl HintIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        HintIndex::default()
    }

    /// Remembers a solved instance under its params bucket. A re-solve of
    /// the same view replaces its entry; otherwise the oldest entry makes
    /// room once the bucket is full.
    pub fn remember(&mut self, params: &str, view: u128, solved: SolvedHint) {
        let bucket = self.buckets.entry(params.to_owned()).or_default();
        let entry = HintEntry {
            view,
            identities: solved.identities,
            assignments: solved.assignments,
        };
        if let Some(existing) = bucket.iter_mut().find(|e| e.view == view) {
            *existing = entry;
            return;
        }
        if bucket.len() == MAX_ENTRIES_PER_BUCKET {
            bucket.remove(0);
        }
        bucket.push(entry);
    }

    /// The nearest remembered neighbor of `identities` within
    /// [`MAX_NEIGHBOR_DISTANCE`], as a ready-to-ship hint. Ties go to the
    /// most recently remembered entry.
    pub fn lookup(&mut self, params: &str, identities: &[u64]) -> Option<RefinementHint> {
        self.lookups += 1;
        let bucket = self.buckets.get(params)?;
        let best = bucket
            .iter()
            .rev()
            .map(|entry| (distance(&entry.identities, identities), entry))
            .filter(|(d, _)| *d <= MAX_NEIGHBOR_DISTANCE)
            .min_by_key(|(d, _)| *d)?;
        self.seeded += 1;
        Some(RefinementHint {
            assignments: best.1.assignments.clone(),
        })
    }

    /// `(lookups, seeded)` counters: how often the miss path asked, and how
    /// often a neighbor was close enough to seed.
    pub fn counters(&self) -> (u64, u64) {
        (self.lookups, self.seeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_its_own_names() {
        for mode in [
            SolverMode::Request,
            SolverMode::Portfolio,
            SolverMode::Ilp,
            SolverMode::Greedy,
        ] {
            assert_eq!(SolverMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(SolverMode::parse("ILP"), Some(SolverMode::Ilp));
        assert_eq!(SolverMode::parse("simplex"), None);
        assert!(!SolverMode::Request.wants_hints());
        assert!(!SolverMode::Greedy.wants_hints());
        assert!(SolverMode::Ilp.wants_hints());
        assert!(SolverMode::Portfolio.wants_hints());
    }

    #[test]
    fn distance_is_the_symmetric_difference() {
        assert_eq!(distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(distance(&[1, 2, 3], &[1, 2, 3, 4]), 1);
        assert_eq!(distance(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(distance(&[], &[5, 6]), 2);
        assert_eq!(distance(&[7], &[]), 1);
    }

    #[test]
    fn lookup_finds_the_nearest_neighbor_within_range() {
        let mut index = HintIndex::new();
        index.remember(
            "refine|ilp",
            1,
            SolvedHint {
                identities: vec![10, 20, 30],
                assignments: vec![(10, 0), (20, 0), (30, 1)],
            },
        );
        index.remember(
            "refine|ilp",
            2,
            SolvedHint {
                identities: vec![10, 20, 30, 50, 60],
                assignments: vec![(10, 0)],
            },
        );
        // Distance 1 to the first entry, 3 to the second.
        let hint = index
            .lookup("refine|ilp", &[10, 20, 30, 40])
            .expect("neighbor in range");
        assert_eq!(hint.assignments.len(), 3);
        // Far from both entries: nothing usable.
        assert!(index.lookup("refine|ilp", &[1, 2, 3, 4, 5, 6]).is_none());
        // Foreign bucket (other params / other tenant): never consulted.
        assert!(index.lookup("refine|greedy", &[10, 20, 30]).is_none());
        assert_eq!(index.counters(), (3, 1));
    }

    #[test]
    fn a_resolved_view_replaces_its_entry() {
        let mut index = HintIndex::new();
        index.remember(
            "p",
            7,
            SolvedHint {
                identities: vec![1],
                assignments: vec![(1, 0)],
            },
        );
        index.remember(
            "p",
            7,
            SolvedHint {
                identities: vec![1],
                assignments: vec![(1, 2)],
            },
        );
        let hint = index.lookup("p", &[1]).expect("present");
        assert_eq!(hint.assignments, vec![(1, 2)]);
        assert_eq!(index.buckets.get("p").map(Vec::len), Some(1));
    }

    #[test]
    fn full_buckets_evict_the_oldest_entry() {
        let mut index = HintIndex::new();
        for view in 0..(MAX_ENTRIES_PER_BUCKET + 1) as u128 {
            index.remember(
                "p",
                view,
                SolvedHint {
                    identities: vec![view as u64],
                    assignments: vec![(view as u64, 0)],
                },
            );
        }
        let bucket = index.buckets.get("p").expect("bucket exists");
        assert_eq!(bucket.len(), MAX_ENTRIES_PER_BUCKET);
        assert!(bucket.iter().all(|entry| entry.view != 0), "oldest evicted");
    }
}
