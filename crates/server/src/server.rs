//! The refinement daemon: a readiness-based event loop, a compute pool, and
//! a write-through persistent result cache.
//!
//! Architecture (one box per module):
//!
//! ```text
//!  TCP clients ──► event loop (1 thread, non-blocking sockets)
//!                    │  per-connection read/write buffers + response slots
//!                    │  lines framed, batch envelopes opened per element
//!                    ▼
//!        dispatch: cache ──hit──► replay cached bytes into the slot
//!           │ miss
//!           ▼
//!        flight board: follower ──► park a token on the leader's flight
//!           │ leader
//!           ▼
//!        compute pool (fixed size, CPU-bound) ──► engine solve
//!           │ completion message + unpark
//!           ▼
//!  event loop: cache.insert ──► segment store (append P/D records)
//!              fan result out to every parked token, flush in order
//! ```
//!
//! **Event loop.** Connections cost a buffer, not a thread: the loop owns
//! every socket in non-blocking mode and pumps reads, dispatch, solve
//! completions, and writes per readiness event. Readiness comes from a
//! pluggable [`Poller`](crate::poller) backend — kernel epoll on Linux
//! (direct syscall bindings, no external crates) or the portable
//! full-scan/park fallback — selected at runtime (`serve --poller`).
//! Only fds the poller reports ready are pumped; write interest is
//! enabled exactly while a connection holds un-flushed bytes; dead fds
//! are deregistered instead of re-scanned; and compute-pool completions
//! wake the loop through the poller's [`Waker`](crate::poller::Waker),
//! so an idle epoll server makes *zero* sweeps (the scan backend keeps
//! the old ~500 Hz floor). Responses are assembled in per-connection
//! *slots* so they leave in request order even when solves complete out
//! of order.
//!
//! **Batching.** One line may carry a batch envelope (see
//! [`protocol`](crate::protocol)); elements share the line's framing and a
//! single write-out, and each element runs the cache/single-flight path
//! independently, so a mixed batch serves its hits immediately while its
//! misses solve.
//!
//! **Persistence.** With a segment path configured, every cache insert is
//! written through to an append-only file and every eviction tombstoned;
//! startup replays the file so a restarted server answers previously-cached
//! requests byte-identically without recomputing (see
//! [`SegmentStore`](crate::cache::SegmentStore)).
//!
//! The solve path serializes a result exactly once; every later identical
//! request — concurrent (single-flight), subsequent (cache), or in a later
//! process (segment replay) — receives those same bytes.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use strudel_core::engine::{
    hint_from_refinement, BrancherKind, GreedyConfig, GreedyEngine, IlpEngine, IlpEngineConfig,
    PortfolioArm, PortfolioEngine, RefineOutcome, RefinementHint, SolveStats,
};
use strudel_core::prelude::{
    highest_theta, lowest_k, HighestThetaOptions, RefinementEngine, SweepDirection,
};
use strudel_core::wire::{WireHighestTheta, WireLowestK, WireOutcome};

use crate::hints::{view_identities, HintIndex, SolveTelemetry, SolvedHint, SolverMode};

use crate::cache::{
    CacheStats, FsyncPolicy, LruCache, OwnerCacheStats, PersistStats, SegmentStore,
};
use crate::flight::{BoardJoin, FlightBoard, FlightStats};
use crate::json::Json;
use crate::poller::{
    self, Event, Fd, Interest, Poller, PollerCounters, PollerKind, PollerStats, Waker as PollWaker,
};
use crate::pool::WorkerPool;
use crate::protocol::{
    self, encode_error, encode_frame_header, encode_hello_ok, encode_not_leader, encode_over_quota,
    encode_success, encode_success_parts, encode_wrong_shard, try_decode_frame, CacheKey, Decoded,
    FrameKind, FrameView, Framing, NotLeader, OverQuota, Request, ShardRing, ShardSpec, SolveOp,
    SolveRequest, Source, WrongShard, DEFAULT_TENANT,
};
use crate::replica::{self, FollowerConfig, FollowerHost, ReplState, ReplStatus, ReplicaHub};
use crate::tenant::{TenantCounters, TenantRegistry, TenantSpecSet};
use crate::trace::{self, ActiveSpan, ObserveSnapshot, ObserveState};

/// Configuration of a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick one (tests do).
    pub addr: String,
    /// Worker threads solving instances (the CPU concurrency bound).
    pub workers: usize,
    /// Result cache capacity, in entries.
    pub cache_capacity: usize,
    /// Segment file for the write-through persistent cache; `None` keeps
    /// the cache memory-only (it dies with the process).
    pub persist_path: Option<PathBuf>,
    /// Dead records in the segment that trigger compaction.
    pub compact_dead_threshold: u64,
    /// This process's shard identity in a cluster (`serve --shard i/n`).
    /// When set, the server derives the cluster's [`ShardRing`], refuses
    /// solve requests it does not own with a structured `wrong_shard`
    /// error, and namespaces its persistent segment per shard (see
    /// [`shard_segment_path`]). `None` runs the classic single-process
    /// server.
    pub shard: Option<ShardSpec>,
    /// When the persistent segment fsyncs its appends
    /// (`serve --fsync always|interval:<ms>|off`; see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Run as a replication follower of this leader (`serve --follow`):
    /// subscribe to its record stream, replay it into the local cache and
    /// segment, serve cache hits read-only, and refuse writes with a
    /// structured `not_leader` error until promoted.
    pub follow: Option<String>,
    /// Follower auto-promotion window: take over as leader once the
    /// leader's stream has been silent this long. `None` promotes only on
    /// an explicit `promote` request (`strudel promote`). Must comfortably
    /// exceed [`replica::HEARTBEAT_INTERVAL`].
    pub auto_promote: Option<Duration>,
    /// Readiness backend of the event loop (`serve --poller epoll|scan`).
    /// `None` auto-detects: the `STRUDEL_POLLER` environment override (the
    /// conformance matrix uses it) first, then epoll on Linux, scan
    /// elsewhere — see [`PollerKind::resolve`].
    pub poller: Option<PollerKind>,
    /// Per-tenant QoS configuration (`serve --tenants SPEC`): cache
    /// weights, admission rates, and compute-pool shares (see
    /// [`TenantSpecSet::parse`]). `None` runs a single unlimited
    /// `default` tenant — exactly the pre-tenancy behavior.
    pub tenants: Option<TenantSpecSet>,
    /// Miss-path solver strategy (`serve --solver`). The default honors
    /// each request's `engine` field; `ilp` and `portfolio` additionally
    /// warm-start solves from the nearest cached neighbor (see
    /// [`SolverMode`] and [`crate::hints`]).
    pub solver: SolverMode,
    /// Luby restart base in conflicts for the ILP solver core
    /// (`serve --solver-restarts`); `None` disables restarts. Enabling
    /// restarts also switches branching to the activity heuristic —
    /// restarting an input-order search would replay the identical tree.
    pub solver_restarts: Option<u64>,
    /// Trace-sampling divisor (`serve --trace-sample N`): every Nth solve
    /// request is recorded as a flight-recorder span; 0 disables sampling.
    /// `None` consults the `STRUDEL_TRACE_SAMPLE` environment override (the
    /// CI trace-smoke matrix uses it), then defaults to 0.
    pub trace_sample: Option<u64>,
    /// Slow-request threshold in milliseconds (`serve --trace-slow-ms`):
    /// when set, every request is timed and any at or over the threshold is
    /// recorded regardless of sampling. `None` consults
    /// `STRUDEL_TRACE_SLOW_MS`, then leaves the slow log off.
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7464".to_owned(),
            workers: 4,
            cache_capacity: 1024,
            persist_path: None,
            compact_dead_threshold: 1024,
            shard: None,
            fsync: FsyncPolicy::default(),
            follow: None,
            auto_promote: None,
            poller: None,
            tenants: None,
            solver: SolverMode::default(),
            solver_restarts: None,
            trace_sample: None,
            trace_slow_ms: None,
        }
    }
}

/// Seed of the tenant registry's refusal-jitter RNG. Fixed (not
/// wall-clock derived) so a refusal trace is reproducible run to run —
/// the determinism property tests depend on it.
const TENANT_JITTER_SEED: u64 = 0x7465_6e61_6e74_7331; // "tenants1"

/// The per-shard namespace of a persistent segment: every shard of a
/// cluster can be pointed at the *same* `--persist` base path and still
/// own a private file (`cache.segment` → `cache.segment.shard1of3`), so
/// shards never interleave writes or replay one another's keys.
pub fn shard_segment_path(base: &std::path::Path, spec: &ShardSpec) -> PathBuf {
    let name = base
        .file_name()
        .map(|name| name.to_string_lossy().into_owned())
        .unwrap_or_default();
    base.with_file_name(format!("{name}.shard{}of{}", spec.index, spec.count))
}

/// Everything a sharded server knows about its place in the cluster.
struct ShardState {
    spec: ShardSpec,
    ring: ShardRing,
}

/// Everything the event loop, the workers, and the handle share.
struct Shared {
    shard: Option<ShardState>,
    /// Replication state: the epoch stamps are validated against, the
    /// writable flag followers enforce, and the stream counters. Shared
    /// with the follower feed thread, hence the `Arc`.
    repl: Arc<ReplState>,
    cache: Mutex<LruCache<CacheKey, Arc<String>>>,
    persist: Mutex<Option<SegmentStore>>,
    /// The tenant control plane: admission buckets, pool shares, and the
    /// per-tenant counters (interior-mutexed; see [`TenantRegistry`]).
    tenants: TenantRegistry,
    pool: WorkerPool,
    metrics: Metrics,
    stop: AtomicBool,
    started: Instant,
    /// The poller's cross-thread wake handle: workers and `shutdown()`
    /// pull the event loop out of its readiness wait the moment there is
    /// something to do (this replaced the park/unpark channel).
    waker: Arc<dyn PollWaker>,
    /// Poller counters, shared so `status` can snapshot them from any
    /// thread while the poller itself lives on the loop thread.
    poller_counters: Arc<PollerCounters>,
    /// The readiness backend actually running (`"epoll"` / `"scan"`).
    poller_backend: &'static str,
    /// Finished solves travelling from the workers back to the event loop.
    /// Behind its own `Arc` so a worker's job closure captures *only* this
    /// queue, never `Shared` itself — if a job held the last `Shared`
    /// reference, dropping it on a worker thread would run
    /// `WorkerPool::drop`, which joins that very thread (a self-join that
    /// never returns).
    completions: Arc<Mutex<Vec<Completion>>>,
    /// Miss-path solver strategy (`--solver`).
    solver: SolverMode,
    /// Luby restart base for the ILP solver core (`--solver-restarts`).
    solver_restarts: Option<u64>,
    /// The observability surface: span sampling, stage histograms, and the
    /// flight recorder (`--trace-sample` / `--trace-slow-ms`).
    observe: ObserveState,
}

/// One finished solve: the flight key, the tenant that led it (the key
/// namespaces tenants, so every waiter on the flight shares it), and the
/// serialized result (or the error message shared by everyone parked on
/// the flight).
struct Completion {
    key: CacheKey,
    tenant: String,
    outcome: Result<String, String>,
    /// Solver-core counters and the exported solution for the hint index.
    telemetry: SolveTelemetry,
}

/// Per-operation request counters and gauges.
#[derive(Default)]
struct Metrics {
    refine: AtomicU64,
    highest_theta: AtomicU64,
    lowest_k: AtomicU64,
    status: AtomicU64,
    shutdown: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    open_connections: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    flight_leaders: AtomicU64,
    flight_shared: AtomicU64,
    flight_aborted: AtomicU64,
    persist_errors: AtomicU64,
    wrong_shard: AtomicU64,
    not_leader: AtomicU64,
    /// `bin1` request frames decoded (JSON lines are not counted here;
    /// they show up under the per-op request counters).
    frames_in: AtomicU64,
    /// `bin1` response frames staged for writing.
    frames_out: AtomicU64,
    /// Bytes read off client sockets, both framings.
    wire_bytes_in: AtomicU64,
    /// Bytes written to client sockets, both framings.
    wire_bytes_out: AtomicU64,
    /// Fatal frame-level decode failures (bad magic/version/kind,
    /// malformed varints, oversized payloads).
    wire_decode_errors: AtomicU64,
    /// `hello` negotiations that switched a connection to `bin1`.
    bin_negotiated: AtomicU64,
    /// Gauge: open connections currently speaking `bin1`.
    bin_connections: AtomicU64,
    /// Pool solves dispatched without a warm-start seed.
    solver_cold: AtomicU64,
    /// Pool solves seeded from a cached neighbor's solution.
    solver_warm: AtomicU64,
    /// Warm solves whose hint was stale and repaired by propagation.
    solver_repaired: AtomicU64,
    /// Neighbor-index consultations on the miss path.
    solver_seed_lookups: AtomicU64,
    /// Consultations that found a close-enough neighbor.
    solver_seed_hits: AtomicU64,
    /// Branch-and-bound nodes explored across all solves.
    solver_nodes: AtomicU64,
    /// Constraint propagations across all solves.
    solver_propagations: AtomicU64,
    /// Search conflicts (dead ends) across all solves.
    solver_conflicts: AtomicU64,
    /// Solver restarts across all solves.
    solver_restarts: AtomicU64,
    /// `trace` requests served.
    trace: AtomicU64,
    /// Portfolio races won by the greedy arm.
    portfolio_greedy: AtomicU64,
    /// Portfolio races won by the warm ILP arm.
    portfolio_warm: AtomicU64,
    /// Portfolio races won by the cold ILP arm.
    portfolio_cold: AtomicU64,
}

impl Metrics {
    fn count_solve(&self, op: SolveOp) {
        match op {
            SolveOp::Refine => &self.refine,
            SolveOp::HighestTheta => &self.highest_theta,
            SolveOp::LowestK => &self.lowest_k,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// Shard identity block of the `status` payload (sharded servers only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStatus {
    /// This process's shard id.
    pub index: u32,
    /// Total shards in the cluster.
    pub count: u32,
    /// The ring epoch this server validates request stamps against.
    pub epoch: u64,
    /// Solve requests refused because this shard does not own their key
    /// (or their stamp carried a different ring epoch).
    pub wrong_shard: u64,
}

/// Wire-level counters of the `status` payload: traffic volume per
/// framing, frame counts, and the negotiated-framing roll-up across open
/// connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// `bin1` request frames decoded.
    pub frames_in: u64,
    /// `bin1` response frames written.
    pub frames_out: u64,
    /// Bytes read off client sockets (both framings).
    pub bytes_in: u64,
    /// Bytes written to client sockets (both framings).
    pub bytes_out: u64,
    /// Fatal frame decode failures.
    pub decode_errors: u64,
    /// `hello` negotiations that switched a connection to `bin1`.
    pub bin_negotiated: u64,
    /// Open connections currently speaking `bin1`.
    pub connections_bin: u64,
    /// Open connections on the default line-JSON framing.
    pub connections_json: u64,
}

/// Solver-core block of the `status` payload: how the miss path computed,
/// how often warm starts landed, and how the portfolio races resolved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Active solver mode name (`request`, `portfolio`, `ilp`, `greedy`).
    pub mode: &'static str,
    /// Luby restart base in conflicts; 0 when restarts are disabled.
    pub restart_base: u64,
    /// Solves dispatched without a warm-start seed.
    pub cold_solves: u64,
    /// Solves seeded from a cached neighbor's solution.
    pub warm_solves: u64,
    /// Warm solves whose stale hint was repaired on the way to a solution.
    pub repaired_hints: u64,
    /// Neighbor-index consultations on the miss path.
    pub seed_lookups: u64,
    /// Consultations that produced a usable seed.
    pub seed_hits: u64,
    /// Branch-and-bound nodes explored across all solves.
    pub nodes: u64,
    /// Constraint propagations across all solves.
    pub propagations: u64,
    /// Search conflicts (dead ends) across all solves.
    pub conflicts: u64,
    /// Solver restarts across all solves.
    pub restarts: u64,
    /// Portfolio races won by the greedy arm.
    pub portfolio_greedy: u64,
    /// Portfolio races won by the warm ILP arm.
    pub portfolio_warm: u64,
    /// Portfolio races won by the cold ILP arm.
    pub portfolio_cold: u64,
}

/// A point-in-time view of the server's counters (the `status` payload).
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// Shard identity; `None` for an unsharded server.
    pub shard: Option<ShardStatus>,
    /// Worker threads.
    pub workers: usize,
    /// Readiness-backend counters (backend name, waits, wakeups,
    /// spurious wakes, registered fds).
    pub poller: PollerStats,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// Connections currently open (the event loop's gauge).
    pub open_connections: u64,
    /// `refine` requests served.
    pub refine: u64,
    /// `highest-theta` requests served.
    pub highest_theta: u64,
    /// `lowest-k` requests served.
    pub lowest_k: u64,
    /// `status` requests served.
    pub status: u64,
    /// `shutdown` requests acknowledged.
    pub shutdowns: u64,
    /// Error responses sent (including per-element batch errors).
    pub errors: u64,
    /// Batch envelopes received.
    pub batches: u64,
    /// Requests that arrived inside a batch envelope.
    pub batched_requests: u64,
    /// Result cache counters.
    pub cache: CacheStats,
    /// Single-flight counters.
    pub flight: FlightStats,
    /// Persistent segment counters; `None` when persistence is off.
    pub persist: Option<PersistStats>,
    /// Persistent segment write failures (0 in healthy operation).
    pub persist_errors: u64,
    /// Replication counters: role, epoch, stream position, lag.
    pub replication: ReplStatus,
    /// Writes refused because this server is an unpromoted follower.
    pub not_leader: u64,
    /// Per-tenant QoS counters, in registry order (configured tenants
    /// first, then unknown tenants in first-seen order).
    pub tenants: Vec<TenantCounters>,
    /// Per-tenant cache occupancy (entries resident, reserve floor).
    pub tenant_cache: Vec<OwnerCacheStats>,
    /// Wire-level traffic counters and the per-connection framing roll-up.
    pub wire: WireStats,
    /// Solver-core counters: warm starts, repairs, nodes, portfolio wins.
    pub solver: SolverStats,
    /// `trace` requests served.
    pub traces: u64,
    /// The observability surface: per-stage histograms, sampling counters,
    /// and the flight recorder's depth/dropped gauges.
    pub observe: ObserveSnapshot,
}

impl StatusSnapshot {
    /// Encodes the snapshot as the `status` response's result object.
    pub fn to_json(&self) -> Json {
        let persist = match &self.persist {
            None => Json::Null,
            Some(stats) => Json::obj(vec![
                ("replayed", Json::Int(stats.replayed as i64)),
                ("puts", Json::Int(stats.puts as i64)),
                ("tombstones", Json::Int(stats.tombstones as i64)),
                ("dead", Json::Int(stats.dead as i64)),
                ("live", Json::Int(stats.live as i64)),
                ("compactions", Json::Int(stats.compactions as i64)),
                ("file_bytes", Json::Int(stats.file_bytes as i64)),
                ("fsyncs", Json::Int(stats.fsyncs as i64)),
                ("skipped", Json::Int(stats.skipped_records as i64)),
                ("errors", Json::Int(self.persist_errors as i64)),
            ]),
        };
        // The tenants block joins the registry's counters with the cache's
        // per-owner occupancy by name; a tenant that has never inserted
        // simply reports zero entries.
        let tenants = {
            let occupancy: HashMap<&str, (usize, usize)> = self
                .tenant_cache
                .iter()
                .map(|o| (o.name.as_str(), (o.entries, o.reserved)))
                .collect();
            Json::Arr(
                self.tenants
                    .iter()
                    .map(|t| {
                        let (entries, reserved) =
                            occupancy.get(t.name.as_str()).copied().unwrap_or((0, 0));
                        Json::obj(vec![
                            ("name", Json::str(t.name.clone())),
                            ("hits", Json::Int(t.hits as i64)),
                            ("misses", Json::Int(t.misses as i64)),
                            ("evictions", Json::Int(t.evictions as i64)),
                            ("refusals", Json::Int(t.refusals as i64)),
                            ("inflight", Json::Int(t.inflight as i64)),
                            ("entries", Json::Int(entries as i64)),
                            ("reserved", Json::Int(reserved as i64)),
                            ("weight", Json::Int(t.weight as i64)),
                            ("rate", Json::Int(t.rate as i64)),
                            ("pool", Json::Int(t.pool as i64)),
                        ])
                    })
                    .collect(),
            )
        };
        let replication = {
            let repl = &self.replication;
            Json::obj(vec![
                ("role", Json::str(repl.role.name())),
                (
                    "leader",
                    match &repl.leader {
                        Some(addr) => Json::str(addr.clone()),
                        None => Json::Null,
                    },
                ),
                ("epoch", Json::Int(repl.epoch as i64)),
                ("last_seq", Json::Int(repl.last_seq as i64)),
                ("lag", Json::Int(repl.lag as i64)),
                ("subscribers", Json::Int(repl.subscribers as i64)),
                ("records_sent", Json::Int(repl.records_sent as i64)),
                ("records_applied", Json::Int(repl.records_applied as i64)),
                ("promotions", Json::Int(repl.promotions as i64)),
                ("refused_writes", Json::Int(self.not_leader as i64)),
            ])
        };
        let shard = match &self.shard {
            None => Json::Null,
            Some(shard) => Json::obj(vec![
                ("index", Json::Int(i64::from(shard.index))),
                ("count", Json::Int(i64::from(shard.count))),
                ("epoch", Json::Int(shard.epoch as i64)),
                ("wrong_shard", Json::Int(shard.wrong_shard as i64)),
            ]),
        };
        // The wire JSON is integer-only, so the derived rate travels as a
        // canonical fixed-point string next to the raw counters.
        let lookups = self.cache.hits + self.cache.misses;
        let hit_rate = if lookups == 0 {
            "0.0000".to_owned()
        } else {
            format!("{:.4}", self.cache.hits as f64 / lookups as f64)
        };
        let poller = Json::obj(vec![
            ("backend", Json::str(self.poller.backend)),
            ("waits", Json::Int(self.poller.waits as i64)),
            ("wakeups", Json::Int(self.poller.wakeups as i64)),
            ("spurious", Json::Int(self.poller.spurious as i64)),
            ("registered", Json::Int(self.poller.registered as i64)),
            ("syscalls", Json::Int(self.poller.syscalls as i64)),
        ]);
        let solver = {
            // Same fixed-point convention as the cache hit rate: the wire
            // JSON is integer-only, so the derived rate is a string.
            let seed_hit_rate = if self.solver.seed_lookups == 0 {
                "0.0000".to_owned()
            } else {
                format!(
                    "{:.4}",
                    self.solver.seed_hits as f64 / self.solver.seed_lookups as f64
                )
            };
            Json::obj(vec![
                ("mode", Json::str(self.solver.mode)),
                ("restart_base", Json::Int(self.solver.restart_base as i64)),
                ("cold_solves", Json::Int(self.solver.cold_solves as i64)),
                ("warm_solves", Json::Int(self.solver.warm_solves as i64)),
                ("seed_lookups", Json::Int(self.solver.seed_lookups as i64)),
                ("seed_hits", Json::Int(self.solver.seed_hits as i64)),
                ("seed_hit_rate", Json::str(seed_hit_rate)),
                (
                    "repaired_hints",
                    Json::Int(self.solver.repaired_hints as i64),
                ),
                ("nodes", Json::Int(self.solver.nodes as i64)),
                ("propagations", Json::Int(self.solver.propagations as i64)),
                ("conflicts", Json::Int(self.solver.conflicts as i64)),
                ("restarts", Json::Int(self.solver.restarts as i64)),
                (
                    "portfolio",
                    Json::obj(vec![
                        ("greedy", Json::Int(self.solver.portfolio_greedy as i64)),
                        ("ilp_warm", Json::Int(self.solver.portfolio_warm as i64)),
                        ("ilp_cold", Json::Int(self.solver.portfolio_cold as i64)),
                    ]),
                ),
            ])
        };
        let wire = Json::obj(vec![
            ("frames_in", Json::Int(self.wire.frames_in as i64)),
            ("frames_out", Json::Int(self.wire.frames_out as i64)),
            ("bytes_in", Json::Int(self.wire.bytes_in as i64)),
            ("bytes_out", Json::Int(self.wire.bytes_out as i64)),
            ("decode_errors", Json::Int(self.wire.decode_errors as i64)),
            ("bin_negotiated", Json::Int(self.wire.bin_negotiated as i64)),
            (
                "connections",
                Json::obj(vec![
                    ("bin1", Json::Int(self.wire.connections_bin as i64)),
                    ("json", Json::Int(self.wire.connections_json as i64)),
                ]),
            ),
        ]);
        Json::obj(vec![
            ("workers", Json::Int(self.workers as i64)),
            ("poller", poller),
            ("wire", wire),
            ("shard", shard),
            ("replication", replication),
            ("uptime_ms", Json::Int(self.uptime_ms as i64)),
            ("connections", Json::Int(self.connections as i64)),
            ("open_connections", Json::Int(self.open_connections as i64)),
            (
                "requests",
                Json::obj(vec![
                    ("refine", Json::Int(self.refine as i64)),
                    ("highest_theta", Json::Int(self.highest_theta as i64)),
                    ("lowest_k", Json::Int(self.lowest_k as i64)),
                    ("status", Json::Int(self.status as i64)),
                    ("trace", Json::Int(self.traces as i64)),
                    ("shutdown", Json::Int(self.shutdowns as i64)),
                    ("errors", Json::Int(self.errors as i64)),
                    ("batch", Json::Int(self.batches as i64)),
                    ("batched", Json::Int(self.batched_requests as i64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(self.cache.hits as i64)),
                    ("misses", Json::Int(self.cache.misses as i64)),
                    ("hit_rate", Json::str(hit_rate)),
                    ("evictions", Json::Int(self.cache.evictions as i64)),
                    ("insertions", Json::Int(self.cache.insertions as i64)),
                    ("entries", Json::Int(self.cache.entries as i64)),
                    ("capacity", Json::Int(self.cache.capacity as i64)),
                ]),
            ),
            (
                "singleflight",
                Json::obj(vec![
                    ("leaders", Json::Int(self.flight.leaders as i64)),
                    ("shared", Json::Int(self.flight.shared as i64)),
                    ("aborted", Json::Int(self.flight.aborted as i64)),
                ]),
            ),
            ("solver", solver),
            ("observe", self.observe.to_json()),
            ("persist", persist),
            ("tenants", tenants),
        ])
    }
}

/// A running server. Dropping the handle does not stop the server; call
/// [`ServerHandle::shutdown`] or send a `shutdown` request, then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    loop_thread: Option<JoinHandle<()>>,
    follower_thread: Option<JoinHandle<()>>,
}

/// Starts a server from a configuration. Returns once the listener is bound
/// (so `handle.addr()` is immediately connectable) and, when persistence is
/// configured, once the segment file has been replayed into the cache.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    // std's TcpListener::bind sets SO_REUSEADDR on Unix before binding, so
    // a server restarted immediately after shutdown rebinds its port even
    // while the previous instance's connections sit in TIME_WAIT (rapid
    // test restarts depend on this; see the service tests).
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // The readiness backend is opened here, not on the loop thread, so a
    // misconfiguration (epoll requested off-Linux, a bad STRUDEL_POLLER
    // value, fd exhaustion) fails the bind call instead of killing the
    // loop thread after `start` already returned success.
    let poller_kind = PollerKind::resolve(config.poller)?;
    let poller_counters = Arc::new(PollerCounters::default());
    let poll = poller::open(poller_kind, Arc::clone(&poller_counters))?;
    let waker = poll.waker();

    // A sharded server derives the cluster's ring from the shard count
    // alone — the same pure function every router and sibling shard
    // evaluates, so ownership needs no coordination.
    let shard = match config.shard {
        None => None,
        Some(spec) => {
            if spec.index >= spec.count || spec.count == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("invalid shard spec {}/{}", spec.index, spec.count),
                ));
            }
            let ring = ShardRing::new(spec.count);
            Some(ShardState { spec, ring })
        }
    };

    // The replication epoch starts at the ring epoch (the same fingerprint
    // the wrong_shard machinery validates). An unsharded server is epoch-
    // wise a one-shard cluster — routers for a single `a+a2` entry derive
    // exactly this ring — so stamped requests validate (and a resurrected
    // unsharded old leader is refused) without requiring `--shard 0/1`.
    let base_epoch = shard
        .as_ref()
        .map_or_else(|| ShardRing::new(1).epoch(), |state| state.ring.epoch());
    let repl = Arc::new(match &config.follow {
        None => ReplState::leader(base_epoch),
        Some(leader) => ReplState::follower(base_epoch, leader.clone()),
    });

    // Warm start: replay the persistent segment into the cache in append
    // order, which reconstructs the pre-restart recency ranking. A shard
    // replays (and writes) only its own namespaced file.
    let metrics = Metrics::default();
    let tenants = TenantRegistry::new(config.tenants.as_ref(), TENANT_JITTER_SEED);
    let mut cache = LruCache::new(config.cache_capacity);
    cache.set_weights(&tenants.weights());
    let persist = match &config.persist_path {
        None => None,
        Some(path) => {
            let path = match &shard {
                Some(state) => shard_segment_path(path, &state.spec),
                None => path.clone(),
            };
            let (mut store, entries) =
                SegmentStore::open(path, config.compact_dead_threshold, config.fsync)?;
            for (key, text, tenant) in entries {
                if let Some(victim) = cache.insert_for(&tenant, key, Arc::new(text)) {
                    // The segment outgrew this instance's capacity: keep
                    // disk consistent with what is actually resident.
                    tenants.count_eviction(&victim.owner);
                    if let Err(err) = store.record_evict(&victim.key) {
                        metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
                        eprintln!("strudel-server: replay-overflow tombstone failed: {err}");
                    }
                }
            }
            // Resume the publication counter past everything compacted, so
            // a restarted leader never reissues a sequence number.
            repl.resume_seq(store.stats().checkpoint_seq);
            Some(store)
        }
    };

    let shared = Arc::new(Shared {
        shard,
        repl,
        cache: Mutex::new(cache),
        persist: Mutex::new(persist),
        tenants,
        pool: WorkerPool::new(config.workers),
        metrics,
        stop: AtomicBool::new(false),
        started: Instant::now(),
        waker,
        poller_counters,
        poller_backend: poller_kind.name(),
        completions: Arc::new(Mutex::new(Vec::new())),
        solver: config.solver,
        solver_restarts: config.solver_restarts,
        observe: ObserveState::new(
            trace::resolve_sample(config.trace_sample),
            trace::resolve_slow_ms(config.trace_slow_ms).map(|ms| ms.saturating_mul(1000)),
        ),
    });

    let loop_shared = Arc::clone(&shared);
    let handle = thread::Builder::new()
        .name("strudel-eventloop".to_owned())
        .spawn(move || EventLoop::new(listener, loop_shared, poll).run())?;

    // A follower subscribes to its leader from a dedicated feed thread,
    // replaying the stream into the same cache and segment the event loop
    // serves from.
    let follower_thread = match &config.follow {
        None => None,
        Some(leader) => Some(replica::spawn_follower(
            Arc::clone(&shared),
            Arc::clone(&shared.repl),
            FollowerConfig {
                leader: leader.clone(),
                shard: config.shard,
                auto_promote: config.auto_promote,
            },
        )?),
    };

    Ok(ServerHandle {
        local_addr,
        shared,
        loop_thread: Some(handle),
        follower_thread,
    })
}

/// The follower feed thread replays the leader's records through exactly
/// the write-through path the event loop uses: cache insert (plus overflow
/// tombstone) and segment append, compacting when the threshold trips.
/// Locks are taken one at a time except for the documented persist→cache
/// nesting during compaction (see [`EventLoop::persist_insert`]).
impl FollowerHost for Shared {
    fn apply_put(&self, key: &CacheKey, result: &str, tenant: &str) {
        let evicted = self.cache.lock().expect("cache lock").insert_for(
            tenant,
            key.clone(),
            Arc::new(result.to_owned()),
        );
        if let Some(victim) = &evicted {
            // The follower mirrors the leader's per-tenant accounting so
            // a promotion starts with honest eviction counters.
            self.tenants.count_eviction(&victim.owner);
        }
        let mut persist = self.persist.lock().expect("persist lock");
        let Some(store) = persist.as_mut() else {
            return;
        };
        let mut outcome = store.record_put_for(key, result, tenant);
        if let Some(victim) = &evicted {
            outcome = outcome.and_then(|()| store.record_evict(&victim.key));
        }
        if let Err(err) = outcome {
            self.metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("strudel-server: follower segment write failed: {err}");
            return;
        }
        if store.should_compact() {
            let snapshot = self
                .cache
                .lock()
                .expect("cache lock")
                .snapshot_lru_order_with_owners();
            if let Err(err) = store.compact(
                snapshot.iter().map(|(k, v, t)| (k, v.as_str(), t.as_str())),
                self.repl.last_seq(),
            ) {
                self.metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("strudel-server: follower segment compaction failed: {err}");
            }
        }
        // The event loop schedules the group fsync (`tick_persist_sync` /
        // `next_timeout`), but this append happened on the feed thread:
        // without a wake, an otherwise-idle follower under the epoll
        // backend would sit in an unbounded wait with a dirty segment and
        // the `--fsync interval` promise would silently become
        // sync-at-next-client-request. (The scan backend's sweep masks
        // this; the epoll backend exposes it.)
        drop(persist);
        self.waker.wake();
    }

    fn apply_evict(&self, key: &CacheKey) {
        let removed = self.cache.lock().expect("cache lock").remove(key).is_some();
        if !removed {
            return; // never resident here (capacity differences)
        }
        let mut persist = self.persist.lock().expect("persist lock");
        if let Some(store) = persist.as_mut() {
            if let Err(err) = store.record_evict(key) {
                self.metrics.persist_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("strudel-server: follower segment tombstone failed: {err}");
            }
            // Same as apply_put: the fsync clock lives on the event loop.
            drop(persist);
            self.waker.wake();
        }
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current counter snapshot.
    pub fn status(&self) -> StatusSnapshot {
        snapshot(&self.shared)
    }

    /// Asks the server to stop: the event loop closes the listener, drains
    /// in-flight solves, flushes the persistent segment, and exits
    /// (idempotent).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        wake(&self.shared);
    }

    /// Blocks until the event loop has exited (after [`Self::shutdown`] or
    /// a client's `shutdown` request) and returns the final counters.
    pub fn wait(mut self) -> StatusSnapshot {
        if let Some(thread) = self.loop_thread.take() {
            let _ = thread.join();
        }
        // The feed thread notices the stop flag within its read timeout.
        if let Some(thread) = self.follower_thread.take() {
            let _ = thread.join();
        }
        snapshot(&self.shared)
    }
}

fn wake(shared: &Shared) {
    shared.waker.wake();
}

fn snapshot(shared: &Shared) -> StatusSnapshot {
    // The locks are taken strictly one at a time (each guard is a
    // temporary), so this never nests against the event loop's
    // cache-then-persist ordering.
    let (cache, tenant_cache) = {
        let guard = shared.cache.lock().expect("cache lock");
        (guard.stats(), guard.owner_stats())
    };
    let persist = shared
        .persist
        .lock()
        .expect("persist lock")
        .as_ref()
        .map(SegmentStore::stats);
    let metrics = &shared.metrics;
    let open = metrics.open_connections.load(Ordering::Relaxed);
    let connections_bin = metrics.bin_connections.load(Ordering::Relaxed);
    let wire = WireStats {
        frames_in: metrics.frames_in.load(Ordering::Relaxed),
        frames_out: metrics.frames_out.load(Ordering::Relaxed),
        bytes_in: metrics.wire_bytes_in.load(Ordering::Relaxed),
        bytes_out: metrics.wire_bytes_out.load(Ordering::Relaxed),
        decode_errors: metrics.wire_decode_errors.load(Ordering::Relaxed),
        bin_negotiated: metrics.bin_negotiated.load(Ordering::Relaxed),
        connections_bin,
        connections_json: open.saturating_sub(connections_bin),
    };
    StatusSnapshot {
        poller: shared.poller_counters.stats(shared.poller_backend),
        shard: shared.shard.as_ref().map(|state| ShardStatus {
            index: state.spec.index,
            count: state.spec.count,
            epoch: shared.repl.epoch(),
            wrong_shard: metrics.wrong_shard.load(Ordering::Relaxed),
        }),
        workers: shared.pool.workers(),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        connections: metrics.connections.load(Ordering::Relaxed),
        open_connections: metrics.open_connections.load(Ordering::Relaxed),
        refine: metrics.refine.load(Ordering::Relaxed),
        highest_theta: metrics.highest_theta.load(Ordering::Relaxed),
        lowest_k: metrics.lowest_k.load(Ordering::Relaxed),
        status: metrics.status.load(Ordering::Relaxed),
        shutdowns: metrics.shutdown.load(Ordering::Relaxed),
        errors: metrics.errors.load(Ordering::Relaxed),
        batches: metrics.batches.load(Ordering::Relaxed),
        batched_requests: metrics.batched_requests.load(Ordering::Relaxed),
        cache,
        flight: FlightStats {
            leaders: metrics.flight_leaders.load(Ordering::Relaxed),
            shared: metrics.flight_shared.load(Ordering::Relaxed),
            aborted: metrics.flight_aborted.load(Ordering::Relaxed),
        },
        persist,
        persist_errors: metrics.persist_errors.load(Ordering::Relaxed),
        replication: shared.repl.status(),
        not_leader: metrics.not_leader.load(Ordering::Relaxed),
        tenants: shared.tenants.snapshot(),
        tenant_cache,
        wire,
        solver: SolverStats {
            mode: shared.solver.name(),
            restart_base: shared.solver_restarts.unwrap_or(0),
            cold_solves: metrics.solver_cold.load(Ordering::Relaxed),
            warm_solves: metrics.solver_warm.load(Ordering::Relaxed),
            repaired_hints: metrics.solver_repaired.load(Ordering::Relaxed),
            seed_lookups: metrics.solver_seed_lookups.load(Ordering::Relaxed),
            seed_hits: metrics.solver_seed_hits.load(Ordering::Relaxed),
            nodes: metrics.solver_nodes.load(Ordering::Relaxed),
            propagations: metrics.solver_propagations.load(Ordering::Relaxed),
            conflicts: metrics.solver_conflicts.load(Ordering::Relaxed),
            restarts: metrics.solver_restarts.load(Ordering::Relaxed),
            portfolio_greedy: metrics.portfolio_greedy.load(Ordering::Relaxed),
            portfolio_warm: metrics.portfolio_warm.load(Ordering::Relaxed),
            portfolio_cold: metrics.portfolio_cold.load(Ordering::Relaxed),
        },
        traces: metrics.trace.load(Ordering::Relaxed),
        observe: shared.observe.snapshot(),
    }
}

/// Upper bound on one request line. Signature views are compact (DBpedia
/// Persons is 64 signatures over 8 properties); 32 MiB leaves orders of
/// magnitude of headroom while keeping one hostile connection from growing
/// an unbounded buffer.
const MAX_REQUEST_LINE: usize = 32 * 1024 * 1024;

/// Upper bound on un-flushed response bytes per connection; a client that
/// requests heavily but never reads is disconnected at this point.
const MAX_OUT_BUFFER: usize = 64 * 1024 * 1024;

/// How long a graceful shutdown waits for in-flight work and un-flushed
/// responses before giving up on slow clients.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Bytes read per `read()` call on a readable socket.
const READ_CHUNK: usize = 64 * 1024;

/// Slack on top of [`MAX_REQUEST_LINE`] for a buffered-but-incomplete
/// `bin1` frame: a maximal header (magic, version, kind, tenant up to 64
/// bytes, two varints) in front of a maximal payload.
const MAX_FRAME_HEADER: usize = 96;

/// Upper bound on iovec entries per `write_vectored` call (Linux caps a
/// single writev at `IOV_MAX`/1024; 64 already amortises the syscall).
const WRITE_BATCH_IOVECS: usize = 64;

/// Owned output fragments at or below this size are merged into the
/// previous owned fragment instead of costing their own iovec entry
/// (envelope prefixes, separators, frame headers are all tiny).
const MERGE_CHUNK: usize = 4096;

/// How long the listener stays muted after a persistent `accept` failure
/// (EMFILE under fd exhaustion being the classic) before the loop re-arms
/// it and retries. Level-triggered backends would otherwise re-report the
/// un-drained backlog every `wait` and spin the retry at full speed.
const ACCEPT_RETRY: Duration = Duration::from_millis(50);

/// One piece of an outgoing message. Owned fragments carry envelopes,
/// separators, and frame headers; shared fragments alias the cache's
/// `Arc<String>` result texts, so a hit's payload is flushed to the socket
/// without ever being copied into a per-response `String`.
enum Chunk {
    Owned(Vec<u8>),
    Shared(Arc<String>),
}

impl Chunk {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Chunk::Owned(bytes) => bytes,
            Chunk::Shared(text) => text.as_bytes(),
        }
    }

    fn len(&self) -> usize {
        self.as_bytes().len()
    }
}

/// One response payload, assembled as a chunk list instead of a
/// concatenated `String`: a batch splices its elements' chunks between the
/// envelope fragments (no `Vec<String>` join), and cache hits alias the
/// cached result text. The line terminator (JSON framing) or frame header
/// (`bin1`) is added when the message is staged for writing.
struct Msg {
    chunks: Vec<Chunk>,
    len: usize,
    /// Trace spans riding with this response: they finish (and reach the
    /// histograms/recorder) only once the response's last byte has been
    /// flushed to the socket, so the flush stage is measured honestly.
    spans: Vec<ActiveSpan>,
}

impl Msg {
    fn new() -> Msg {
        Msg {
            chunks: Vec::new(),
            len: 0,
            spans: Vec::new(),
        }
    }

    fn from_line(line: String) -> Msg {
        let mut msg = Msg::new();
        msg.push_owned(line.into_bytes());
        msg
    }

    fn push_owned(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len();
        if let Some(Chunk::Owned(back)) = self.chunks.last_mut() {
            if back.len() + bytes.len() <= MERGE_CHUNK {
                back.extend_from_slice(&bytes);
                return;
            }
        }
        self.chunks.push(Chunk::Owned(bytes));
    }

    fn push_str(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.len += text.len();
        if let Some(Chunk::Owned(back)) = self.chunks.last_mut() {
            if back.len() + text.len() <= MERGE_CHUNK {
                back.extend_from_slice(text.as_bytes());
                return;
            }
        }
        self.chunks.push(Chunk::Owned(text.as_bytes().to_vec()));
    }

    fn push_shared(&mut self, text: Arc<String>) {
        if text.is_empty() {
            return;
        }
        self.len += text.len();
        self.chunks.push(Chunk::Shared(text));
    }

    fn append(&mut self, other: Msg) {
        for chunk in other.chunks {
            match chunk {
                Chunk::Owned(bytes) => self.push_owned(bytes),
                Chunk::Shared(text) => self.push_shared(text),
            }
        }
        self.spans.extend(other.spans);
    }

    /// Attaches a traced request's span (if any) to this response.
    fn attach(&mut self, span: Option<Box<ActiveSpan>>) {
        if let Some(span) = span {
            self.spans.push(*span);
        }
    }
}

/// The chunked equivalent of [`encode_success`] for a result that already
/// lives behind an `Arc` (cache hits, completion fan-out): the envelope
/// fragments are owned, the result text is aliased.
fn success_msg(op: &str, source: Source, result: &Arc<String>) -> Msg {
    let (prefix, suffix) = encode_success_parts(op, source);
    let mut msg = Msg::new();
    msg.push_owned(prefix.into_bytes());
    msg.push_shared(Arc::clone(result));
    msg.push_str(suffix);
    msg
}

/// One response being assembled. Slots leave the connection in FIFO order,
/// so responses are written in request order even when solves complete out
/// of order. Each slot captures the framing negotiated when its request
/// arrived, so responses pipelined behind a `hello` still leave in the
/// framing their requests were sent under.
struct Slot {
    id: u64,
    framing: Framing,
    body: SlotBody,
}

enum SlotBody {
    /// The response payload is complete (not yet staged for writing).
    Ready(Msg),
    /// A single request waiting on a solve completion.
    PendingSingle,
    /// A batch waiting on `remaining` of its elements.
    Batch {
        items: Vec<Option<Msg>>,
        remaining: usize,
    },
}

/// A parked requester on the flight board: enough to route a completed
/// solve back into the right slot. The board returns the leader's token
/// first; followers receive `Source::Coalesced`.
struct Waiter {
    conn: u64,
    slot: u64,
    elem: Option<usize>,
    op: SolveOp,
    /// The requester's trace span, parked with the token while the solve
    /// is in flight (the whole wait is the span's solve stage).
    span: Option<Box<ActiveSpan>>,
}

/// One client connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    /// The socket's fd as registered with the poller (the registration
    /// token is the connection id).
    fd: Fd,
    /// The interest set currently registered; compared against the
    /// desired set after every pump so `modify` is only called on edges
    /// (write interest on when bytes queue, off when they drain).
    interest: Interest,
    read_buf: Vec<u8>,
    /// The framing this connection's *incoming* bytes are parsed under.
    /// Starts as line-JSON; a `hello {"framing":"bin1"}` switches it, and
    /// every byte after that hello's terminator must be a frame.
    framing: Framing,
    /// Un-flushed output, as a chunk queue: staged messages append their
    /// chunks here and `pump_write_conn` flushes them with vectored
    /// writes, so a response's bytes are never concatenated into one
    /// buffer.
    out: VecDeque<Chunk>,
    /// Bytes of `out`'s front chunk already written to the socket.
    out_front: usize,
    /// Total un-flushed bytes across `out` (backpressure accounting).
    out_len: usize,
    slots: VecDeque<Slot>,
    next_slot: u64,
    /// False once the peer half-closed (EOF); pending responses still
    /// flush before the connection is reaped.
    peer_open: bool,
    /// Set on fatal protocol violations (oversized line, bad UTF-8): stop
    /// reading, flush what is queued (ending with the error), then close.
    close_after_flush: bool,
    /// Set on socket errors: drop the connection without further I/O.
    dead: bool,
    /// Cumulative bytes flushed to the socket over the connection's life
    /// (the clock `pending_spans` offsets are measured against).
    flushed_bytes: u64,
    /// Spans whose response has been staged: `(offset, span)`, finalized
    /// once `flushed_bytes` reaches the offset — i.e. once the span's
    /// response bytes have actually left the server.
    pending_spans: VecDeque<(u64, ActiveSpan)>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        // One small request line, one response line per round trip:
        // Nagle's algorithm interacts with delayed ACKs to put a ~40 ms
        // floor under exactly this traffic pattern, so switch it off.
        let _ = stream.set_nodelay(true);
        let fd = raw_fd(&stream);
        Conn {
            stream,
            fd,
            interest: Interest::READ,
            read_buf: Vec::new(),
            framing: Framing::Json,
            out: VecDeque::new(),
            out_front: 0,
            out_len: 0,
            slots: VecDeque::new(),
            next_slot: 0,
            peer_open: true,
            close_after_flush: false,
            dead: false,
            flushed_bytes: 0,
            pending_spans: VecDeque::new(),
        }
    }

    /// Appends one chunk to the output queue, merging small owned
    /// fragments into the previous owned chunk so a control response does
    /// not fan out into per-fragment iovec entries.
    fn push_out(&mut self, chunk: Chunk) {
        let len = chunk.len();
        if len == 0 {
            return;
        }
        self.out_len += len;
        if let (Chunk::Owned(bytes), Some(Chunk::Owned(back))) = (&chunk, self.out.back_mut()) {
            if back.len() + len <= MERGE_CHUNK {
                back.extend_from_slice(bytes);
                return;
            }
        }
        self.out.push_back(chunk);
    }

    /// Moves every leading completed slot into the output queue, in order,
    /// adding the framing-appropriate envelope: a line terminator for the
    /// JSON framing, a response frame header for `bin1`. Returns the
    /// number of `bin1` frames staged (the caller counts them).
    fn stage_ready(&mut self) -> u64 {
        let mut frames = 0u64;
        while matches!(self.slots.front(), Some(slot) if matches!(slot.body, SlotBody::Ready(_))) {
            let slot = self.slots.pop_front().expect("front just matched");
            let SlotBody::Ready(mut msg) = slot.body else {
                unreachable!("front just matched Ready");
            };
            let spans = std::mem::take(&mut msg.spans);
            match slot.framing {
                Framing::Json => {
                    for chunk in msg.chunks {
                        self.push_out(chunk);
                    }
                    match self.out.back_mut() {
                        Some(Chunk::Owned(back)) => {
                            back.push(b'\n');
                            self.out_len += 1;
                        }
                        _ => self.push_out(Chunk::Owned(vec![b'\n'])),
                    }
                }
                Framing::Bin1 => {
                    // Responses carry no tenant tag in the header; the
                    // payload's envelope already says everything.
                    let header = encode_frame_header(FrameKind::Response, "", msg.len);
                    self.push_out(Chunk::Owned(header));
                    for chunk in msg.chunks {
                        self.push_out(chunk);
                    }
                    frames += 1;
                }
            }
            // The response's last byte now sits `out_len` flushed bytes
            // away; its spans finish when the flush clock reaches it.
            let offset = self.flushed_bytes + self.out_len as u64;
            for span in spans {
                self.pending_spans.push_back((offset, span));
            }
        }
        frames
    }

    /// Consumes `n` flushed bytes off the front of the output queue.
    /// Fully-written chunks are popped (no memmove of the remainder, which
    /// is what the old contiguous `out` buffer paid under backpressure).
    fn advance_out(&mut self, mut n: usize) {
        self.flushed_bytes += n as u64;
        self.out_len -= n;
        while n > 0 {
            let front_left = self
                .out
                .front()
                .map(|chunk| chunk.len() - self.out_front)
                .expect("advance_out past the queue");
            if n >= front_left {
                n -= front_left;
                self.out.pop_front();
                self.out_front = 0;
            } else {
                self.out_front += n;
                n = 0;
            }
        }
    }

    fn flushed(&self) -> bool {
        self.out_len == 0
    }

    /// Drains every span still waiting on this connection — in
    /// `pending_spans` behind the flush clock, or buried in a not-yet
    /// staged slot — for teardown accounting. A connection that dies
    /// mid-flush must not strand its spans: the caller finishes them as
    /// `aborted` so they still roll into the histograms and the flight
    /// recorder instead of silently vanishing from the books.
    fn take_orphan_spans(&mut self) -> Vec<ActiveSpan> {
        let mut orphans: Vec<ActiveSpan> =
            self.pending_spans.drain(..).map(|(_, span)| span).collect();
        for slot in &mut self.slots {
            match &mut slot.body {
                SlotBody::Ready(msg) => orphans.append(&mut msg.spans),
                SlotBody::Batch { items, .. } => {
                    for item in items.iter_mut().flatten() {
                        orphans.append(&mut item.spans);
                    }
                }
                SlotBody::PendingSingle => {}
            }
        }
        orphans
    }

    /// Queues an error response as the final slot and begins teardown.
    fn fatal(&mut self, message: &str) {
        let id = self.next_slot;
        self.next_slot += 1;
        self.slots.push_back(Slot {
            id,
            framing: self.framing,
            body: SlotBody::Ready(Msg::from_line(encode_error(message))),
        });
        self.peer_open = false;
        self.close_after_flush = true;
    }
}

/// The poller token of the listening socket. Connection tokens are the
/// connection ids (monotonic from 0, never reused, so a stale kernel
/// event can never alias a newer connection); `u64::MAX` is the poller's
/// internal waker.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// The registered fd of a socket. The scan backend never dereferences
/// fds, so non-Unix builds (which lack `AsRawFd`) pass a placeholder.
#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(io: &T) -> Fd {
    io.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_io: &T) -> Fd {
    0
}

/// The event loop: owns the listener, every connection, the flight board,
/// the poller, and the scratch read buffer. Runs on one thread; workers
/// communicate back through `Shared::completions` + the poller's waker.
struct EventLoop {
    shared: Arc<Shared>,
    listener: Option<TcpListener>,
    listener_fd: Fd,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    board: FlightBoard<CacheKey, Waiter>,
    /// Leader-side replication: which connections are subscriber feeds.
    hub: ReplicaHub,
    pending_jobs: usize,
    stopping: bool,
    drain_deadline: Option<Instant>,
    /// While set, the listener's interest is muted after a persistent
    /// accept failure; accepting resumes once the instant passes.
    accept_muted_until: Option<Instant>,
    scratch: Vec<u8>,
    poller: Box<dyn Poller>,
    /// Readiness reports of the current round (reused allocation).
    events: Vec<Event>,
    /// Connections that queued or flushed bytes this round (reused
    /// allocation): only these get a write pump and an interest
    /// re-evaluation, so a round's cost tracks the work it did, not the
    /// number of open connections.
    touched: Vec<u64>,
    /// Recently solved `refine` instances, consulted on the miss path for
    /// warm-start neighbors (see [`crate::hints`]). Owned by the loop
    /// thread, so no lock: workers only carry hints, never the index.
    hints: HintIndex,
    /// Micros the current request line/frame took to decode, stamped right
    /// after the decode call and read by `handle_request` when it opens a
    /// span (elements of one batch share the line's decode cost). Always 0
    /// when tracing is disabled — decode is not timed at all then.
    pending_decode_us: u64,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>, poller: Box<dyn Poller>) -> Self {
        let listener_fd = raw_fd(&listener);
        EventLoop {
            shared,
            listener: Some(listener),
            listener_fd,
            conns: HashMap::new(),
            next_conn: 0,
            board: FlightBoard::new(),
            hub: ReplicaHub::new(),
            pending_jobs: 0,
            stopping: false,
            drain_deadline: None,
            accept_muted_until: None,
            scratch: vec![0; READ_CHUNK],
            poller,
            events: Vec::new(),
            touched: Vec::new(),
            hints: HintIndex::new(),
            pending_decode_us: 0,
        }
    }

    fn run(mut self) {
        if let Err(err) = self
            .poller
            .register(self.listener_fd, LISTENER_TOKEN, Interest::READ)
        {
            // Accepting is impossible; serve nothing but exit cleanly.
            eprintln!("strudel-server: registering the listener failed: {err}");
            return;
        }
        // The first round sweeps unconditionally: a connection may already
        // be sitting in the accept backlog.
        let mut progress = true;
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                self.begin_stop();
            }
            self.maybe_rearm_listener();
            // After a round that did work, poll without blocking (there
            // may be more ready already); otherwise sleep until an event,
            // a waker fire, or the next maintenance deadline (heartbeat,
            // group fsync, drain grace), whichever is soonest. With
            // nothing to wait for, the epoll backend blocks indefinitely
            // — a fully idle server costs zero wake-ups.
            let timeout = if progress {
                Some(Duration::ZERO)
            } else {
                self.next_timeout()
            };
            let mut events = std::mem::take(&mut self.events);
            if let Err(err) = self.poller.wait(&mut events, timeout) {
                eprintln!("strudel-server: poller wait failed: {err}");
                thread::sleep(poller::MAX_PARK); // do not spin on a broken poller
            }
            progress = false;
            for event in &events {
                match event.token {
                    LISTENER_TOKEN => progress |= self.accept_new(),
                    token => {
                        let Some(mut conn) = self.conns.remove(&token) else {
                            continue; // reaped earlier this round
                        };
                        if event.hangup {
                            // The peer is gone in both directions: nobody
                            // is left to read a flush, so drop without
                            // further I/O (level-triggered HUP would
                            // otherwise re-report forever).
                            conn.dead = true;
                            progress = true;
                        } else if event.readable && !self.stopping {
                            progress |= self.pump_read_conn(token, &mut conn);
                        }
                        self.conns.insert(token, conn);
                        self.touched.push(token);
                    }
                }
            }
            self.events = events;
            progress |= self.apply_completions();
            progress |= self.tick_replication();
            // Everything below works off this round's touched set, so a
            // round's cost tracks the work it did, not the number of open
            // connections: a connection can only need a flush, an
            // interest edge, or reaping through a path that pushed its id
            // here (reads, completion fills, replication delivery,
            // writable/hangup events, write errors).
            let mut touched = std::mem::take(&mut self.touched);
            touched.sort_unstable();
            touched.dedup();
            progress |= self.flush_touched(&touched);
            self.tick_persist_sync();
            self.reap(&touched);
            touched.clear();
            self.touched = touched; // hand the allocation back

            // The round's interest changes are all in: backends that
            // batch them (uring) get one chance to submit before the
            // wait, so N changes cost one kernel entry, not N.
            if let Err(err) = self.poller.flush() {
                eprintln!("strudel-server: poller flush failed: {err}");
            }
            if self.stopping && self.drained() {
                break;
            }
        }
        self.finish();
    }

    /// The soonest maintenance deadline, as a poller-wait bound: the
    /// replication heartbeat (subscribers only), the group-fsync window
    /// (dirty segment only), and the drain grace (shutdown only). `None`
    /// means nothing is scheduled — wait for I/O alone.
    fn next_timeout(&self) -> Option<Duration> {
        let mut timeout: Option<Duration> = None;
        let mut consider = |due: Duration| {
            timeout = Some(timeout.map_or(due, |current: Duration| current.min(due)));
        };
        if let Some(due) = self.hub.heartbeat_due_in() {
            consider(due);
        }
        // A refused tenant's next token arrival bounds the wait, so a
        // retrying client is admitted as soon as its bucket refills even
        // on an otherwise-idle epoll server (which would block forever).
        let tenants = &self.shared.tenants;
        if let Some(due) = tenants.next_refill_due_in(tenants.now()) {
            consider(due);
        }
        if let Some(store) = self.shared.persist.lock().expect("persist lock").as_ref() {
            if let Some(due) = store.sync_due_in() {
                consider(due);
            }
        }
        if let Some(deadline) = self.drain_deadline {
            consider(deadline.saturating_duration_since(Instant::now()));
        }
        if let Some(until) = self.accept_muted_until {
            consider(until.saturating_duration_since(Instant::now()));
        }
        timeout
    }

    /// Restores the muted listener's read interest once its backoff has
    /// passed (see [`ACCEPT_RETRY`]) and retries the accept immediately.
    fn maybe_rearm_listener(&mut self) {
        let Some(until) = self.accept_muted_until else {
            return;
        };
        if Instant::now() < until {
            return;
        }
        self.accept_muted_until = None;
        if self.listener.is_some() {
            let _ = self
                .poller
                .modify(self.listener_fd, LISTENER_TOKEN, Interest::READ);
            self.accept_new();
        }
    }

    /// Keeps idle replication feeds alive: publishes a heartbeat
    /// checkpoint once [`replica::HEARTBEAT_INTERVAL`] has passed without
    /// traffic, so followers can tell a quiet leader from a dead one.
    fn tick_replication(&mut self) -> bool {
        if !self.hub.heartbeat_due() {
            return false;
        }
        let live = self
            .shared
            .cache
            .lock()
            .expect("cache lock")
            .stats()
            .entries as u64;
        if let Some((line, ids)) = self.hub.publish_checkpoint(&self.shared.repl, live) {
            self.deliver_to_subscribers(line, ids);
            return true;
        }
        false
    }

    /// Interval-fsync maintenance: syncs a dirty segment whose window has
    /// elapsed, so the last write of a burst is durable without waiting
    /// for the next request.
    fn tick_persist_sync(&mut self) {
        let mut persist = self.shared.persist.lock().expect("persist lock");
        if let Some(store) = persist.as_mut() {
            if let Err(err) = store.tick_sync() {
                self.shared
                    .metrics
                    .persist_errors
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!("strudel-server: segment fsync failed: {err}");
            }
        }
    }

    /// Appends one record line to every subscriber feed, in slot order
    /// with whatever the connection already owes.
    fn deliver_to_subscribers(&mut self, line: String, ids: Vec<u64>) {
        for id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue; // reap will unsubscribe it
            };
            self.touched.push(id);
            let slot_id = conn.next_slot;
            conn.next_slot += 1;
            conn.slots.push_back(Slot {
                id: slot_id,
                framing: conn.framing,
                body: SlotBody::Ready(Msg::from_line(line.clone())),
            });
            conn.stage_ready();
        }
    }

    /// Enters graceful shutdown: close the listener (refusing new clients
    /// and freeing the port), stop reading new requests, and start the
    /// drain clock. In-flight solves and queued responses still complete.
    fn begin_stop(&mut self) {
        if self.stopping {
            return;
        }
        self.stopping = true;
        if self.listener.take().is_some() {
            let _ = self.poller.deregister(self.listener_fd, LISTENER_TOKEN);
        }
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        // Drop read interest everywhere: intake is over, and a readable
        // socket that will never be read must not re-report every round
        // (level-triggered backends would spin through the whole drain).
        for (&id, conn) in &mut self.conns {
            if conn.dead {
                continue;
            }
            let desired = Interest {
                read: false,
                write: !conn.flushed(),
            };
            if desired != conn.interest {
                conn.interest = desired;
                if self.poller.modify(conn.fd, id, desired).is_err() {
                    conn.dead = true;
                    self.touched.push(id); // reap works off the touched set
                }
            }
        }
    }

    /// Whether shutdown may complete: no solve in flight, no completion
    /// unapplied, every response flushed — or the grace period is over.
    fn drained(&self) -> bool {
        if self
            .drain_deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return true;
        }
        self.board.is_empty()
            && self.pending_jobs == 0
            && self
                .shared
                .completions
                .lock()
                .expect("completions lock")
                .is_empty()
            && self
                .conns
                .values()
                .all(|conn| conn.dead || (conn.slots.is_empty() && conn.flushed()))
    }

    /// Final barrier: close out anything the drain left behind (dead
    /// connections keep their un-flushed spans until here), then flush
    /// and fsync the persistent segment so a restart replays everything
    /// acknowledged before exit.
    fn finish(&mut self) {
        for conn in self.conns.values_mut() {
            for span in conn.take_orphan_spans() {
                self.shared.observe.finish_aborted(span);
            }
        }
        // A drain grace that expired mid-solve leaves waiters parked on
        // the flight board; their spans abort like any other orphan.
        for mut waiter in self.board.drain_all() {
            if let Some(span) = waiter.span.take() {
                self.shared.observe.finish_aborted(*span);
            }
        }
        let mut persist = self.shared.persist.lock().expect("persist lock");
        if let Some(store) = persist.as_mut() {
            if let Err(err) = store.flush() {
                self.shared
                    .metrics
                    .persist_errors
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!("strudel-server: flushing the persistent cache failed: {err}");
            }
        }
    }

    fn accept_new(&mut self) -> bool {
        let Some(listener) = &self.listener else {
            return false;
        };
        let mut any = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    self.shared
                        .metrics
                        .connections
                        .fetch_add(1, Ordering::Relaxed);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    let conn = Conn::new(stream);
                    if let Err(err) = self.poller.register(conn.fd, id, Interest::READ) {
                        // The socket closes on drop; the client sees a
                        // reset instead of a silent connection.
                        eprintln!("strudel-server: registering a connection failed: {err}");
                        continue;
                    }
                    self.shared
                        .metrics
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(id, conn);
                    any = true;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                // A connection that died while queued in the backlog
                // (aborted/reset before accept reached it), or a signal:
                // a per-connection casualty, not a listener problem —
                // accept(2) says to treat these like EAGAIN and retry.
                Err(err)
                    if matches!(
                        err.kind(),
                        ErrorKind::ConnectionAborted
                            | ErrorKind::ConnectionReset
                            | ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(_) => {
                    // Persistent accept failure (EMFILE/ENFILE-class
                    // resource exhaustion): mute the listener and retry
                    // after a backoff. A level-triggered backend keeps
                    // reporting the un-drained backlog as readable, so
                    // leaving the interest armed would spin the loop at
                    // full speed until an fd frees up.
                    self.accept_muted_until = Some(Instant::now() + ACCEPT_RETRY);
                    let _ = self
                        .poller
                        .modify(self.listener_fd, LISTENER_TOKEN, Interest::NONE);
                    break;
                }
            }
        }
        any
    }

    fn pump_read_conn(&mut self, id: u64, conn: &mut Conn) -> bool {
        if conn.dead || conn.close_after_flush || !conn.peer_open {
            return false;
        }
        let mut any = false;
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.peer_open = false;
                    any = true;
                    break;
                }
                Ok(n) => {
                    any = true;
                    self.shared
                        .metrics
                        .wire_bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                    if conn.read_buf.is_empty() {
                        // Fast path (the common case): no partial request
                        // is buffered, so parse straight out of the
                        // scratch buffer and copy only an incomplete tail
                        // into the connection buffer — a whole request
                        // per read never touches `read_buf` at all.
                        let scratch = std::mem::take(&mut self.scratch);
                        let consumed = self.process_input(id, conn, &scratch[..n]);
                        conn.read_buf.extend_from_slice(&scratch[consumed..n]);
                        self.scratch = scratch;
                    } else {
                        conn.read_buf.extend_from_slice(&self.scratch[..n]);
                        let buf = std::mem::take(&mut conn.read_buf);
                        let consumed = self.process_input(id, conn, &buf);
                        conn.read_buf = buf;
                        conn.read_buf.drain(..consumed);
                    }
                    if conn.close_after_flush || self.stopping {
                        break; // a fatal input, or a shutdown request, stops intake
                    }
                    if conn.read_buf.len() > MAX_REQUEST_LINE + MAX_FRAME_HEADER {
                        conn.fatal(&oversized_line_message());
                        break;
                    }
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return true;
                }
            }
        }
        // A final JSON request may arrive without its trailing newline
        // right before EOF (`printf '…' | nc` clients): dispatch the
        // buffered remainder as a line instead of silently dropping it. A
        // torn frame at EOF has no such convention — the connection just
        // closes.
        if !conn.peer_open
            && !conn.close_after_flush
            && !self.stopping
            && !conn.read_buf.is_empty()
            && conn.framing == Framing::Json
        {
            let buf = std::mem::take(&mut conn.read_buf);
            any |= self.handle_line_bytes(id, conn, &buf);
        }
        let staged = conn.stage_ready();
        if staged > 0 {
            self.shared
                .metrics
                .frames_out
                .fetch_add(staged, Ordering::Relaxed);
        }
        any
    }

    /// Parses and dispatches every complete request in `buf` under the
    /// connection's current framing — newline-delimited JSON lines, or
    /// `bin1` frames — and returns how many bytes were consumed. The
    /// framing can flip *mid-buffer*: bytes pipelined behind a
    /// `hello {"framing":"bin1"}` line parse as frames.
    fn process_input(&mut self, id: u64, conn: &mut Conn, buf: &[u8]) -> usize {
        let mut consumed = 0usize;
        while consumed < buf.len() {
            if conn.close_after_flush || self.stopping {
                break;
            }
            match conn.framing {
                Framing::Json => {
                    let Some(nl) = buf[consumed..].iter().position(|&b| b == b'\n') else {
                        break;
                    };
                    let line_bytes = &buf[consumed..consumed + nl];
                    consumed += nl + 1;
                    self.handle_line_bytes(id, conn, line_bytes);
                }
                Framing::Bin1 => match try_decode_frame(&buf[consumed..], MAX_REQUEST_LINE) {
                    Ok(None) => break, // torn frame: wait for more bytes
                    Ok(Some(view)) => {
                        let frame_len = view.consumed;
                        self.handle_frame(id, conn, &view);
                        consumed += frame_len;
                    }
                    Err(message) => {
                        self.shared
                            .metrics
                            .wire_decode_errors
                            .fetch_add(1, Ordering::Relaxed);
                        conn.fatal(&format!("invalid frame: {message}"));
                        break;
                    }
                },
            }
        }
        consumed
    }

    /// Dispatches one decoded `bin1` request frame. The payload is decoded
    /// zero-copy out of the read buffer; only the typed request that comes
    /// out of it owns its strings.
    fn handle_frame(&mut self, id: u64, conn: &mut Conn, view: &FrameView<'_>) {
        self.shared
            .metrics
            .frames_in
            .fetch_add(1, Ordering::Relaxed);
        if view.kind != FrameKind::Request {
            self.shared
                .metrics
                .wire_decode_errors
                .fetch_add(1, Ordering::Relaxed);
            conn.fatal("response frames are not valid requests");
            return;
        }
        let decode_started = self.shared.observe.enabled().then(Instant::now);
        let decoded = protocol::decode_payload(view.payload);
        self.pending_decode_us =
            decode_started.map_or(0, |started| started.elapsed().as_micros() as u64);
        self.dispatch_decoded(id, conn, decoded);
    }

    /// Validates and dispatches one framed line — the single code path for
    /// newline-terminated lines and the EOF-terminated remainder. Returns
    /// whether it did any work (a blank line is none); protocol violations
    /// mark the connection fatal via [`Conn::fatal`].
    fn handle_line_bytes(&mut self, id: u64, conn: &mut Conn, line_bytes: &[u8]) -> bool {
        if line_bytes.len() > MAX_REQUEST_LINE {
            conn.fatal(&oversized_line_message());
            return true;
        }
        match std::str::from_utf8(line_bytes) {
            Ok(line) if line.trim().is_empty() => false,
            Ok(line) => {
                self.dispatch_line(id, conn, line);
                true
            }
            Err(_) => {
                conn.fatal("request line is not UTF-8");
                true
            }
        }
    }

    /// Handles one request line: decodes it and hands off to the shared
    /// dispatch layer both framings lower into.
    fn dispatch_line(&mut self, id: u64, conn: &mut Conn, line: &str) {
        let decode_started = self.shared.observe.enabled().then(Instant::now);
        let decoded = protocol::decode_line(line);
        self.pending_decode_us =
            decode_started.map_or(0, |started| started.elapsed().as_micros() as u64);
        self.dispatch_decoded(id, conn, decoded);
    }

    /// The framing-independent dispatch: opens batch envelopes, runs each
    /// element through cache and flight board, and queues the response
    /// slot. Both the line path and the frame path end here.
    fn dispatch_decoded(&mut self, id: u64, conn: &mut Conn, decoded: Decoded) {
        let slot_id = conn.next_slot;
        conn.next_slot += 1;
        let body = match decoded {
            Decoded::Single(Err(err)) => {
                self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                SlotBody::Ready(Msg::from_line(encode_error(&err.message)))
            }
            // The replication handshake rebinds the connection (it becomes
            // a feed), so it is handled here where the connection is in
            // hand; it queues its own slots (response, snapshot, live).
            // Feeds stream newline-delimited record lines, so the
            // handshake requires the line framing.
            Decoded::Single(Ok(Request::ReplSubscribe { shard })) => {
                if conn.framing == Framing::Bin1 {
                    self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    SlotBody::Ready(Msg::from_line(encode_error(
                        "repl_subscribe needs the line-JSON framing; it streams record lines",
                    )))
                } else {
                    self.handle_subscribe(id, conn, slot_id, shard);
                    return;
                }
            }
            // The framing negotiation also rebinds the connection: the
            // acknowledgement (and everything after it) travels in the
            // *new* framing, while slots queued before the hello keep the
            // framing their requests arrived under.
            Decoded::Single(Ok(Request::Hello { framing })) => {
                SlotBody::Ready(Msg::from_line(self.handle_hello(conn, framing)))
            }
            Decoded::Single(Ok(request)) => match self.handle_request(request, id, slot_id, None) {
                Some(response) => SlotBody::Ready(response),
                None => SlotBody::PendingSingle,
            },
            Decoded::Batch(elements) => {
                let metrics = &self.shared.metrics;
                metrics.batches.fetch_add(1, Ordering::Relaxed);
                metrics
                    .batched_requests
                    .fetch_add(elements.len() as u64, Ordering::Relaxed);
                let mut items: Vec<Option<Msg>> = Vec::with_capacity(elements.len());
                let mut remaining = 0usize;
                for (elem, element) in elements.into_iter().enumerate() {
                    match element {
                        Err(err) => {
                            self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                            items.push(Some(Msg::from_line(encode_error(&err.message))));
                        }
                        Ok(request) => {
                            match self.handle_request(request, id, slot_id, Some(elem)) {
                                Some(response) => items.push(Some(response)),
                                None => {
                                    items.push(None);
                                    remaining += 1;
                                }
                            }
                        }
                    }
                }
                if remaining == 0 {
                    SlotBody::Ready(assemble_batch(items))
                } else {
                    SlotBody::Batch { items, remaining }
                }
            }
        };
        conn.slots.push_back(Slot {
            id: slot_id,
            framing: conn.framing,
            body,
        });
    }

    /// Applies a `hello` framing negotiation to the connection and returns
    /// the response line. Switching json→bin1 flips the connection before
    /// the slot is created, so the acknowledgement itself travels framed —
    /// the client learns the outcome from the first response byte (`0xB5`
    /// for a frame, `{` for a JSON line). Re-requesting the current
    /// framing is a no-op; bin1→json is refused (reconnect instead).
    fn handle_hello(&mut self, conn: &mut Conn, framing: Framing) -> String {
        match (conn.framing, framing) {
            (Framing::Json, Framing::Bin1) => {
                conn.framing = Framing::Bin1;
                let metrics = &self.shared.metrics;
                metrics.bin_negotiated.fetch_add(1, Ordering::Relaxed);
                metrics.bin_connections.fetch_add(1, Ordering::Relaxed);
                encode_hello_ok(Framing::Bin1)
            }
            (Framing::Bin1, Framing::Json) => {
                self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                encode_error("the framing cannot be renegotiated back to json; reconnect instead")
            }
            (current, _same) => encode_hello_ok(current),
        }
    }

    /// Turns a connection into a replication feed: validate the handshake,
    /// queue the response, then the snapshot (every resident entry, closed
    /// by a checkpoint), and register the connection for live records.
    fn handle_subscribe(
        &mut self,
        id: u64,
        conn: &mut Conn,
        slot_id: u64,
        shard: Option<ShardSpec>,
    ) {
        let refusal = if !self.shared.repl.is_writable() {
            Some("this server is a follower; subscribe to its leader".to_owned())
        } else {
            match (&self.shared.shard, &shard) {
                (None, None) => None,
                (Some(state), Some(spec)) if state.spec == *spec => None,
                (mine, theirs) => Some(format!(
                    "shard mismatch: this server is {}, the subscriber claims {}",
                    mine.as_ref()
                        .map_or("unsharded".to_owned(), |s| s.spec.to_string()),
                    theirs.map_or("unsharded".to_owned(), |s| s.to_string()),
                )),
            }
        };
        if let Some(message) = refusal {
            self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            conn.slots.push_back(Slot {
                id: slot_id,
                framing: conn.framing,
                body: SlotBody::Ready(Msg::from_line(encode_error(&message))),
            });
            return;
        }

        let repl = &self.shared.repl;
        let snapshot = self
            .shared
            .cache
            .lock()
            .expect("cache lock")
            .snapshot_lru_order_with_owners();
        let response = encode_success(
            "repl_subscribe",
            Source::Solved,
            &Json::obj(vec![
                ("epoch", Json::Int(repl.epoch() as i64)),
                ("leader_seq", Json::Int(repl.last_seq() as i64)),
                ("snapshot", Json::Int(snapshot.len() as i64)),
            ])
            .to_text(),
        );
        conn.slots.push_back(Slot {
            id: slot_id,
            framing: conn.framing,
            body: SlotBody::Ready(Msg::from_line(response)),
        });
        // The snapshot travels as ordinary put records (seq 0) in LRU
        // order — replaying it reconstructs the leader's recency ranking —
        // closed by a checkpoint announcing where the live stream stands.
        let mut lines: Vec<String> = snapshot
            .iter()
            .map(|(key, text, tenant)| replica::snapshot_record(repl.epoch(), key, text, tenant))
            .collect();
        lines.push(protocol::encode_repl_record(
            &strudel_core::wire::ReplRecord::Checkpoint {
                seq: repl.last_seq(),
                epoch: repl.epoch(),
                live: snapshot.len() as u64,
            },
        ));
        repl.note_sent(lines.len() as u64);
        for line in lines {
            let slot_id = conn.next_slot;
            conn.next_slot += 1;
            conn.slots.push_back(Slot {
                id: slot_id,
                framing: conn.framing,
                body: SlotBody::Ready(Msg::from_line(line)),
            });
        }
        conn.stage_ready();
        self.hub.add(id, repl);
    }

    /// Runs one request (standalone or batch element). Returns the response
    /// line if it completed synchronously (control ops, cache hits); a
    /// `None` means a token is parked on the flight board and the response
    /// arrives as a completion.
    fn handle_request(
        &mut self,
        request: Request,
        conn: u64,
        slot: u64,
        elem: Option<usize>,
    ) -> Option<Msg> {
        let metrics = &self.shared.metrics;
        match request {
            Request::Status => {
                metrics.status.fetch_add(1, Ordering::Relaxed);
                let body = snapshot(&self.shared).to_json().to_text();
                Some(Msg::from_line(encode_success(
                    "status",
                    Source::Solved,
                    &body,
                )))
            }
            Request::Shutdown => {
                metrics.shutdown.fetch_add(1, Ordering::Relaxed);
                self.shared.stop.store(true, Ordering::SeqCst);
                self.begin_stop();
                Some(Msg::from_line(encode_success(
                    "shutdown",
                    Source::Solved,
                    "{\"stopping\":true}",
                )))
            }
            // Handled in dispatch_decoded (they rebind the connection); an
            // element reaching here slipped past decode validation.
            Request::ReplSubscribe { .. } => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                Some(Msg::from_line(encode_error(
                    "repl_subscribe must arrive on its own line",
                )))
            }
            Request::Hello { .. } => {
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                Some(Msg::from_line(encode_error(
                    "hello must arrive on its own line",
                )))
            }
            Request::Promote => {
                if self.shared.repl.is_writable() {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    return Some(Msg::from_line(encode_error(
                        "already the leader; promote targets a follower",
                    )));
                }
                let epoch = self.shared.repl.promote();
                eprintln!("strudel-server: promoted to leader (replication epoch {epoch})");
                Some(Msg::from_line(encode_success(
                    "promote",
                    Source::Solved,
                    &Json::obj(vec![
                        ("role", Json::str("leader")),
                        ("epoch", Json::Int(epoch as i64)),
                    ])
                    .to_text(),
                )))
            }
            Request::Trace { slow_only, tenant } => {
                metrics.trace.fetch_add(1, Ordering::Relaxed);
                let spans = self.shared.observe.dump(slow_only, tenant.as_deref());
                let (depth, dropped) = self.shared.observe.recorder_stats();
                let body = Json::obj(vec![
                    ("depth", Json::Int(depth as i64)),
                    ("dropped", Json::Int(dropped as i64)),
                    (
                        "spans",
                        Json::Arr(spans.iter().map(|span| span.to_json()).collect()),
                    ),
                ])
                .to_text();
                Some(Msg::from_line(encode_success(
                    "trace",
                    Source::Solved,
                    &body,
                )))
            }
            Request::Solve(solve) => {
                // The span (if this request is traced) rides the whole
                // pipeline: stage laps are stamped at each gate below and
                // the span finishes when the response bytes are flushed.
                let mut span =
                    self.shared
                        .observe
                        .begin(conn, solve.op.name(), self.pending_decode_us);
                let key = solve.cache_key();
                // Ownership gate: a sharded server answers only keys its
                // ring arc covers. Misrouted or stale-ring requests get the
                // structured refusal *before* touching cache or workers, so
                // a confused client cannot fragment the keyspace across
                // shards (which would defeat single-flight and duplicate
                // cache entries cluster-wide). The epoch compared is the
                // *replication* epoch (ring epoch + promotions), which is
                // what refuses a resurrected old leader's stale stamps —
                // and, symmetrically, a failed-over router's new stamps on
                // the old leader. An unsharded server is epoch-wise shard
                // 0 of 1 (its base epoch is the one-shard ring's), so
                // stamped requests validate there too and replication
                // fail-over does not require `--shard`; unstamped
                // requests always pass its ownership check.
                {
                    let epoch = self.shared.repl.epoch();
                    let (index, owner, count) = match &self.shared.shard {
                        Some(state) => (
                            state.spec.index,
                            state.ring.route(key.view),
                            state.spec.count,
                        ),
                        None => (0, 0, 1),
                    };
                    let refusal = match solve.routing {
                        Some(stamp) if stamp.epoch != epoch => Some(format!(
                            "replication epoch mismatch: request stamped {}, this shard's \
                             epoch is {epoch} ({count} shards)",
                            stamp.epoch
                        )),
                        _ if owner != index => Some(format!(
                            "key {:032x} belongs to shard {owner}, this is shard {index}",
                            key.view
                        )),
                        _ => None,
                    };
                    if let Some(message) = refusal {
                        metrics.wrong_shard.fetch_add(1, Ordering::Relaxed);
                        metrics.errors.fetch_add(1, Ordering::Relaxed);
                        let mut msg = Msg::from_line(encode_wrong_shard(
                            &message,
                            &WrongShard {
                                shard: index,
                                owner,
                                epoch,
                            },
                        ));
                        if let Some(span) = span.as_mut() {
                            span.set_outcome("wrong_shard");
                        }
                        msg.attach(span);
                        return Some(msg);
                    }
                }
                // Admission gate: the tenant's token bucket meters every
                // solve — hit or miss — *before* the cache is touched, so
                // a flooding tenant cannot even monopolise lookup
                // bandwidth. Refusals are per-element (a mixed batch keeps
                // its other answers) and structured: the client learns the
                // tenant and a deterministic `retry_after_ms`.
                let tenant = solve
                    .tenant
                    .clone()
                    .unwrap_or_else(|| DEFAULT_TENANT.to_owned());
                if let Some(span) = span.as_mut() {
                    span.set_tenant(&tenant);
                }
                if let Err(retry_after_ms) = self.shared.tenants.admit(&tenant) {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let message =
                        format!("tenant '{tenant}' is over its admission rate; retry later");
                    let mut msg = Msg::from_line(encode_over_quota(
                        &message,
                        &OverQuota {
                            tenant,
                            retry_after_ms,
                        },
                    ));
                    if let Some(span) = span.as_mut() {
                        span.lap_admission();
                        span.set_outcome("over_quota");
                    }
                    msg.attach(span);
                    return Some(msg);
                }
                if let Some(span) = span.as_mut() {
                    span.lap_admission();
                }
                metrics.count_solve(solve.op);
                if let Some(result) = self.shared.cache.lock().expect("cache lock").get(&key) {
                    self.shared.tenants.count_hit(&tenant);
                    // The hit's payload is aliased, not copied: the
                    // envelope fragments own a few dozen bytes and the
                    // cached `Arc<String>` travels to the socket as its
                    // own iovec entry.
                    let mut msg = success_msg(solve.op.name(), Source::Cache, &result);
                    if let Some(span) = span.as_mut() {
                        span.lap_cache();
                        span.set_outcome("cache");
                    }
                    msg.attach(span);
                    return Some(msg);
                }
                self.shared.tenants.count_miss(&tenant);
                if let Some(span) = span.as_mut() {
                    span.lap_cache();
                }
                // Follower gate: a standby answers what its replicated
                // cache already holds (the hit path above); anything that
                // would *compute and insert* is a write, refused toward
                // the leader until promotion flips this shard writable.
                if !self.shared.repl.is_writable() {
                    metrics.not_leader.fetch_add(1, Ordering::Relaxed);
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let leader = self.shared.repl.leader_addr().unwrap_or_default();
                    let mut msg = Msg::from_line(encode_not_leader(
                        &format!("this shard is a follower; send writes to its leader at {leader}"),
                        &NotLeader { leader },
                    ));
                    if let Some(span) = span.as_mut() {
                        span.set_outcome("not_leader");
                    }
                    msg.attach(span);
                    return Some(msg);
                }
                // Pool gate: only a request that would *lead* a new solve
                // (no flight open for its key) is charged against its
                // tenant's compute-pool share — joining an open flight
                // costs no worker slot, so coalesced followers ride free.
                if !self.board.contains(&key) && !self.shared.tenants.pool_available(&tenant) {
                    let retry_after_ms = self.shared.tenants.refuse_pool(&tenant);
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let message =
                        format!("tenant '{tenant}' has no compute-pool share free; retry later");
                    let mut msg = Msg::from_line(encode_over_quota(
                        &message,
                        &OverQuota {
                            tenant,
                            retry_after_ms,
                        },
                    ));
                    if let Some(span) = span.as_mut() {
                        span.set_outcome("over_quota");
                    }
                    msg.attach(span);
                    return Some(msg);
                }
                let waiter = Waiter {
                    conn,
                    slot,
                    elem,
                    op: solve.op,
                    span,
                };
                match self.board.join(key.clone(), waiter) {
                    BoardJoin::Lead => {
                        metrics.flight_leaders.fetch_add(1, Ordering::Relaxed);
                        self.shared.tenants.begin_solve(&tenant);
                        self.pending_jobs += 1;
                        // Warm-start lookup: under a hint-consuming solver
                        // mode, a `refine` miss first asks the neighbor
                        // index for the nearest solved instance of the
                        // same question (params string, tenant included)
                        // over an almost-identical signature set. The hint
                        // travels into the worker; the index stays here.
                        let mode = self.shared.solver;
                        let restart_base = self.shared.solver_restarts;
                        let hint = if solve.op == SolveOp::Refine && mode.wants_hints() {
                            metrics.solver_seed_lookups.fetch_add(1, Ordering::Relaxed);
                            let identities = view_identities(&solve.view);
                            let hint = self.hints.lookup(&key.params, &identities);
                            if hint.is_some() {
                                metrics.solver_seed_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            hint
                        } else {
                            None
                        };
                        // Capture only the completion queue and the
                        // poller's waker (see the field doc on
                        // `Shared::completions`), never `Shared`.
                        let completions = Arc::clone(&self.shared.completions);
                        let waker = Arc::clone(&self.shared.waker);
                        self.shared.pool.submit(move || {
                            // A panicking solve must complete its flight
                            // regardless — followers are parked on it.
                            let (outcome, telemetry) =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    solve_job(&solve, mode, restart_base, hint)
                                }))
                                .unwrap_or_else(|_| {
                                    (
                                        Err("solve panicked in the worker".to_owned()),
                                        SolveTelemetry::default(),
                                    )
                                });
                            completions
                                .lock()
                                .expect("completions lock")
                                .push(Completion {
                                    key,
                                    tenant,
                                    outcome,
                                    telemetry,
                                });
                            waker.wake();
                        });
                    }
                    BoardJoin::Wait => {
                        metrics.flight_shared.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None
            }
        }
    }

    /// Applies finished solves: insert into the cache, write through to the
    /// segment, and fan the result out to every parked token (leader first,
    /// as `solved`; followers as `coalesced`).
    fn apply_completions(&mut self) -> bool {
        let completed: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        if completed.is_empty() {
            return false;
        }
        for completion in completed {
            self.pending_jobs -= 1;
            self.shared.tenants.end_solve(&completion.tenant);
            let tokens = self.board.complete(&completion.key);
            self.account_solver(&completion);
            match completion.outcome {
                Ok(text) => {
                    let text = Arc::new(text);
                    let evicted = self.shared.cache.lock().expect("cache lock").insert_for(
                        &completion.tenant,
                        completion.key.clone(),
                        Arc::clone(&text),
                    );
                    if let Some(victim) = &evicted {
                        self.shared.tenants.count_eviction(&victim.owner);
                    }
                    let victim_key = evicted.as_ref().map(|victim| &victim.key);
                    let compacted =
                        self.persist_insert(&completion.key, &text, &completion.tenant, victim_key);
                    self.replicate_insert(&completion.key, &text, &completion.tenant, victim_key);
                    if compacted {
                        let live = self
                            .shared
                            .cache
                            .lock()
                            .expect("cache lock")
                            .stats()
                            .entries as u64;
                        if let Some((line, ids)) =
                            self.hub.publish_checkpoint(&self.shared.repl, live)
                        {
                            self.deliver_to_subscribers(line, ids);
                        }
                    }
                    let engine = completion
                        .telemetry
                        .winner
                        .unwrap_or_else(|| self.shared.solver.name());
                    let nodes = completion.telemetry.nodes;
                    for (rank, mut waiter) in tokens.into_iter().enumerate() {
                        let source = if rank == 0 {
                            Source::Solved
                        } else {
                            Source::Coalesced
                        };
                        let mut msg = success_msg(waiter.op.name(), source, &text);
                        if let Some(mut span) = waiter.span.take() {
                            // The whole flight wait — queueing, solving,
                            // single-flight parking — is the solve stage.
                            span.lap_solve();
                            span.set_engine(engine, nodes);
                            span.set_outcome(if rank == 0 { "solved" } else { "coalesced" });
                            msg.attach(Some(span));
                        }
                        self.fill(waiter, msg);
                    }
                }
                Err(message) => {
                    // Errors are shared with everyone parked on the flight
                    // (they asked the same question) but never cached or
                    // persisted: a later retry re-solves.
                    for mut waiter in tokens {
                        self.shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        let mut msg = Msg::from_line(encode_error(&message));
                        if let Some(mut span) = waiter.span.take() {
                            span.lap_solve();
                            span.set_outcome("error");
                            msg.attach(Some(span));
                        }
                        self.fill(waiter, msg);
                    }
                }
            }
        }
        true
    }

    /// Rolls one completion's solver telemetry into the metrics and, on a
    /// successful `refine`, remembers the solution in the neighbor index
    /// so the *next* close-by instance starts warm.
    fn account_solver(&mut self, completion: &Completion) {
        let metrics = &self.shared.metrics;
        let telemetry = &completion.telemetry;
        if telemetry.warm {
            metrics.solver_warm.fetch_add(1, Ordering::Relaxed);
        } else {
            metrics.solver_cold.fetch_add(1, Ordering::Relaxed);
        }
        if telemetry.repaired {
            metrics.solver_repaired.fetch_add(1, Ordering::Relaxed);
        }
        metrics
            .solver_nodes
            .fetch_add(telemetry.nodes, Ordering::Relaxed);
        metrics
            .solver_propagations
            .fetch_add(telemetry.propagations, Ordering::Relaxed);
        metrics
            .solver_conflicts
            .fetch_add(telemetry.conflicts, Ordering::Relaxed);
        metrics
            .solver_restarts
            .fetch_add(telemetry.restarts, Ordering::Relaxed);
        match telemetry.winner {
            Some("greedy") => {
                metrics.portfolio_greedy.fetch_add(1, Ordering::Relaxed);
            }
            Some("ilp-warm") => {
                metrics.portfolio_warm.fetch_add(1, Ordering::Relaxed);
            }
            Some("ilp-cold") => {
                metrics.portfolio_cold.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if completion.outcome.is_ok() {
            if let Some(solved) = &telemetry.solved {
                self.hints
                    .remember(&completion.key.params, completion.key.view, solved.clone());
            }
        }
    }

    /// Write-through: append the put (plus any eviction tombstone) to the
    /// segment, compacting when dead records cross the threshold. Returns
    /// whether a compaction ran (the caller announces it to replication
    /// subscribers as a checkpoint).
    fn persist_insert(
        &mut self,
        key: &CacheKey,
        text: &str,
        tenant: &str,
        evicted: Option<&CacheKey>,
    ) -> bool {
        // This is the one place a lock is acquired while another is held
        // (cache inside persist, for the compaction snapshot). It cannot
        // deadlock because no other path holds the cache lock across a
        // persist acquisition — `snapshot()` takes them strictly one at a
        // time; keep it that way.
        let snapshot = {
            let mut persist = self.shared.persist.lock().expect("persist lock");
            let Some(store) = persist.as_mut() else {
                return false;
            };
            let mut result = store.record_put_for(key, text, tenant);
            if let Some(victim) = evicted {
                result = result.and_then(|()| store.record_evict(victim));
            }
            match result {
                Err(err) => {
                    self.shared
                        .metrics
                        .persist_errors
                        .fetch_add(1, Ordering::Relaxed);
                    eprintln!("strudel-server: persistent cache write failed: {err}");
                    return false;
                }
                Ok(()) => {
                    if !store.should_compact() {
                        return false;
                    }
                }
            }
            self.shared
                .cache
                .lock()
                .expect("cache lock")
                .snapshot_lru_order_with_owners()
        };
        let mut persist = self.shared.persist.lock().expect("persist lock");
        let Some(store) = persist.as_mut() else {
            return false;
        };
        if let Err(err) = store.compact(
            snapshot.iter().map(|(k, v, t)| (k, v.as_str(), t.as_str())),
            self.shared.repl.last_seq(),
        ) {
            self.shared
                .metrics
                .persist_errors
                .fetch_add(1, Ordering::Relaxed);
            eprintln!("strudel-server: segment compaction failed: {err}");
            return false;
        }
        true
    }

    /// Replication fan-out of one completed insert: a put record (and, if
    /// capacity pushed something out, the matching evict record) to every
    /// subscriber feed. The publication clock ticks even with no
    /// subscribers — late joiners pick it up from their snapshot.
    fn replicate_insert(
        &mut self,
        key: &CacheKey,
        text: &str,
        tenant: &str,
        evicted: Option<&CacheKey>,
    ) {
        if let Some((line, ids)) = self.hub.publish_put(&self.shared.repl, key, text, tenant) {
            self.deliver_to_subscribers(line, ids);
        }
        if let Some(victim) = evicted {
            if let Some((line, ids)) = self.hub.publish_evict(&self.shared.repl, victim) {
                self.deliver_to_subscribers(line, ids);
            }
        }
    }

    /// Routes a completed response into its slot; tokens whose connection
    /// is already gone are counted as aborted.
    fn fill(&mut self, waiter: Waiter, mut msg: Msg) {
        self.touched.push(waiter.conn);
        let metrics = &self.shared.metrics;
        // Either abort path strands the spans riding on `msg` (the
        // requester's connection is gone, so their responses will never
        // flush): close them as `aborted` instead of dropping them.
        let Some(conn) = self.conns.get_mut(&waiter.conn) else {
            metrics.flight_aborted.fetch_add(1, Ordering::Relaxed);
            for span in msg.spans.drain(..) {
                self.shared.observe.finish_aborted(span);
            }
            return;
        };
        let Some(slot) = conn.slots.iter_mut().find(|slot| slot.id == waiter.slot) else {
            metrics.flight_aborted.fetch_add(1, Ordering::Relaxed);
            for span in msg.spans.drain(..) {
                self.shared.observe.finish_aborted(span);
            }
            return;
        };
        match (&mut slot.body, waiter.elem) {
            (SlotBody::PendingSingle, None) => slot.body = SlotBody::Ready(msg),
            (SlotBody::Batch { items, remaining }, Some(elem)) => {
                if items[elem].is_none() {
                    items[elem] = Some(msg);
                    *remaining -= 1;
                }
                if *remaining == 0 {
                    let items = std::mem::take(items);
                    slot.body = SlotBody::Ready(assemble_batch(items));
                }
            }
            _ => {}
        }
        let staged = conn.stage_ready();
        if staged > 0 {
            metrics.frames_out.fetch_add(staged, Ordering::Relaxed);
        }
    }

    /// Pumps writes and re-evaluates poller interest for every connection
    /// touched this round — one that read, queued a response (dispatch,
    /// completion fan-out, replication delivery), or was reported
    /// writable. Write interest is an *edge*: enabled exactly when a
    /// flush leaves bytes behind (the socket pushed back), disabled the
    /// moment the buffer drains, so level-triggered backends never spin
    /// on an idle writable socket. This is also what fixes the old scan
    /// loop's flush-starvation edge — a connection with a full write
    /// buffer and no new reads now has explicit WRITE interest and is
    /// flushed the moment the peer drains, instead of waiting out a park
    /// cycle.
    fn flush_touched(&mut self, ids: &[u64]) -> bool {
        let mut any = false;
        for &id in ids {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            any |= Self::pump_write_conn(conn, &self.shared.metrics);
            // Spans whose response bytes have fully left the socket are
            // done: stamp the flush stage and roll them into the
            // histograms/recorder.
            while conn
                .pending_spans
                .front()
                .is_some_and(|(offset, _)| *offset <= conn.flushed_bytes)
            {
                let (_, span) = conn.pending_spans.pop_front().expect("front just matched");
                self.shared.observe.finish(span);
            }
            let desired = Interest {
                read: conn.peer_open && !conn.close_after_flush && !self.stopping,
                write: !conn.flushed(),
            };
            if !conn.dead && desired != conn.interest {
                conn.interest = desired;
                if self.poller.modify(conn.fd, id, desired).is_err() {
                    conn.dead = true;
                }
            }
        }
        any
    }

    /// Writes as much of one connection's output queue as the socket
    /// accepts, gathering up to [`WRITE_BATCH_IOVECS`] chunks per
    /// `writev`-style vectored call: a batch of responses — envelope
    /// fragments, shared cache payloads, frame headers — leaves in one
    /// syscall without ever being copied into a contiguous buffer.
    fn pump_write_conn(conn: &mut Conn, metrics: &Metrics) -> bool {
        let mut any = false;
        while conn.out_len > 0 {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(conn.out.len().min(WRITE_BATCH_IOVECS));
            let mut chunks = conn.out.iter();
            if let Some(front) = chunks.next() {
                slices.push(IoSlice::new(&front.as_bytes()[conn.out_front..]));
            }
            for chunk in chunks.take(WRITE_BATCH_IOVECS - 1) {
                slices.push(IoSlice::new(chunk.as_bytes()));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    drop(slices);
                    metrics
                        .wire_bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                    conn.advance_out(n);
                    any = true;
                }
                Err(err) if err.kind() == ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.out_len > MAX_OUT_BUFFER {
            conn.dead = true; // requests heavily, never reads
        }
        any
    }

    /// Drops connections that are finished — dead, or closed with nothing
    /// left to flush. Only this round's touched ids are examined: every
    /// transition into a reapable state (an I/O error, a hangup event, an
    /// EOF read, the final flush of a closing connection, a completion
    /// landing on an EOF'd connection) happens on a path that pushed the
    /// id, so nothing lingers — it just waits for its transition round.
    fn reap(&mut self, ids: &[u64]) {
        for &id in ids {
            let gone = self.conns.get(&id).is_some_and(|conn| {
                conn.dead
                    || ((!conn.peer_open || conn.close_after_flush)
                        && conn.slots.is_empty()
                        && conn.flushed())
            });
            if !gone {
                continue;
            }
            let mut conn = self.conns.remove(&id).expect("presence just checked");
            // A span whose response never fully left the server would
            // otherwise wait forever on a flush clock that has stopped.
            for span in conn.take_orphan_spans() {
                self.shared.observe.finish_aborted(span);
            }
            // Deregister before the socket drops: a dead fd must leave
            // the interest list (the old loop kept re-scanning dead
            // connection slots until the end of the round that freed
            // them; the epoll backend would leak a kernel registration).
            let _ = self.poller.deregister(conn.fd, id);
            self.hub.remove(id, &self.shared.repl);
            if conn.framing == Framing::Bin1 {
                self.shared
                    .metrics
                    .bin_connections
                    .fetch_sub(1, Ordering::Relaxed);
            }
            self.shared
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn oversized_line_message() -> String {
    format!("request line exceeds {MAX_REQUEST_LINE} bytes; closing the connection")
}

/// Splices completed batch elements between the envelope fragments. All
/// items are `Some` by construction (`remaining` reached 0). Each
/// element's chunks — including shared cache payloads — move into the
/// batch message as-is: no per-element `String`, no join.
fn assemble_batch(items: Vec<Option<Msg>>) -> Msg {
    let mut msg = Msg::new();
    msg.push_str(protocol::BATCH_ENVELOPE_PREFIX);
    for (idx, item) in items.into_iter().enumerate() {
        if idx > 0 {
            msg.push_str(",");
        }
        msg.append(item.expect("all elements complete"));
    }
    msg.push_str(protocol::BATCH_ENVELOPE_SUFFIX);
    msg
}

/// The ILP configuration of the solver core: the request's budget, the
/// configured restart schedule, and — because restarting an input-order
/// search would replay the identical tree — activity branching whenever
/// restarts are on.
fn solver_ilp_config(time_limit: Option<Duration>, restart_base: Option<u64>) -> IlpEngineConfig {
    IlpEngineConfig {
        time_limit,
        restart_conflict_base: restart_base,
        brancher: if restart_base.is_some() {
            BrancherKind::Activity
        } else {
            BrancherKind::default()
        },
        ..IlpEngineConfig::default()
    }
}

/// Runs one solve on the worker thread. Returns the canonical serialization
/// of the result object (or an error message) plus the solver telemetry the
/// event loop rolls into its counters and neighbor index.
fn solve_job(
    request: &SolveRequest,
    mode: SolverMode,
    restart_base: Option<u64>,
    hint: Option<RefinementHint>,
) -> (Result<String, String>, SolveTelemetry) {
    let mut telemetry = SolveTelemetry::default();
    let outcome = solve_job_inner(request, mode, restart_base, hint, &mut telemetry);
    (outcome, telemetry)
}

fn solve_job_inner(
    request: &SolveRequest,
    mode: SolverMode,
    restart_base: Option<u64>,
    hint: Option<RefinementHint>,
    telemetry: &mut SolveTelemetry,
) -> Result<String, String> {
    // `refine` is the solver core's op: it can warm-start, race the
    // portfolio, and export its solution for future neighbors. The sweep
    // ops below only pick their engine per mode.
    if request.op == SolveOp::Refine {
        let k = request.k.expect("validated at decode");
        let theta = request.theta.expect("validated at decode");
        let (outcome, stats): (RefineOutcome, Option<SolveStats>) = match mode {
            SolverMode::Request => {
                let engine = request.engine.build(request.time_limit);
                let outcome = engine
                    .refine(&request.view, &request.spec, k, theta)
                    .map_err(|err| err.to_string())?;
                (outcome, None)
            }
            SolverMode::Greedy => {
                let engine = GreedyEngine::with_config(GreedyConfig {
                    time_limit: request.time_limit,
                    ..GreedyConfig::default()
                });
                let outcome = engine
                    .refine(&request.view, &request.spec, k, theta)
                    .map_err(|err| err.to_string())?;
                (outcome, None)
            }
            SolverMode::Ilp => {
                let engine =
                    IlpEngine::with_config(solver_ilp_config(request.time_limit, restart_base));
                let (outcome, stats) = engine
                    .refine_with_hint(&request.view, &request.spec, k, theta, hint.as_ref())
                    .map_err(|err| err.to_string())?;
                (outcome, Some(stats))
            }
            SolverMode::Portfolio => {
                let mut portfolio = PortfolioEngine::with_engines(
                    GreedyEngine::new(),
                    IlpEngine::with_config(solver_ilp_config(None, restart_base)),
                );
                if let Some(limit) = request.time_limit {
                    portfolio = portfolio.with_time_limit(limit);
                }
                let raced = portfolio
                    .refine_raced(&request.view, &request.spec, k, theta, hint.as_ref())
                    .map_err(|err| err.to_string())?;
                telemetry.winner = raced.winner.map(PortfolioArm::name);
                (raced.outcome, raced.stats)
            }
        };
        if let Some(stats) = stats {
            telemetry.warm = stats.hint_vars > 0;
            telemetry.nodes = stats.nodes;
            telemetry.propagations = stats.propagations;
            telemetry.conflicts = stats.conflicts;
            telemetry.restarts = stats.restarts;
            telemetry.repaired =
                telemetry.warm && stats.hint_mismatches > 0 && outcome.refinement().is_some();
        }
        if mode.wants_hints() {
            if let Some(refinement) = outcome.refinement() {
                telemetry.solved = Some(SolvedHint {
                    identities: view_identities(&request.view),
                    assignments: hint_from_refinement(&request.view, refinement).assignments,
                });
            }
        }
        return Ok(protocol::outcome_to_json(&WireOutcome::from_outcome(&outcome)).to_text());
    }

    let engine: Box<dyn RefinementEngine> = match mode {
        SolverMode::Request => request.engine.build(request.time_limit),
        SolverMode::Greedy => Box::new(GreedyEngine::with_config(GreedyConfig {
            time_limit: request.time_limit,
            ..GreedyConfig::default()
        })),
        SolverMode::Ilp => Box::new(IlpEngine::with_config(solver_ilp_config(
            request.time_limit,
            restart_base,
        ))),
        SolverMode::Portfolio => {
            let portfolio = PortfolioEngine::with_engines(
                GreedyEngine::new(),
                IlpEngine::with_config(solver_ilp_config(None, restart_base)),
            );
            Box::new(match request.time_limit {
                Some(limit) => portfolio.with_time_limit(limit),
                None => portfolio,
            })
        }
    };
    let result = match request.op {
        SolveOp::Refine => unreachable!("handled above"),
        SolveOp::HighestTheta => {
            let k = request.k.expect("validated at decode");
            let mut options = HighestThetaOptions::default();
            if let Some(step) = request.step {
                options.step = step;
            }
            let result = highest_theta(&request.view, &request.spec, k, engine.as_ref(), &options)
                .map_err(|err| err.to_string())?;
            protocol::highest_theta_to_json(&WireHighestTheta::from_result(&result))
        }
        SolveOp::LowestK => {
            let theta = request.theta.expect("validated at decode");
            let result = lowest_k(
                &request.view,
                &request.spec,
                theta,
                engine.as_ref(),
                SweepDirection::Upward,
                request.max_k,
            )
            .map_err(|err| err.to_string())?;
            protocol::lowest_k_to_json(&WireLowestK::from_result(&result))
        }
    };
    Ok(result.to_text())
}

/// Serves until a `shutdown` request arrives (the `strudel serve` entry
/// point) and returns the final counters.
pub fn serve(config: &ServerConfig) -> std::io::Result<StatusSnapshot> {
    Ok(start(config)?.wait())
}

#[cfg(test)]
mod conn_tests {
    use super::*;

    fn conn_with_chunks(chunks: Vec<Chunk>) -> Conn {
        // A throwaway socket: these tests only exercise the output-queue
        // bookkeeping, never the stream itself.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream);
        for chunk in chunks {
            conn.out_len += chunk.len();
            conn.out.push_back(chunk);
        }
        conn
    }

    fn remaining(conn: &Conn) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (idx, chunk) in conn.out.iter().enumerate() {
            let skip = if idx == 0 { conn.out_front } else { 0 };
            bytes.extend_from_slice(&chunk.as_bytes()[skip..]);
        }
        bytes
    }

    /// Pins the short-write bookkeeping for the case the vectored flush
    /// path depends on: one `write_vectored` consuming the whole front
    /// chunk *and* part of a later one (a large shared cache payload
    /// spliced mid-batch). The consumed count must pop fully-written
    /// chunks and re-offset into the first partial one — never re-send
    /// or skip a byte.
    #[test]
    fn advance_out_spans_chunk_boundaries() {
        let payload: Vec<u8> = (0u8..=255).cycle().take(9000).collect();
        let mut conn = conn_with_chunks(vec![
            Chunk::Owned(payload[..100].to_vec()),
            Chunk::Shared(Arc::new(String::from_utf8(vec![b'x'; 8000]).unwrap())),
            Chunk::Owned(payload[..900].to_vec()),
        ]);
        let mut expected = Vec::new();
        expected.extend_from_slice(&payload[..100]);
        expected.extend_from_slice(&vec![b'x'; 8000]);
        expected.extend_from_slice(&payload[..900]);
        assert_eq!(remaining(&conn), expected);

        // Front chunk + 60 bytes into the shared chunk, in one write.
        conn.advance_out(160);
        assert_eq!(conn.out.len(), 2);
        assert_eq!(conn.out_front, 60);
        assert_eq!(conn.out_len, expected.len() - 160);
        assert_eq!(remaining(&conn), &expected[160..]);

        // The rest of the shared chunk + the entire tail chunk: exactly
        // to the end, leaving a clean (empty, zero-offset) queue.
        conn.advance_out(expected.len() - 160);
        assert!(conn.out.is_empty());
        assert_eq!(conn.out_front, 0);
        assert_eq!(conn.out_len, 0);
        assert_eq!(conn.flushed_bytes, expected.len() as u64);
    }

    /// A short write inside the front chunk only moves the offset; a
    /// follow-up that exactly finishes the chunk pops it and resets the
    /// offset for the next front.
    #[test]
    fn advance_out_partial_front_then_exact_pop() {
        let mut conn = conn_with_chunks(vec![
            Chunk::Owned(vec![1u8; 50]),
            Chunk::Owned(vec![2u8; 70]),
        ]);
        conn.advance_out(20);
        assert_eq!((conn.out.len(), conn.out_front, conn.out_len), (2, 20, 100));
        conn.advance_out(30);
        assert_eq!((conn.out.len(), conn.out_front, conn.out_len), (1, 0, 70));
        conn.advance_out(70);
        assert!(conn.out.is_empty() && conn.flushed());
    }

    /// Multi-chunk consumption in a single call across *three* chunks —
    /// two popped whole, the third entered partially.
    #[test]
    fn advance_out_pops_multiple_whole_chunks() {
        let mut conn = conn_with_chunks(vec![
            Chunk::Owned(vec![1u8; 10]),
            Chunk::Owned(vec![2u8; 10]),
            Chunk::Owned(vec![3u8; 10]),
        ]);
        conn.advance_out(25);
        assert_eq!((conn.out.len(), conn.out_front, conn.out_len), (1, 5, 5));
        assert_eq!(remaining(&conn), vec![3u8; 5]);
    }
}
