//! The refinement daemon: TCP accept loop, request dispatch, and metrics.
//!
//! Architecture (one box per module):
//!
//! ```text
//!  TCP clients ──► accept loop ──► connection threads (1/client, I/O-bound)
//!                                        │ one JSON line per request
//!                                        ▼
//!                     dispatch: cache ──hit──► replay cached bytes
//!                        │ miss
//!                        ▼
//!                  single-flight: follower ──► wait, share leader's bytes
//!                        │ leader
//!                        ▼
//!                  worker pool (fixed size, CPU-bound) ──► engine solve
//!                        │ serialize once
//!                        ▼
//!              cache.insert + flight.complete + respond
//! ```
//!
//! The solve path serializes a result exactly once; every later identical
//! request — concurrent (single-flight) or subsequent (cache) — receives
//! those same bytes.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use strudel_core::prelude::{highest_theta, lowest_k, HighestThetaOptions, SweepDirection};
use strudel_core::wire::{WireHighestTheta, WireLowestK, WireOutcome};

use crate::cache::{CacheStats, LruCache};
use crate::flight::{FlightStats, Join, SingleFlight};
use crate::json::Json;
use crate::pool::WorkerPool;
use crate::protocol::{
    self, decode_request, encode_error, encode_success, CacheKey, Request, SolveOp, SolveRequest,
    Source,
};

/// Configuration of a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick one (tests do).
    pub addr: String,
    /// Worker threads solving instances (the CPU concurrency bound).
    pub workers: usize,
    /// Result cache capacity, in entries.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7464".to_owned(),
            workers: 4,
            cache_capacity: 1024,
        }
    }
}

/// Everything the connection threads share.
struct Shared {
    cache: Mutex<LruCache<CacheKey, Arc<String>>>,
    flight: SingleFlight<CacheKey, Result<Arc<String>, String>>,
    pool: WorkerPool,
    metrics: Metrics,
    stop: AtomicBool,
    started: Instant,
    /// The bound listener address, kept so a `shutdown` request can poke
    /// the accept loop out of its blocking `accept()`.
    addr: SocketAddr,
}

/// Per-operation request counters.
#[derive(Default)]
struct Metrics {
    refine: AtomicU64,
    highest_theta: AtomicU64,
    lowest_k: AtomicU64,
    status: AtomicU64,
    shutdown: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
}

impl Metrics {
    fn count_solve(&self, op: SolveOp) {
        match op {
            SolveOp::Refine => &self.refine,
            SolveOp::HighestTheta => &self.highest_theta,
            SolveOp::LowestK => &self.lowest_k,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time view of the server's counters (the `status` payload).
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// Worker threads.
    pub workers: usize,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted so far.
    pub connections: u64,
    /// `refine` requests served.
    pub refine: u64,
    /// `highest-theta` requests served.
    pub highest_theta: u64,
    /// `lowest-k` requests served.
    pub lowest_k: u64,
    /// `status` requests served.
    pub status: u64,
    /// `shutdown` requests acknowledged.
    pub shutdowns: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Result cache counters.
    pub cache: CacheStats,
    /// Single-flight counters.
    pub flight: FlightStats,
}

impl StatusSnapshot {
    /// Encodes the snapshot as the `status` response's result object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workers", Json::Int(self.workers as i64)),
            ("uptime_ms", Json::Int(self.uptime_ms as i64)),
            ("connections", Json::Int(self.connections as i64)),
            (
                "requests",
                Json::obj(vec![
                    ("refine", Json::Int(self.refine as i64)),
                    ("highest_theta", Json::Int(self.highest_theta as i64)),
                    ("lowest_k", Json::Int(self.lowest_k as i64)),
                    ("status", Json::Int(self.status as i64)),
                    ("shutdown", Json::Int(self.shutdowns as i64)),
                    ("errors", Json::Int(self.errors as i64)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(self.cache.hits as i64)),
                    ("misses", Json::Int(self.cache.misses as i64)),
                    ("evictions", Json::Int(self.cache.evictions as i64)),
                    ("insertions", Json::Int(self.cache.insertions as i64)),
                    ("entries", Json::Int(self.cache.entries as i64)),
                    ("capacity", Json::Int(self.cache.capacity as i64)),
                ]),
            ),
            (
                "singleflight",
                Json::obj(vec![
                    ("leaders", Json::Int(self.flight.leaders as i64)),
                    ("shared", Json::Int(self.flight.shared as i64)),
                    ("aborted", Json::Int(self.flight.aborted as i64)),
                ]),
            ),
        ])
    }
}

/// A running server. Dropping the handle does not stop the server; call
/// [`ServerHandle::shutdown`] or send a `shutdown` request, then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Starts a server from a configuration. Returns once the listener is bound
/// (so `handle.addr()` is immediately connectable).
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        cache: Mutex::new(LruCache::new(config.cache_capacity)),
        flight: SingleFlight::new(),
        pool: WorkerPool::new(config.workers),
        metrics: Metrics::default(),
        stop: AtomicBool::new(false),
        started: Instant::now(),
        addr: local_addr,
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::Builder::new()
        .name("strudel-accept".to_owned())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(stream) => stream,
                    Err(_) => {
                        // Persistent accept failures (EMFILE under fd
                        // exhaustion being the classic) return instantly;
                        // without a pause this loop would pin a core and
                        // starve the connections whose closure frees fds.
                        thread::sleep(std::time::Duration::from_millis(20));
                        continue;
                    }
                };
                accept_shared
                    .metrics
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let connection_shared = Arc::clone(&accept_shared);
                let _ = thread::Builder::new()
                    .name("strudel-conn".to_owned())
                    .spawn(move || serve_connection(stream, &connection_shared));
            }
        })?;

    Ok(ServerHandle {
        local_addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The current counter snapshot.
    pub fn status(&self) -> StatusSnapshot {
        snapshot(&self.shared)
    }

    /// Asks the server to stop accepting connections (idempotent).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until the accept loop has exited (after [`Self::shutdown`] or
    /// a client's `shutdown` request) and returns the final counters.
    /// In-flight connections finish independently; the worker pool drains
    /// when the last handle and connection are gone.
    pub fn wait(mut self) -> StatusSnapshot {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        snapshot(&self.shared)
    }
}

fn snapshot(shared: &Shared) -> StatusSnapshot {
    StatusSnapshot {
        workers: shared.pool.workers(),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        connections: shared.metrics.connections.load(Ordering::Relaxed),
        refine: shared.metrics.refine.load(Ordering::Relaxed),
        highest_theta: shared.metrics.highest_theta.load(Ordering::Relaxed),
        lowest_k: shared.metrics.lowest_k.load(Ordering::Relaxed),
        status: shared.metrics.status.load(Ordering::Relaxed),
        shutdowns: shared.metrics.shutdown.load(Ordering::Relaxed),
        errors: shared.metrics.errors.load(Ordering::Relaxed),
        cache: shared.cache.lock().expect("cache lock").stats(),
        flight: shared.flight.stats(),
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // The accept loop blocks in accept(); poke it with a throwaway
    // connection so it observes the stop flag and exits. A listener bound
    // to an unspecified address (0.0.0.0 / ::) is not connectable as such
    // on every platform — aim the poke at loopback on the same port.
    let mut poke_addr = shared.addr;
    if poke_addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if poke_addr.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        poke_addr.set_ip(loopback);
    }
    let _ = TcpStream::connect(poke_addr);
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // One small request line, one small response line per round trip:
    // Nagle's algorithm interacts with delayed ACKs to put a ~40 ms floor
    // under exactly this traffic pattern, so switch it off.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_request_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => break, // clean EOF
            Err(oversized) => {
                let _ = writer
                    .write_all(encode_error(&oversized).as_bytes())
                    .and_then(|()| writer.write_all(b"\n"));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop_after) = dispatch(&line, shared);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop_after {
            break;
        }
    }
}

/// Upper bound on one request line. Signature views are compact (DBpedia
/// Persons is 64 signatures over 8 properties); 32 MiB leaves orders of
/// magnitude of headroom while keeping one hostile connection from growing
/// an unbounded buffer.
const MAX_REQUEST_LINE: u64 = 32 * 1024 * 1024;

/// Reads one `\n`-terminated request line, enforcing [`MAX_REQUEST_LINE`].
/// `Ok(None)` is clean EOF; `Err` carries the message for the oversized-line
/// error response (the connection is then closed: framing is lost).
fn read_request_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, String> {
    let mut bytes = Vec::new();
    let read = std::io::Read::take(reader, MAX_REQUEST_LINE + 1)
        .read_until(b'\n', &mut bytes)
        .map_err(|err| format!("read failed: {err}"))?;
    if read == 0 {
        return Ok(None);
    }
    if bytes.last() != Some(&b'\n') && read as u64 > MAX_REQUEST_LINE {
        return Err(format!(
            "request line exceeds {MAX_REQUEST_LINE} bytes; closing the connection"
        ));
    }
    String::from_utf8(bytes)
        .map(Some)
        .map_err(|_| "request line is not UTF-8".to_owned())
}

/// Handles one request line. Returns the response line and whether the
/// connection should close (after a `shutdown` acknowledgement).
fn dispatch(line: &str, shared: &Arc<Shared>) -> (String, bool) {
    match decode_request(line) {
        Err(err) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (encode_error(&err.message), false)
        }
        Ok(Request::Status) => {
            shared.metrics.status.fetch_add(1, Ordering::Relaxed);
            let body = snapshot(shared).to_json().to_text();
            (encode_success("status", Source::Solved, &body), false)
        }
        Ok(Request::Shutdown) => {
            shared.metrics.shutdown.fetch_add(1, Ordering::Relaxed);
            trigger_shutdown(shared);
            (
                encode_success("shutdown", Source::Solved, "{\"stopping\":true}"),
                true,
            )
        }
        Ok(Request::Solve(request)) => {
            shared.metrics.count_solve(request.op);
            solve_via_cache(*request, shared)
        }
    }
}

fn solve_via_cache(request: SolveRequest, shared: &Arc<Shared>) -> (String, bool) {
    let op_name = request.op.name();
    let key = request.cache_key();

    if let Some(result) = shared.cache.lock().expect("cache lock").get(&key) {
        return (encode_success(op_name, Source::Cache, &result), false);
    }

    match shared.flight.join(key.clone()) {
        Join::Follow(Ok(Ok(result))) => {
            (encode_success(op_name, Source::Coalesced, &result), false)
        }
        Join::Follow(Ok(Err(message))) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (encode_error(&message), false)
        }
        Join::Follow(Err(_aborted)) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            (
                encode_error("the solve this request was coalesced with failed; retry"),
                false,
            )
        }
        Join::Lead(leader) => {
            // Double-check the cache: between this thread's miss and winning
            // leadership, a previous leader may have completed — and it
            // inserts into the cache *before* retiring its flight, so a
            // recheck hit here is decisive and the solve is skipped.
            // (`recheck` keeps the expected miss uncounted: the lookup
            // above already booked it.)
            if let Some(result) = shared.cache.lock().expect("cache lock").recheck(&key) {
                leader.complete(Ok(Arc::clone(&result)));
                return (encode_success(op_name, Source::Cache, &result), false);
            }
            let outcome = shared
                .pool
                .run(move || solve_job(&request))
                .unwrap_or_else(|| Err("solve panicked in the worker".to_owned()));
            match outcome {
                Ok(result_text) => {
                    let result = Arc::new(result_text);
                    shared
                        .cache
                        .lock()
                        .expect("cache lock")
                        .insert(key, Arc::clone(&result));
                    leader.complete(Ok(Arc::clone(&result)));
                    (encode_success(op_name, Source::Solved, &result), false)
                }
                Err(message) => {
                    // Errors are shared with concurrent followers (they
                    // asked the same question) but never cached: a later
                    // retry re-solves.
                    leader.complete(Err(message.clone()));
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    (encode_error(&message), false)
                }
            }
        }
    }
}

/// Runs one solve on the worker thread. Returns the canonical serialization
/// of the result object, or an error message.
fn solve_job(request: &SolveRequest) -> Result<String, String> {
    let engine = request.engine.build(request.time_limit);
    let result = match request.op {
        SolveOp::Refine => {
            let k = request.k.expect("validated at decode");
            let theta = request.theta.expect("validated at decode");
            let outcome = engine
                .refine(&request.view, &request.spec, k, theta)
                .map_err(|err| err.to_string())?;
            protocol::outcome_to_json(&WireOutcome::from_outcome(&outcome))
        }
        SolveOp::HighestTheta => {
            let k = request.k.expect("validated at decode");
            let mut options = HighestThetaOptions::default();
            if let Some(step) = request.step {
                options.step = step;
            }
            let result = highest_theta(&request.view, &request.spec, k, engine.as_ref(), &options)
                .map_err(|err| err.to_string())?;
            protocol::highest_theta_to_json(&WireHighestTheta::from_result(&result))
        }
        SolveOp::LowestK => {
            let theta = request.theta.expect("validated at decode");
            let result = lowest_k(
                &request.view,
                &request.spec,
                theta,
                engine.as_ref(),
                SweepDirection::Upward,
                request.max_k,
            )
            .map_err(|err| err.to_string())?;
            protocol::lowest_k_to_json(&WireLowestK::from_result(&result))
        }
    };
    Ok(result.to_text())
}

/// Serves until a `shutdown` request arrives (the `strudel serve` entry
/// point) and returns the final counters.
pub fn serve(config: &ServerConfig) -> std::io::Result<StatusSnapshot> {
    Ok(start(config)?.wait())
}
