//! Pluggable kernel-readiness backends for the event loop.
//!
//! The event loop ([`crate::server`]) owns every connection as a
//! non-blocking socket and needs exactly one primitive from the platform:
//! *which file descriptors are ready for the I/O I care about, and wake me
//! early when a compute-pool completion lands*. This module puts that
//! primitive behind the [`Poller`] trait and ships three implementations:
//!
//! * [`UringPoller`] (Linux 5.1+) — kernel readiness via io_uring in poll
//!   mode: interest changes are 64-byte submission-queue entries, so N
//!   registrations/modifications per loop round cost *one* `io_uring_enter`
//!   (bundled with the wait itself) instead of N `epoll_ctl` round trips,
//!   and wait deadlines carry native nanosecond precision. Multishot
//!   `POLL_ADD` where the kernel supports it (5.13+), one-shot re-arming
//!   otherwise. See [`uring`] for the mechanics.
//! * [`EpollPoller`] (Linux) — a real kernel readiness queue built on
//!   direct `extern "C"` bindings to `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` plus an `eventfd` [`Waker`]. No external crates: the
//!   workspace is pure std, and these four syscalls are the entire
//!   surface. An idle server blocks in `epoll_wait` indefinitely — zero
//!   sweeps, zero CPU — and a loaded one is woken per readiness change
//!   instead of scanning every connection per round.
//! * [`ScanPoller`] (everywhere) — the original park/unpark full-scan loop
//!   refactored behind the same trait: `wait` parks with an escalating
//!   timeout (50 µs → 2 ms) and then reports *every* registered fd as
//!   ready per its interest set. Readiness is speculative — the caller
//!   discovers the truth via `WouldBlock` — which is exactly the contract
//!   the event loop's pump paths were built on.
//!
//! The backend is picked at runtime (`serve --poller uring|epoll|scan`, or
//! the `STRUDEL_POLLER` environment override the conformance matrix uses);
//! [`PollerKind::resolve`] auto-detects the best supported backend — uring
//! where a startup probe confirms the kernel cooperates (old kernels and
//! seccomp'd CI sandboxes fail the probe and silently get epoll; an
//! *explicit* `--poller uring` on such a kernel is a hard error instead).
//! All backends are driven through the same loop and proven behaviorally
//! identical by the backend-parameterized e2e suites (see `tests/poller.rs`
//! for the contract tests of this module itself).
//!
//! ## The contract
//!
//! * `register`/`modify`/`deregister` maintain an interest set per fd,
//!   identified by a caller-chosen `token` (the loop uses connection ids).
//!   Tokens are never invented by the poller: every event's token was
//!   registered and not yet deregistered.
//! * `wait` blocks until at least one event is available, the timeout
//!   elapses, or a [`Waker`] fires — whichever comes first. Spurious
//!   readiness is allowed (the scan backend is built on it); *lost*
//!   readiness is not: an fd that is actually ready and stays ready is
//!   reported within one `wait` round.
//! * [`Waker::wake`] is safe from any thread, coalesces (N wakes between
//!   two waits produce at least one early return, never a deadlock), and
//!   is never lost — a wake racing `wait` makes that `wait` return
//!   promptly.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, Thread};
use std::time::Duration;

/// Direct syscall bindings (epoll, eventfd, io_uring): the one sanctioned
/// `unsafe` module in the crate — see `lib.rs`. Exposes generic SQE/CQE
/// plumbing, not poll-op-specific helpers, so the follow-on
/// completion-mode rung (submission-queue reads/writes) builds on the
/// same surface.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys;

/// The io_uring readiness backend (safe code over [`sys`]).
#[cfg(target_os = "linux")]
mod uring;

#[cfg(target_os = "linux")]
pub use uring::UringPoller;

/// A file descriptor as the poller sees it (`c_int` on every Unix). The
/// scan backend never dereferences it, so non-Unix builds can pass 0.
pub type Fd = i32;

/// Token value reserved for the backend's internal waker; never use it
/// when registering.
pub const WAKER_TOKEN: u64 = u64::MAX;

/// Idle park bounds of the scan backend: `wait` parks when asked to block,
/// escalating from `MIN_PARK` to `MAX_PARK`; a zero timeout (the caller
/// made progress and wants an immediate re-sweep) snaps it back. Active
/// connections therefore see ~50 µs loop latency, while an idle scan
/// server polls at only ~500 Hz — the floor the epoll backend eliminates.
pub const MIN_PARK: Duration = Duration::from_micros(50);
/// Upper bound of the scan backend's escalating idle park.
pub const MAX_PARK: Duration = Duration::from_millis(2);

/// The I/O directions a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when the fd is readable (or the peer half-closed).
    pub read: bool,
    /// Report when the fd is writable. Level-triggered backends report a
    /// writable socket *every* round, so the loop only enables this while
    /// a connection actually has un-flushed bytes.
    pub write: bool,
}

impl Interest {
    /// Read-only interest (the resting state of a healthy connection).
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest (a draining connection that must not be read).
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions (un-flushed bytes on a live connection).
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
    /// No direction: the fd stays registered (bookkeeping, fatal-error
    /// reporting) but produces no readiness events.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd may be readable (speculative on the scan backend).
    pub readable: bool,
    /// The fd may be writable (speculative on the scan backend).
    pub writable: bool,
    /// The peer is gone in both directions (epoll `HUP`/`ERR`): the
    /// connection is unsalvageable and should be dropped without further
    /// I/O. The scan backend never reports this — it discovers dead
    /// sockets through I/O errors instead.
    pub hangup: bool,
}

/// Cross-thread wake handle of a poller: compute-pool completions call
/// [`Waker::wake`] to pull the loop out of `wait` immediately, replacing
/// the old `thread::park_timeout`/`unpark` channel.
pub trait Waker: Send + Sync {
    /// Makes the current (or next) [`Poller::wait`] return promptly.
    /// Callable from any thread; coalesces; never lost.
    fn wake(&self);
}

/// A kernel-readiness (or emulated-readiness) backend the event loop can
/// drive. See the module docs for the contract.
pub trait Poller: Send {
    /// The backend's name as reported in `status` (`"epoll"`, `"scan"`).
    fn backend(&self) -> &'static str;
    /// Adds `fd` to the interest list under `token`.
    fn register(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<()>;
    /// Replaces the interest set of a registered fd.
    fn modify(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<()>;
    /// Removes a registered fd; its token is never reported again.
    fn deregister(&mut self, fd: Fd, token: u64) -> io::Result<()>;
    /// Clears `events` and fills it with ready fds, blocking at most
    /// `timeout` (`None` means until an event or a wake; the scan backend
    /// caps that at [`MAX_PARK`] since its readiness is clock-driven).
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
    /// Submission seam, called once per event-loop round after all of the
    /// round's interest changes: backends that queue changes (uring) may
    /// push them to the kernel here if their queue is filling; backends
    /// that apply changes eagerly (epoll, scan) need nothing and inherit
    /// this no-op. `wait` always flushes whatever is still queued, so
    /// skipping this call affects batching, not correctness.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    /// A cross-thread wake handle tied to this poller.
    fn waker(&self) -> Arc<dyn Waker>;
}

/// Shared poller counters: the loop thread increments them, `status`
/// snapshots them from any thread.
#[derive(Debug, Default)]
pub struct PollerCounters {
    /// `wait` calls (each is one loop round; the idle rate of this counter
    /// is what the epoll backend collapses to ~0).
    pub waits: AtomicU64,
    /// [`Waker::wake`] calls observed.
    pub wakeups: AtomicU64,
    /// Pure timer expiries: `wait` calls that returned without a wake or
    /// any genuine readiness — every idle park expiry of the scan backend
    /// (whose reported events are speculative), every empty-handed
    /// deadline tick of the epoll backend.
    pub spurious: AtomicU64,
    /// Currently registered fds (listener + live connections).
    pub registered: AtomicU64,
    /// Kernel entries the backend performed for readiness work: every
    /// `epoll_ctl` + `epoll_wait` on the epoll backend, every
    /// `io_uring_enter` on the uring backend (whose batching is exactly
    /// what makes this number smaller), zero on the scan backend. Waker
    /// eventfd writes from other threads are excluded — the counter
    /// prices the loop thread's syscall burn, which is what
    /// syscalls-per-request benchmarks divide by.
    pub syscalls: AtomicU64,
}

/// A point-in-time view of the poller counters (the `status` payload's
/// `poller` block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollerStats {
    /// Backend name (`"epoll"`, `"scan"`).
    pub backend: &'static str,
    /// `wait` calls so far.
    pub waits: u64,
    /// Waker fires so far.
    pub wakeups: u64,
    /// Empty-handed `wait` returns so far.
    pub spurious: u64,
    /// Currently registered fds.
    pub registered: u64,
    /// Readiness syscalls performed by the loop thread so far.
    pub syscalls: u64,
}

impl PollerCounters {
    /// Snapshots the counters under a backend name.
    pub fn stats(&self, backend: &'static str) -> PollerStats {
        PollerStats {
            backend,
            waits: self.waits.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            spurious: self.spurious.load(Ordering::Relaxed),
            registered: self.registered.load(Ordering::Relaxed),
            syscalls: self.syscalls.load(Ordering::Relaxed),
        }
    }
}

/// Which readiness backend to run. `serve --poller` and the
/// `STRUDEL_POLLER` environment variable both parse into this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollerKind {
    /// Kernel readiness via io_uring poll submissions (Linux 5.1+).
    Uring,
    /// Kernel readiness via epoll (Linux only).
    Epoll,
    /// Portable full-scan/park emulation (the pre-epoll event loop).
    Scan,
}

/// Whether this kernel actually runs io_uring, probed once per process:
/// sets up a tiny ring *and* enters it, because a seccomp profile may
/// permit `io_uring_setup` while blocking `io_uring_enter` (or deny both
/// with `EPERM`/`ENOSYS`). Old kernels fail the setup. Either way the
/// answer is cached and `auto` quietly picks epoll.
#[cfg(target_os = "linux")]
fn uring_supported() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| sys::uring_probe().is_ok())
}

#[cfg(not(target_os = "linux"))]
fn uring_supported() -> bool {
    false
}

impl PollerKind {
    /// The backend name (`"uring"` / `"epoll"` / `"scan"`).
    pub fn name(self) -> &'static str {
        match self {
            PollerKind::Uring => "uring",
            PollerKind::Epoll => "epoll",
            PollerKind::Scan => "scan",
        }
    }

    /// The backends this platform can actually run, best first. Uring
    /// leads only when the startup probe proves the kernel cooperates, so
    /// `auto` never errors on an old kernel or a seccomp'd CI sandbox.
    pub fn available() -> Vec<PollerKind> {
        if cfg!(target_os = "linux") {
            if uring_supported() {
                vec![PollerKind::Uring, PollerKind::Epoll, PollerKind::Scan]
            } else {
                vec![PollerKind::Epoll, PollerKind::Scan]
            }
        } else {
            vec![PollerKind::Scan]
        }
    }

    /// Resolves the backend to run: an explicit configuration wins, then
    /// the `STRUDEL_POLLER` environment override (how the CI conformance
    /// matrix forces each backend through every suite), then platform
    /// auto-detection (uring where probed, epoll on other Linux, scan
    /// elsewhere). A malformed override is an error, not a silent
    /// fallback — a typo in the matrix must not fake coverage — but an
    /// override naming a backend this *kernel* cannot run falls back
    /// loudly: the same matrix file runs on io_uring-capable and
    /// incapable hosts, and only the host knows which it is.
    pub fn resolve(configured: Option<PollerKind>) -> io::Result<PollerKind> {
        if let Some(kind) = configured {
            return Ok(kind);
        }
        match std::env::var("STRUDEL_POLLER") {
            Ok(value) => {
                let kind: PollerKind = value.parse().map_err(|message: String| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("STRUDEL_POLLER: {message}"),
                    )
                })?;
                if !PollerKind::available().contains(&kind) {
                    let fallback = *PollerKind::available().first().expect("scan always exists");
                    eprintln!(
                        "strudel: STRUDEL_POLLER={} is not supported on this kernel; \
                         falling back to {fallback}",
                        kind.name()
                    );
                    return Ok(fallback);
                }
                Ok(kind)
            }
            Err(_) => Ok(*PollerKind::available().first().expect("scan always exists")),
        }
    }
}

impl std::str::FromStr for PollerKind {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text.trim().to_ascii_lowercase().as_str() {
            "uring" => Ok(PollerKind::Uring),
            "epoll" => Ok(PollerKind::Epoll),
            "scan" => Ok(PollerKind::Scan),
            "auto" => Ok(*PollerKind::available().first().expect("scan always exists")),
            other => Err(format!(
                "unknown poller backend '{other}' (expected uring, epoll, scan, or auto)"
            )),
        }
    }
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Opens the requested backend over the given (shared) counters. An
/// explicitly requested backend the platform cannot run is a hard error —
/// fallback is `auto`'s job, not `open`'s.
pub fn open(kind: PollerKind, counters: Arc<PollerCounters>) -> io::Result<Box<dyn Poller>> {
    match kind {
        PollerKind::Scan => Ok(Box::new(ScanPoller::new(counters))),
        #[cfg(target_os = "linux")]
        PollerKind::Epoll => Ok(Box::new(EpollPoller::new(counters)?)),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the epoll poller is only available on Linux; use --poller scan",
        )),
        #[cfg(target_os = "linux")]
        PollerKind::Uring => Ok(Box::new(UringPoller::new(counters)?)),
        #[cfg(not(target_os = "linux"))]
        PollerKind::Uring => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the uring poller is only available on Linux; use --poller scan",
        )),
    }
}

// ─── Scan backend ───────────────────────────────────────────────────────

/// The portable fallback: no kernel queue, so `wait` sleeps on a parked
/// thread (woken early by [`ScanWaker`]) and then reports every registered
/// fd as ready per its interest. Callers built on non-blocking I/O treat
/// the report as *maybe ready* and fall through `WouldBlock` — exactly
/// what the pre-trait event loop did each sweep.
pub struct ScanPoller {
    registry: HashMap<u64, Interest>,
    counters: Arc<PollerCounters>,
    waker: Arc<ScanWaker>,
    park: Duration,
}

/// Park/unpark wake channel of the scan backend. The loop thread is
/// learned on the first `wait`; wakes landing before that (or between
/// waits) latch the `notified` flag so they are never lost.
struct ScanWaker {
    thread: Mutex<Option<Thread>>,
    notified: AtomicBool,
    counters: Arc<PollerCounters>,
}

impl Waker for ScanWaker {
    fn wake(&self) {
        self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        self.notified.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.lock().expect("waker thread lock").as_ref() {
            thread.unpark();
        }
    }
}

impl ScanWaker {
    /// Consumes a pending wake, if any.
    fn take_notified(&self) -> bool {
        self.notified.swap(false, Ordering::SeqCst)
    }
}

impl ScanPoller {
    /// Creates an empty scan poller over the given counters.
    pub fn new(counters: Arc<PollerCounters>) -> Self {
        let waker = Arc::new(ScanWaker {
            thread: Mutex::new(None),
            notified: AtomicBool::new(false),
            counters: Arc::clone(&counters),
        });
        ScanPoller {
            registry: HashMap::new(),
            counters,
            waker,
            park: MIN_PARK,
        }
    }
}

impl Poller for ScanPoller {
    fn backend(&self) -> &'static str {
        "scan"
    }

    fn register(&mut self, _fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        // Check-then-insert: a failed re-registration must leave the
        // existing entry untouched (the epoll backend's EEXIST does), not
        // clobber its interest on the way to the error.
        if self.registry.contains_key(&token) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("token {token} is already registered"),
            ));
        }
        self.registry.insert(token, interest);
        self.counters.registered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn modify(&mut self, _fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        match self.registry.get_mut(&token) {
            Some(slot) => {
                *slot = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("token {token} is not registered"),
            )),
        }
    }

    fn deregister(&mut self, _fd: Fd, token: u64) -> io::Result<()> {
        if self.registry.remove(&token).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("token {token} is not registered"),
            ));
        }
        self.counters.registered.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        let woken;
        let mut slept = false;
        if timeout == Some(Duration::ZERO) {
            // The caller just made progress and wants an immediate
            // re-sweep: stay hot.
            self.park = MIN_PARK;
            woken = self.waker.take_notified();
        } else if self.waker.take_notified() {
            // A wake landed while the caller was processing the previous
            // sweep: serve it now without sleeping.
            self.park = MIN_PARK;
            woken = true;
        } else {
            // Bind the loop thread on first use so wakes can unpark it; a
            // wake racing this window latched `notified` and left an
            // unpark token, so `park_timeout` returns immediately.
            {
                let mut slot = self.waker.thread.lock().expect("waker thread lock");
                if slot.is_none() {
                    *slot = Some(thread::current());
                }
            }
            let cap = self.park.min(timeout.unwrap_or(MAX_PARK));
            thread::park_timeout(cap);
            slept = true;
            woken = self.waker.take_notified();
            self.park = if woken {
                MIN_PARK
            } else {
                (self.park * 2).min(MAX_PARK)
            };
        }
        for (&token, &interest) in &self.registry {
            if interest.read || interest.write {
                events.push(Event {
                    token,
                    readable: interest.read,
                    writable: interest.write,
                    hangup: false,
                });
            }
        }
        // The readiness this backend reports is speculative, so an event
        // list alone proves nothing happened: a sweep is spurious when it
        // was a pure timer expiry — the park ran out with no wake (and,
        // per the caller's zero-timeout protocol, no prior progress).
        if slept && !woken {
            self.counters.spurious.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Waker> {
        Arc::clone(&self.waker) as Arc<dyn Waker>
    }
}

// ─── Epoll backend (Linux) ──────────────────────────────────────────────
// (The syscall bindings live in `poller/sys.rs`, shared with the uring
// backend.)

/// Kernel readiness on Linux: one epoll instance owns the interest list,
/// and an `eventfd` registered under [`WAKER_TOKEN`] carries cross-thread
/// wakes. Level-triggered — the event loop's pump paths already read and
/// write until `WouldBlock`, and write interest is only enabled while a
/// connection holds un-flushed bytes, so level semantics cannot spin.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: Fd,
    waker: Arc<EpollWaker>,
    counters: Arc<PollerCounters>,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
struct EpollWaker {
    eventfd: Fd,
    counters: Arc<PollerCounters>,
}

#[cfg(target_os = "linux")]
impl Waker for EpollWaker {
    fn wake(&self) {
        self.counters.wakeups.fetch_add(1, Ordering::Relaxed);
        sys::eventfd_signal(self.eventfd);
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollWaker {
    fn drop(&mut self) {
        sys::close_fd(self.eventfd);
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Room for one syscall's worth of events; more stay queued in the
    /// kernel and surface on the next `wait` (level-triggered).
    const EVENT_BATCH: usize = 1024;

    /// Creates the epoll instance and its eventfd waker.
    pub fn new(counters: Arc<PollerCounters>) -> io::Result<Self> {
        let epfd = sys::create()?;
        let eventfd = match sys::new_eventfd() {
            Ok(fd) => fd,
            Err(err) => {
                sys::close_fd(epfd);
                return Err(err);
            }
        };
        if let Err(err) = sys::ctl(epfd, sys::EPOLL_CTL_ADD, eventfd, sys::EPOLLIN, WAKER_TOKEN) {
            sys::close_fd(eventfd);
            sys::close_fd(epfd);
            return Err(err);
        }
        Ok(EpollPoller {
            epfd,
            waker: Arc::new(EpollWaker {
                eventfd,
                counters: Arc::clone(&counters),
            }),
            counters,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; Self::EVENT_BATCH],
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut mask = 0;
        if interest.read {
            mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.write {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn backend(&self) -> &'static str {
        "epoll"
    }

    fn register(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        if token == WAKER_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the waker",
            ));
        }
        self.counters.syscalls.fetch_add(1, Ordering::Relaxed);
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(interest),
            token,
        )?;
        self.counters.registered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn modify(&mut self, fd: Fd, token: u64, interest: Interest) -> io::Result<()> {
        self.counters.syscalls.fetch_add(1, Ordering::Relaxed);
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(interest),
            token,
        )
    }

    fn deregister(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        self.counters.syscalls.fetch_add(1, Ordering::Relaxed);
        sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, token)?;
        self.counters.registered.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.counters.waits.fetch_add(1, Ordering::Relaxed);
        self.counters.syscalls.fetch_add(1, Ordering::Relaxed);
        let timeout_ms = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round up: rounding down would return before the caller's
            // deadline and busy-loop until it actually elapses.
            Some(d) => {
                let ms = d.as_millis().saturating_add(1);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        };
        let n = sys::wait(self.epfd, &mut self.buf, timeout_ms)?;
        let mut woken = false;
        for raw in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let token = raw.data;
            let bits = raw.events;
            if token == WAKER_TOKEN {
                sys::eventfd_drain(self.waker.eventfd);
                woken = true;
                continue;
            }
            let hangup = bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0;
            events.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup,
            });
        }
        if events.is_empty() && !woken {
            self.counters.spurious.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn waker(&self) -> Arc<dyn Waker> {
        Arc::clone(&self.waker) as Arc<dyn Waker>
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_and_resolves() {
        assert_eq!("uring".parse::<PollerKind>(), Ok(PollerKind::Uring));
        assert_eq!("epoll".parse::<PollerKind>(), Ok(PollerKind::Epoll));
        assert_eq!("Scan".parse::<PollerKind>(), Ok(PollerKind::Scan));
        assert!("kqueue".parse::<PollerKind>().is_err());
        let auto = "auto".parse::<PollerKind>().unwrap();
        assert_eq!(auto, *PollerKind::available().first().unwrap());
        // An explicit configuration wins over everything.
        assert_eq!(
            PollerKind::resolve(Some(PollerKind::Scan)).unwrap(),
            PollerKind::Scan
        );
        // Scan is unconditional; anything uring-shaped in `available` is
        // probe-gated, so the list is ordered best-first with scan last.
        let available = PollerKind::available();
        assert_eq!(available.last(), Some(&PollerKind::Scan));
        assert!(available.contains(&PollerKind::Uring) == uring_supported());
    }

    #[test]
    fn scan_reports_every_registered_interest() {
        let counters = Arc::new(PollerCounters::default());
        let mut poller = ScanPoller::new(Arc::clone(&counters));
        poller.register(3, 1, Interest::READ).unwrap();
        poller.register(4, 2, Interest::READ_WRITE).unwrap();
        poller.register(5, 3, Interest::NONE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        events.sort_by_key(|event| event.token);
        assert_eq!(events.len(), 2, "NONE interest is silent: {events:?}");
        assert_eq!(events[0].token, 1);
        assert!(events[0].readable && !events[0].writable);
        assert_eq!(events[1].token, 2);
        assert!(events[1].readable && events[1].writable);
        assert_eq!(counters.stats("scan").registered, 3);

        poller.deregister(4, 2).unwrap();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|event| event.token != 2));
        assert!(poller.deregister(4, 2).is_err(), "double deregister");
        assert!(poller.register(3, 1, Interest::READ).is_err(), "duplicate");
    }

    #[test]
    fn scan_waker_is_never_lost_and_snaps_the_park_back() {
        let counters = Arc::new(PollerCounters::default());
        let mut poller = ScanPoller::new(counters);
        let waker = poller.waker();
        // A wake before the first wait (thread not yet bound) must make
        // that wait return immediately instead of parking.
        waker.wake();
        let began = std::time::Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            began.elapsed() < Duration::from_millis(500),
            "a pre-wait wake must not be lost (took {:?})",
            began.elapsed()
        );
    }
}
