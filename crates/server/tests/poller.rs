//! Contract tests of the [`Poller`] trait itself, run against every
//! available backend (see `tests/common/mod.rs`): registration
//! bookkeeping under churn (property-tested with the workspace's seeded
//! RNG — no wall-clock randomness), waker delivery and coalescing,
//! deregistration (a deregistered fd's token is never reported again,
//! even permanently-readable EOF'd sockets), and the kernel backends'
//! (epoll, uring) sharper guarantees — real timeouts that round *up*
//! rather than busy-loop, no spurious readiness, and edge-adjusted WRITE
//! interest (the mechanism behind the flush-starvation fix).
//!
//! The contract deliberately allows *spurious* readiness (the scan
//! backend reports every registered fd each sweep) but never *lost*
//! readiness and never *invented* tokens; assertions here are split
//! accordingly into both-backend and epoll-only sections.

mod common;

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use strudel_rdf::rng::StdRng;
use strudel_server::poller::{open, Event, Fd, Interest, Poller, PollerCounters, PollerKind};

/// A connected TCP pair (server side first), both non-blocking.
fn tcp_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let client = TcpStream::connect(listener.local_addr().unwrap()).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    server.set_nonblocking(true).expect("nonblocking");
    client.set_nonblocking(true).expect("nonblocking");
    (server, client)
}

#[cfg(unix)]
fn fd_of(stream: &TcpStream) -> Fd {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}
#[cfg(not(unix))]
fn fd_of(_stream: &TcpStream) -> Fd {
    0
}

fn open_backend(kind: PollerKind) -> (Box<dyn Poller>, Arc<PollerCounters>) {
    let counters = Arc::new(PollerCounters::default());
    let poller = open(kind, Arc::clone(&counters)).expect("open backend");
    (poller, counters)
}

/// Waits until `predicate` matches some reported event (retrying across
/// sweeps, since the scan backend needs its park to elapse), or panics
/// after `deadline`.
fn wait_for_event(
    poller: &mut Box<dyn Poller>,
    deadline: Duration,
    predicate: impl Fn(&Event) -> bool,
) -> Event {
    let began = Instant::now();
    let mut events = Vec::new();
    while began.elapsed() < deadline {
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        if let Some(event) = events.iter().find(|event| predicate(event)) {
            return *event;
        }
    }
    panic!("no matching event within {deadline:?}");
}

#[test]
fn a_ready_fd_is_reported_within_a_wait() {
    common::for_each_backend("ready-fd", |kind| {
        let (server, mut client) = tcp_pair();
        let (mut poller, _) = open_backend(kind);
        poller
            .register(fd_of(&server), 7, Interest::READ)
            .expect("register");
        client.write_all(b"ping\n").expect("client write");
        let event = wait_for_event(&mut poller, Duration::from_secs(2), |event| {
            event.token == 7
        });
        assert!(event.readable, "data is pending: {event:?}");
    });
}

#[test]
fn a_deregistered_fd_is_never_reported_again_even_after_eof() {
    common::for_each_backend("deregister-on-eof", |kind| {
        let (server, client) = tcp_pair();
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 3, Interest::READ)
            .expect("register");
        // EOF the socket: a closed peer keeps the fd readable *forever*
        // (reads return 0), the readiness analogue of the old event
        // loop's dead-slot re-scan.
        drop(client);
        let event = wait_for_event(&mut poller, Duration::from_secs(2), |event| {
            event.token == 3
        });
        assert!(event.readable || event.hangup, "EOF is reported: {event:?}");

        poller.deregister(fd_of(&server), 3).expect("deregister");
        assert_eq!(counters.stats(kind.name()).registered, 0);
        let mut events = Vec::new();
        for _ in 0..10 {
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .expect("wait");
            assert!(
                events.iter().all(|event| event.token != 3),
                "token 3 was deregistered: {events:?}"
            );
        }
    });
}

#[test]
fn a_failed_re_registration_leaves_the_existing_interest_untouched() {
    common::for_each_backend("register-no-clobber", |kind| {
        let (server, mut client) = tcp_pair();
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 4, Interest::READ_WRITE)
            .expect("register");
        let err = poller
            .register(fd_of(&server), 4, Interest::READ)
            .expect_err("duplicate registration is an error");
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert_eq!(counters.stats(kind.name()).registered, 1);
        // The original READ_WRITE interest must survive the failed call:
        // with the fd readable (data pending) and writable (empty send
        // buffer), the reported event still carries the write direction.
        client.write_all(b"ping\n").expect("client write");
        let event = wait_for_event(&mut poller, Duration::from_secs(2), |event| {
            event.token == 4
        });
        assert!(
            event.writable,
            "a clobbered interest would have dropped writability: {event:?}"
        );
    });
}

#[test]
fn waker_wakes_a_blocking_wait_from_another_thread() {
    common::for_each_backend("cross-thread-wake", |kind| {
        let (server, _client) = tcp_pair(); // keep one silent registration
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 1, Interest::NONE)
            .expect("register");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let began = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        handle.join().expect("waker thread");
        assert!(
            began.elapsed() < Duration::from_secs(5),
            "the wake must cut the 10 s timeout short (took {:?})",
            began.elapsed()
        );
        assert_eq!(counters.stats(kind.name()).wakeups, 1);
    });
}

#[test]
fn wakes_coalesce_but_are_never_lost() {
    common::for_each_backend("wake-coalescing", |kind| {
        const THREADS: usize = 4;
        const WAKES_PER_THREAD: usize = 25;
        let (mut poller, counters) = open_backend(kind);
        let joins: Vec<_> = (0..THREADS)
            .map(|_| {
                let waker = poller.waker();
                std::thread::spawn(move || {
                    for _ in 0..WAKES_PER_THREAD {
                        waker.wake();
                    }
                })
            })
            .collect();
        for join in joins {
            join.join().expect("waker thread");
        }
        // Every wake was counted; the pending ones coalesce into (at
        // least) one prompt return instead of 100 queued wake-ups.
        assert_eq!(
            counters.stats(kind.name()).wakeups,
            (THREADS * WAKES_PER_THREAD) as u64
        );
        let began = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(
            began.elapsed() < Duration::from_secs(5),
            "pending wakes make the next wait return promptly (took {:?})",
            began.elapsed()
        );
    });
}

#[test]
fn registration_bookkeeping_survives_churn() {
    common::for_each_backend("registration-churn", |kind| {
        const FDS: usize = 8;
        const ROUNDS: usize = 400;
        let pairs: Vec<(TcpStream, TcpStream)> = (0..FDS).map(|_| tcp_pair()).collect();
        let (mut poller, counters) = open_backend(kind);
        let mut rng = StdRng::seed_from_u64(0x9e3779b97f4a7c15);
        // Model: token i ↔ server side of pair i; the poller must agree
        // with this map after any interleaving of register / modify /
        // deregister.
        let mut model: HashMap<u64, Interest> = HashMap::new();
        let interests = [Interest::READ, Interest::WRITE, Interest::READ_WRITE];
        for _ in 0..ROUNDS {
            let token = rng.gen_range(0..FDS) as u64;
            let fd = fd_of(&pairs[token as usize].0);
            let interest = interests[rng.gen_range(0..interests.len())];
            match (model.contains_key(&token), rng.gen_bool(0.5)) {
                (false, _) => {
                    poller.register(fd, token, interest).expect("register");
                    model.insert(token, interest);
                }
                (true, true) => {
                    poller.modify(fd, token, interest).expect("modify");
                    model.insert(token, interest);
                }
                (true, false) => {
                    poller.deregister(fd, token).expect("deregister");
                    model.remove(&token);
                }
            }
            assert_eq!(
                counters.stats(kind.name()).registered,
                model.len() as u64,
                "registered-fd gauge tracks the model"
            );
        }
        // Make every fd genuinely ready in both directions (data pending,
        // send buffer empty): the union of sweeps must report exactly the
        // registered tokens — nothing invented, nothing lost.
        for (_, client) in &pairs {
            (&*client).write_all(b"x").expect("client write");
        }
        let mut reported: HashMap<u64, Event> = HashMap::new();
        let began = Instant::now();
        let mut events = Vec::new();
        while reported.len() < model.len() && began.elapsed() < Duration::from_secs(2) {
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            for event in &events {
                assert!(
                    model.contains_key(&event.token),
                    "token {} was never registered (or was deregistered): {model:?}",
                    event.token
                );
                reported.insert(event.token, *event);
            }
        }
        assert_eq!(
            reported.len(),
            model.len(),
            "every registered fd is ready and must be reported: {model:?}"
        );
        for (token, interest) in &model {
            let event = reported[token];
            // Direction flags never exceed the interest set.
            assert!(event.readable <= interest.read, "{token}: {event:?}");
            assert!(event.writable <= interest.write, "{token}: {event:?}");
            assert!(event.readable || event.writable, "{token}: {event:?}");
        }
    });
}

// ─── kernel backends: the sharper guarantees of real readiness ──────────
// (epoll and uring; the scan backend's readiness is speculative and
// clock-driven, so none of these hold for it)

/// Runs the body once per *kernel* readiness backend this run covers —
/// epoll and uring, each skipped with a logged reason when the platform
/// (non-Linux), the kernel (no io_uring), or a narrowed `STRUDEL_POLLER`
/// matrix leg excludes it.
fn with_kernel_backends(body: impl Fn(PollerKind)) {
    if !cfg!(target_os = "linux") {
        eprintln!("skipping: kernel readiness backends require Linux");
        return;
    }
    let covered = common::backends();
    for kind in [PollerKind::Epoll, PollerKind::Uring] {
        if !covered.contains(&kind) {
            // Either STRUDEL_POLLER narrowed the matrix to another
            // backend, or (uring) the kernel failed the io_uring probe.
            if kind == PollerKind::Uring && !PollerKind::available().contains(&kind) {
                eprintln!("skipping {kind}: this kernel fails the io_uring probe");
            } else {
                eprintln!("skipping {kind}: STRUDEL_POLLER excludes it");
            }
            continue;
        }
        eprintln!("kernel backend: {kind}");
        body(kind);
    }
}

#[test]
fn kernel_timeouts_expire_without_inventing_events() {
    with_kernel_backends(|kind| {
        let (server, _client) = tcp_pair(); // open but silent
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 5, Interest::READ)
            .expect("register");
        // A zero timeout polls and returns immediately.
        let mut events = Vec::new();
        let began = Instant::now();
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.is_empty(), "no data is pending: {events:?}");
        assert!(began.elapsed() < Duration::from_millis(100));
        // A real timeout blocks for (at least) its duration, then returns
        // empty-handed; that return is the backend's only spurious wake.
        let began = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(120)))
            .expect("wait");
        assert!(events.is_empty(), "still no data: {events:?}");
        assert!(
            began.elapsed() >= Duration::from_millis(100),
            "the wait must actually sleep (took {:?})",
            began.elapsed()
        );
        assert!(counters.stats(kind.name()).spurious >= 1);
    });
}

#[test]
fn kernel_write_interest_is_edge_adjusted_as_the_peer_drains() {
    with_kernel_backends(|kind| {
        let (server, mut client) = tcp_pair();
        let (mut poller, _) = open_backend(kind);

        // Saturate the server→client direction so the socket stops being
        // writable — the "full write buffer, no new reads" connection of
        // the flush-starvation fix.
        let chunk = vec![0u8; 64 * 1024];
        let mut queued = 0usize;
        loop {
            match (&server).write(&chunk) {
                Ok(n) => queued += n,
                Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(err) => panic!("saturating write failed: {err}"),
            }
        }
        assert!(queued > 0, "something must be in flight");

        poller
            .register(fd_of(&server), 9, Interest::WRITE)
            .expect("register");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .expect("wait");
        assert!(
            events.iter().all(|event| !event.writable),
            "a saturated socket must not be writable: {events:?}"
        );

        // Drain the peer: writability must be reported promptly — this is
        // the wake-up the old scan loop could only approximate with its
        // park cycle.
        let mut sink = vec![0u8; 256 * 1024];
        let drained = std::thread::spawn(move || {
            let mut total = 0usize;
            while total < queued {
                match client.read(&mut sink) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(err) => panic!("draining read failed: {err}"),
                }
            }
            total
        });
        let event = wait_for_event(&mut poller, Duration::from_secs(5), |event| {
            event.token == 9 && event.writable
        });
        assert!(event.writable);
        assert!(drained.join().expect("drain thread") >= queued);
    });
}

#[test]
fn kernel_an_idle_poller_blocks_instead_of_sweeping() {
    with_kernel_backends(|kind| {
        let (server, _client) = tcp_pair();
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 2, Interest::READ)
            .expect("register");
        // One wait, bounded by its timeout: exactly one wait is recorded,
        // where the scan backend would have swept hundreds of times in
        // the same window.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(300)))
            .expect("wait");
        let stats = counters.stats(kind.name());
        assert_eq!(
            stats.waits, 1,
            "idleness costs one blocked wait, not sweeps"
        );
    });
}

#[test]
fn kernel_sub_millisecond_deadlines_do_not_busy_loop() {
    with_kernel_backends(|kind| {
        let (server, _client) = tcp_pair(); // open but silent
        let (mut poller, counters) = open_backend(kind);
        poller
            .register(fd_of(&server), 6, Interest::READ)
            .expect("register");
        // Drive the event loop's deadline protocol against a ~500 µs
        // deadline: each round waits for the *remaining* time, exactly as
        // `run` recomputes `next_timeout`. A backend that truncated the
        // sub-millisecond remainder to 0 ms would return instantly every
        // round and spin through hundreds of waits before the deadline
        // passes; rounding up (epoll) or native nanosecond timespecs
        // (uring) bound it to a handful.
        let deadline = Instant::now() + Duration::from_micros(500);
        let mut events = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            poller
                .wait(&mut events, Some(deadline - now))
                .expect("wait");
            assert!(events.is_empty(), "the socket is silent: {events:?}");
        }
        let waits = counters.stats(kind.name()).waits;
        assert!(
            waits <= 10,
            "{kind}: a ~500 µs deadline produced {waits} wakeups — \
             the timeout is being rounded down into a busy-loop"
        );
    });
}

/// The uring backend's raison d'être: interest changes are queued as
/// SQEs and ride the next `wait`'s `io_uring_enter`, so a round of N
/// registrations costs one syscall — visible through the `syscalls`
/// counter, which prices every kernel entry the loop thread makes.
#[test]
fn uring_batches_interest_changes_into_one_enter() {
    if !PollerKind::available().contains(&PollerKind::Uring) {
        eprintln!("skipping: this kernel fails the io_uring probe (or non-Linux)");
        return;
    }
    if !common::backends().contains(&PollerKind::Uring) {
        eprintln!("skipping: STRUDEL_POLLER excludes uring");
        return;
    }
    let pairs: Vec<(TcpStream, TcpStream)> = (0..8).map(|_| tcp_pair()).collect();
    let (mut poller, counters) = open_backend(PollerKind::Uring);
    for (token, (server, _)) in pairs.iter().enumerate() {
        poller
            .register(fd_of(server), token as u64, Interest::READ)
            .expect("register");
        poller
            .modify(fd_of(server), token as u64, Interest::READ_WRITE)
            .expect("modify");
    }
    // 8 registrations + 8 modifications: all still queued client-side.
    assert_eq!(
        counters.stats("uring").syscalls,
        0,
        "interest changes must queue, not enter the kernel one by one"
    );
    poller.flush().expect("flush");
    let after_flush = counters.stats("uring").syscalls;
    assert!(
        after_flush <= 1,
        "a half-empty submission queue needs no early flush (got {after_flush})"
    );
    // The wait's single enter submits everything and reports readiness:
    // every socket's send buffer is empty, so every token turns up
    // writable across (few) rounds.
    let mut seen = std::collections::HashSet::new();
    let began = Instant::now();
    let mut events = Vec::new();
    while seen.len() < pairs.len() && began.elapsed() < Duration::from_secs(2) {
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        for event in &events {
            assert!(event.writable, "{event:?}");
            seen.insert(event.token);
        }
    }
    assert_eq!(seen.len(), pairs.len(), "all fds report: {seen:?}");
    let stats = counters.stats("uring");
    assert!(
        stats.syscalls < 16 + stats.waits,
        "16 interest changes must not cost 16 enters \
         (syscalls {} vs waits {})",
        stats.syscalls,
        stats.waits
    );
}
