//! Property test for the wire protocol: randomly generated solve requests
//! survive encode → text → parse → decode with every field and the cache
//! key intact, random JSON values round-trip byte-for-byte, and random
//! batch envelopes decode element-wise with order preserved and per-element
//! errors isolated.
//!
//! Uses the workspace's seeded xoshiro generator (`strudel_rdf::rng`)
//! rather than the external `proptest` crate, so it runs in offline builds;
//! failures print the seed, and re-running with that seed reproduces them.

use strudel_core::sigma::SigmaSpec;
use strudel_rdf::rng::StdRng;
use strudel_rdf::signature::SignatureView;
use strudel_rules::prelude::Ratio;
use strudel_server::json::{self, Json};
use strudel_server::prelude::{EngineKind, Request, ShardStamp, SolveOp, SolveRequest, Source};
use strudel_server::protocol::{
    decode_line, decode_payload, decode_request, encode_batch, encode_batch_request, encode_error,
    encode_frame_into, encode_solve_bin, encode_success, try_decode_frame, view_from_json,
    view_to_json, Decoded, FrameKind, FRAME_MAGIC,
};

const CASES: u64 = 300;

fn random_view(rng: &mut StdRng) -> SignatureView {
    let n_props = rng.gen_range(1usize..8);
    let properties: Vec<String> = (0..n_props)
        .map(|i| format!("http://example.org/p{i}"))
        .collect();
    let n_sigs = rng.gen_range(1usize..10);
    let signatures: Vec<(Vec<usize>, usize)> = (0..n_sigs)
        .map(|_| {
            let width = rng.gen_range(1usize..n_props + 1);
            let mut columns: Vec<usize> = (0..n_props).collect();
            rng.shuffle(&mut columns);
            columns.truncate(width);
            (columns, rng.gen_range(1usize..100))
        })
        .collect();
    SignatureView::from_counts(properties, signatures).expect("indexes are in range")
}

fn random_spec(rng: &mut StdRng, view: &SignatureView) -> SigmaSpec {
    let pick =
        |rng: &mut StdRng| view.properties()[rng.gen_range(0usize..view.property_count())].clone();
    match rng.gen_range(0usize..6) {
        0 => SigmaSpec::Coverage,
        1 => SigmaSpec::Similarity,
        2 => SigmaSpec::CoverageIgnoring(vec![pick(rng)]),
        3 => SigmaSpec::Dependency {
            p1: pick(rng),
            p2: pick(rng),
        },
        4 => SigmaSpec::SymDependency {
            p1: pick(rng),
            p2: pick(rng),
        },
        _ => SigmaSpec::DependencyDisjunctive {
            p1: pick(rng),
            p2: pick(rng),
        },
    }
}

fn random_ratio(rng: &mut StdRng) -> Ratio {
    Ratio::new(
        rng.gen_range(0u64..100) as i128,
        rng.gen_range(1u64..100) as i128,
    )
}

fn random_request(rng: &mut StdRng) -> SolveRequest {
    let op = match rng.gen_range(0usize..3) {
        0 => SolveOp::Refine,
        1 => SolveOp::HighestTheta,
        _ => SolveOp::LowestK,
    };
    let view = random_view(rng);
    let spec = random_spec(rng, &view);
    let engine = match rng.gen_range(0usize..3) {
        0 => EngineKind::Hybrid,
        1 => EngineKind::Ilp,
        _ => EngineKind::Greedy,
    };
    SolveRequest {
        k: match op {
            SolveOp::LowestK => None,
            _ => Some(rng.gen_range(1usize..6)),
        },
        theta: match op {
            SolveOp::HighestTheta => None,
            _ => Some(random_ratio(rng)),
        },
        step: (op == SolveOp::HighestTheta && rng.gen_bool(0.5))
            .then(|| Ratio::new(1, rng.gen_range(2u64..200) as i128)),
        max_k: (op == SolveOp::LowestK && rng.gen_bool(0.5)).then(|| rng.gen_range(1usize..10)),
        time_limit: rng
            .gen_bool(0.3)
            .then(|| std::time::Duration::from_millis(rng.gen_range(1u64..5000))),
        routing: rng.gen_bool(0.3).then(|| ShardStamp {
            shard: rng.gen_range(0u64..8) as u32,
            epoch: rng.gen_range(0u64..u64::MAX),
        }),
        // Never "default": the decoder normalizes an explicit default to
        // `None`, which would be a (correct) canonicalization, not a
        // round-trip — the byte-identity assertion below wants the latter.
        tenant: rng
            .gen_bool(0.3)
            .then(|| format!("tenant-{}", rng.gen_range(0u64..5))),
        op,
        view,
        spec,
        engine,
    }
}

#[test]
fn random_solve_requests_round_trip_with_cache_key_intact() {
    let seed = 20140731;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let request = random_request(&mut rng);
        let line = request.to_json().to_text();
        let decoded = decode_request(&line)
            .unwrap_or_else(|err| panic!("seed {seed} case {case}: '{line}' rejected: {err}"));
        let Request::Solve(back) = decoded else {
            panic!("seed {seed} case {case}: decoded to a non-solve request");
        };
        assert_eq!(back.op, request.op, "seed {seed} case {case}");
        assert_eq!(back.spec, request.spec, "seed {seed} case {case}");
        assert_eq!(back.engine, request.engine, "seed {seed} case {case}");
        assert_eq!(back.k, request.k, "seed {seed} case {case}");
        assert_eq!(back.theta, request.theta, "seed {seed} case {case}");
        assert_eq!(back.step, request.step, "seed {seed} case {case}");
        assert_eq!(back.max_k, request.max_k, "seed {seed} case {case}");
        assert_eq!(
            back.time_limit, request.time_limit,
            "seed {seed} case {case}"
        );
        assert_eq!(back.routing, request.routing, "seed {seed} case {case}");
        assert_eq!(back.tenant, request.tenant, "seed {seed} case {case}");
        assert_eq!(
            back.cache_key(),
            request.cache_key(),
            "seed {seed} case {case}: cache keys must survive the wire"
        );
        // Encoding the decoded request reproduces the exact line
        // (the protocol encoder is canonical).
        assert_eq!(
            back.to_json().to_text(),
            line,
            "seed {seed} case {case}: re-encoding must be byte-identical"
        );
    }
}

#[test]
fn random_views_round_trip_through_their_wire_form() {
    let seed = 424242;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let view = random_view(&mut rng);
        let encoded = view_to_json(&view);
        let back =
            view_from_json(&encoded).unwrap_or_else(|err| panic!("seed {seed} case {case}: {err}"));
        assert_eq!(
            back.cache_key(),
            view.cache_key(),
            "seed {seed} case {case}"
        );
        assert_eq!(back.subject_count(), view.subject_count());
        assert_eq!(back.signature_count(), view.signature_count());
        assert_eq!(view_to_json(&back).to_text(), encoded.to_text());
    }
}

/// A request object that must fail element decoding, picked from the
/// protocol's distinct failure classes.
fn random_bad_request(rng: &mut StdRng) -> Json {
    match rng.gen_range(0usize..5) {
        0 => Json::obj(vec![("op", Json::str("frobnicate"))]),
        1 => Json::obj(vec![("not-op", Json::Int(1))]),
        2 => Json::obj(vec![("op", Json::str("refine"))]), // missing view
        3 => Json::obj(vec![("op", Json::str("shutdown"))]), // forbidden in batches
        _ => Json::obj(vec![
            ("op", Json::str("batch")),
            ("requests", Json::Arr(vec![])),
        ]), // batches cannot nest
    }
}

#[test]
fn random_batches_decode_element_wise_with_order_preserved() {
    let seed = 20260731;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..12);
        // Each element is a valid solve request, a valid control op, or a
        // deliberately broken object; remember which, in order.
        let mut elements: Vec<(Json, bool)> = Vec::with_capacity(n);
        for _ in 0..n {
            match rng.gen_range(0usize..5) {
                0 => elements.push((random_bad_request(&mut rng), false)),
                1 => elements.push((Json::obj(vec![("op", Json::str("status"))]), true)),
                2 => elements.push((
                    Json::obj(vec![("op", Json::str("trace")), ("slow", Json::Bool(true))]),
                    true,
                )),
                _ => elements.push((random_request(&mut rng).to_json(), true)),
            }
        }
        let values: Vec<Json> = elements.iter().map(|(value, _)| value.clone()).collect();
        let line = encode_batch_request(&values);

        let Decoded::Batch(decoded) = decode_line(&line) else {
            panic!("seed {seed} case {case}: batch line decoded as single");
        };
        assert_eq!(decoded.len(), n, "seed {seed} case {case}");
        for (idx, ((original, valid), result)) in elements.iter().zip(&decoded).enumerate() {
            assert_eq!(
                result.is_ok(),
                *valid,
                "seed {seed} case {case} element {idx}: {original}"
            );
            // Order preservation: a decoded solve element re-encodes to its
            // original object, and control ops match their op name.
            match result {
                Ok(Request::Solve(solve)) => {
                    assert_eq!(
                        solve.to_json().to_text(),
                        original.to_text(),
                        "seed {seed} case {case} element {idx} out of order"
                    );
                }
                Ok(Request::Status) => {
                    assert_eq!(original.get("op").and_then(Json::as_str), Some("status"));
                }
                Ok(Request::Trace { slow_only, .. }) => {
                    assert_eq!(original.get("op").and_then(Json::as_str), Some("trace"));
                    assert!(slow_only, "seed {seed} case {case}: 'slow' flag dropped");
                }
                Ok(
                    Request::Shutdown
                    | Request::Promote
                    | Request::ReplSubscribe { .. }
                    | Request::Hello { .. },
                ) => {
                    panic!(
                        "seed {seed} case {case}: connection/server-wide ops must not \
                         decode in a batch"
                    )
                }
                Err(_) => {}
            }
        }
    }
}

#[test]
fn random_batch_responses_frame_elements_byte_identically() {
    let seed = 99173;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..10);
        let items: Vec<String> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    let message: String = (0..rng.gen_range(0usize..12))
                        .map(|_| {
                            char::from_u32(rng.gen_range(32u32..127)).expect("printable ASCII")
                        })
                        .collect();
                    encode_error(&message)
                } else {
                    let source = match rng.gen_range(0usize..3) {
                        0 => Source::Solved,
                        1 => Source::Cache,
                        _ => Source::Coalesced,
                    };
                    let result = random_json(&mut rng, 2).to_text();
                    encode_success("refine", source, &result)
                }
            })
            .collect();
        let line = encode_batch(&items);
        let value = json::parse(&line)
            .unwrap_or_else(|err| panic!("seed {seed} case {case}: '{line}': {err}"));
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        let results = value.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), n, "seed {seed} case {case}");
        // Canonical serialization: every parsed element re-encodes to the
        // exact bytes spliced into the envelope, in order — the batch-level
        // byte-identity guarantee.
        for (idx, (element, original)) in results.iter().zip(&items).enumerate() {
            assert_eq!(
                &element.to_text(),
                original,
                "seed {seed} case {case} element {idx}"
            );
        }
    }
}

/// Binary↔JSON framing equivalence: the same random request decoded
/// through the `bin1` payload codec and through the JSON line codec yields
/// the *same* typed request — same cache key, byte-identical canonical
/// re-encode — so both framings produce byte-identical `result_text`s
/// (responses are keyed and replayed by exactly those two properties),
/// tenant-tagged requests included.
#[test]
fn random_requests_decode_identically_under_both_framings() {
    let seed = 48151623;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let request = random_request(&mut rng);
        let line = request.to_json().to_text();
        let Ok(Request::Solve(via_json)) = decode_request(&line) else {
            panic!("seed {seed} case {case}: JSON decode rejected '{line}'");
        };
        let Decoded::Single(Ok(Request::Solve(via_bin))) =
            decode_payload(&encode_solve_bin(&request))
        else {
            panic!("seed {seed} case {case}: binary decode rejected the same request");
        };
        assert_eq!(
            via_bin.cache_key(),
            via_json.cache_key(),
            "seed {seed} case {case}: framings must agree on the cache key"
        );
        assert_eq!(
            via_bin.to_json().to_text(),
            via_json.to_json().to_text(),
            "seed {seed} case {case}: framings must agree byte-for-byte"
        );
        assert_eq!(via_bin.tenant, via_json.tenant, "seed {seed} case {case}");
    }
}

/// Error-envelope equivalence across framings: a batch mixing good, bad,
/// and tenant-tagged elements decodes to the same per-element outcomes —
/// errors in the same positions, identical requests elsewhere — whether it
/// travels as a JSON batch line or a `bin1` batch payload (with broken
/// elements riding the embedded-JSON escape hatch).
#[test]
fn random_batches_decode_identically_under_both_framings() {
    let seed = 31337;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..10);
        let values: Vec<Json> = (0..n)
            .map(|_| match rng.gen_range(0usize..4) {
                0 => random_bad_request(&mut rng),
                1 => Json::obj(vec![("op", Json::str("status"))]),
                _ => random_request(&mut rng).to_json(),
            })
            .collect();
        let line = encode_batch_request(&values);
        let Decoded::Batch(via_json) = decode_line(&line) else {
            panic!("seed {seed} case {case}: batch line decoded as single");
        };
        let elements: Vec<Vec<u8>> = values
            .iter()
            .map(|value| strudel_server::protocol::encode_json_payload(&value.to_text()))
            .collect();
        let payload = strudel_server::protocol::encode_batch_bin(&elements);
        let Decoded::Batch(via_bin) = decode_payload(&payload) else {
            panic!("seed {seed} case {case}: batch payload decoded as single");
        };
        assert_eq!(via_bin.len(), via_json.len(), "seed {seed} case {case}");
        for (idx, (bin, json_side)) in via_bin.iter().zip(&via_json).enumerate() {
            match (bin, json_side) {
                (Ok(Request::Solve(a)), Ok(Request::Solve(b))) => {
                    assert_eq!(
                        a.to_json().to_text(),
                        b.to_json().to_text(),
                        "seed {seed} case {case} element {idx}"
                    );
                }
                (Ok(a), Ok(b)) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "seed {seed} case {case} element {idx}"
                ),
                (Err(_), Err(_)) => {}
                (bin, json_side) => panic!(
                    "seed {seed} case {case} element {idx}: framings disagree \
                     (bin ok={}, json ok={})",
                    bin.is_ok(),
                    json_side.is_ok()
                ),
            }
        }
    }
}

/// Frame-level robustness: random frames survive encode → decode with
/// every field intact, every torn prefix asks for more bytes instead of
/// failing, and corruption (bad magic, oversized payload claims) is
/// rejected without consuming or corrupting a following healthy frame.
#[test]
fn random_frames_round_trip_and_reject_corruption_cleanly() {
    let seed = 60221413;
    let mut rng = StdRng::seed_from_u64(seed);
    let max_payload = 1 << 20;
    for case in 0..CASES {
        let tenant = if rng.gen_bool(0.4) {
            format!("tenant-{}", rng.gen_range(0u64..5))
        } else {
            String::new()
        };
        let payload: Vec<u8> = (0..rng.gen_range(0usize..200))
            .map(|_| rng.gen_range(0u64..256) as u8)
            .collect();
        let kind = if rng.gen_bool(0.5) {
            FrameKind::Request
        } else {
            FrameKind::Response
        };
        let mut wire = Vec::new();
        encode_frame_into(&mut wire, kind, &tenant, &payload);

        // Every strict prefix is "need more", never an error or a frame.
        for cut in 0..wire.len() {
            match try_decode_frame(&wire[..cut], max_payload) {
                Ok(None) => {}
                other => panic!(
                    "seed {seed} case {case}: cut {cut}/{} produced {other:?}",
                    wire.len()
                ),
            }
        }
        // The whole frame decodes with every field intact, and a trailing
        // healthy frame is untouched by the first one's consumption.
        let mut doubled = wire.clone();
        encode_frame_into(&mut doubled, FrameKind::Request, "", b"after");
        let view = try_decode_frame(&doubled, max_payload)
            .expect("healthy frame")
            .expect("complete frame");
        assert_eq!(view.kind, kind, "seed {seed} case {case}");
        assert_eq!(view.tenant, tenant, "seed {seed} case {case}");
        assert_eq!(view.payload, &payload[..], "seed {seed} case {case}");
        assert_eq!(view.consumed, wire.len(), "seed {seed} case {case}");
        let consumed = view.consumed;
        let second = try_decode_frame(&doubled[consumed..], max_payload)
            .expect("second frame healthy")
            .expect("second frame complete");
        assert_eq!(second.payload, b"after", "seed {seed} case {case}");

        // Corrupt magic is a hard error, not a request for more bytes.
        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(
            try_decode_frame(&bad_magic, max_payload).is_err(),
            "seed {seed} case {case}: bad magic must be fatal"
        );
        assert_ne!(FRAME_MAGIC[0] ^ 0xFF, FRAME_MAGIC[0]);

        // A payload-length claim beyond the decoder's cap is refused
        // up front — oversized frames never buffer unboundedly.
        assert!(
            try_decode_frame(&wire, payload.len().saturating_sub(1)).is_err() || payload.is_empty(),
            "seed {seed} case {case}: oversized payload claims must be fatal"
        );
    }
}

fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.gen_range(0usize..4) // leaves only
    } else {
        rng.gen_range(0usize..6)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Int(rng.gen_range(0u64..u64::MAX / 4) as i64 - (i64::MAX / 4)),
        3 => {
            let len = rng.gen_range(0usize..12);
            let text: String = (0..len)
                .map(|_| {
                    // Bias towards characters that exercise escaping.
                    match rng.gen_range(0usize..8) {
                        0 => '"',
                        1 => '\\',
                        2 => '\n',
                        3 => '\u{9}',
                        4 => '\u{1}',
                        5 => 'π',
                        6 => '🦀',
                        _ => char::from_u32(rng.gen_range(32u32..127)).expect("printable ASCII"),
                    }
                })
                .collect();
            Json::Str(text)
        }
        4 => Json::Arr(
            (0..rng.gen_range(0usize..5))
                .map(|_| random_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0usize..5))
                .map(|i| (format!("key{i}"), random_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

#[test]
fn random_json_values_reparse_byte_identically() {
    let seed = 7;
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..CASES {
        let value = random_json(&mut rng, 3);
        let text = value.to_text();
        let back = json::parse(&text)
            .unwrap_or_else(|err| panic!("seed {seed} case {case}: '{text}': {err}"));
        assert_eq!(back, value, "seed {seed} case {case}");
        assert_eq!(back.to_text(), text, "seed {seed} case {case}");
    }
}
